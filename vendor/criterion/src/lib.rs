//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) bench harness used by
//! this workspace's `benches/` targets.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough API — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! for the seven figure/table benches to compile (`cargo test --benches
//! --no-run`) and run (`cargo bench`).  Timing is a simple mean over
//! `sample_size` iterations of the routine, reported on stdout; there is no
//! statistical analysis, plotting or baseline comparison.
//!
//! Like real criterion, the harness understands `cargo bench -- --test`
//! (smoke mode: each routine runs once) and treats any other trailing
//! positional argument as a substring filter on benchmark names.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures a single benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations and records
    /// the total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point of the (stub) benchmark harness.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags real criterion accepts that the stub can ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let iterations = if self.test_mode {
            1
        } else {
            sample_size.max(1) as u64
        };
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / iterations as f64;
        println!(
            "bench: {id:<40} {:>12.3} µs/iter ({iterations} iters)",
            mean * 1e6
        );
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&id, sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut bencher = Bencher {
            iterations: 5,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0u64;
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_inherits_and_overrides_sample_size() {
        let mut criterion = Criterion {
            sample_size: 3,
            test_mode: false,
            filter: None,
        };
        let mut calls = 0u64;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("inherit", |b| b.iter(|| calls += 1));
            group.sample_size(7);
            group.bench_function("override", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 3 + 7);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut criterion = Criterion {
            sample_size: 2,
            test_mode: false,
            filter: Some("keep".into()),
        };
        let mut calls = 0u64;
        criterion.bench_function("keep_this", |b| b.iter(|| calls += 1));
        criterion.bench_function("drop_this", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 2);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut criterion = Criterion {
            sample_size: 50,
            test_mode: true,
            filter: None,
        };
        let mut calls = 0u64;
        criterion.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
