//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, implementing a genuine ChaCha8 keystream generator over the
//! vendored `rand` traits.
//!
//! The output stream is **not** bit-compatible with the upstream
//! `rand_chacha` crate (which the offline build environment cannot fetch),
//! but it is a faithful ChaCha8 core: 256-bit key, 64-bit block counter,
//! 8 rounds (4 column/diagonal double-rounds), 64-byte blocks consumed as
//! sixteen little-endian `u32` words.  Determinism is exact: the same seed
//! always produces the same stream, which is all the workspace's
//! reproducibility guarantees require.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A deterministic ChaCha8 random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; WORDS_PER_BLOCK],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit counter, zero nonce.
        let mut state: [u32; WORDS_PER_BLOCK] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn clones_continue_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_change_with_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn quarter_round_matches_rfc8439_vector() {
        // RFC 8439 §2.1.1 quarter-round test vector.
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn all_zero_seed_matches_ecrypt_chacha8_test_vector() {
        // ECRYPT/eSTREAM ChaCha8 vector: 256-bit zero key, zero IV; the
        // keystream begins 3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8 1f 09 a5 a1.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(
            words,
            vec![0x2fef_003e, 0xd640_5f89, 0xe8b8_5b7f, 0xa1a5_091f],
            "keystream should match the published ChaCha8 test vector"
        );
    }

    #[test]
    fn output_has_balanced_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits total; expect ~32,000 ones.
        assert!((30_000..34_000).contains(&ones), "got {ones} one-bits");
    }
}
