//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate used by this workspace.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements exactly the traits and methods the Q3DE stack calls:
//! [`RngCore`], [`SeedableRng`] (including the SplitMix64-based
//! [`SeedableRng::seed_from_u64`]), and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`.  Integer range sampling is unbiased
//! (rejection sampling); float sampling uses the standard 53-bit mantissa
//! construction, so `gen::<f64>()` is uniform on `[0, 1)`.
//!
//! It is **not** a cryptographically reviewed RNG library — it exists purely
//! so the reproduction builds and runs deterministically offline.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array such as `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and instantiates the
    /// generator.  Deterministic: the same `state` always yields the same
    /// generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the analogue of `rand::distributions::Standard`).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased draw from `[0, n)` by rejection sampling.  `n` must be non-zero.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n representable in u64 arithmetic below 2^64.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let value = self.start + (self.end - self.start) * u;
        // Float rounding can land exactly on the exclusive upper bound (e.g.
        // 100.0 * (1 - 2^-53) rounds to 100.0); clamp to preserve the
        // half-open contract.
        if value >= self.end {
            self.end.next_down()
        } else {
            value
        }
    }
}

/// Convenience extension methods, automatically available on every
/// [`RngCore`] implementor (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform on
    /// `[0, 1)` for floats, uniform over the full domain for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A biased-bit sampler producing 64 independent Bernoulli draws per call —
/// one bit lane per draw.
///
/// The success probability is quantised exactly like the scalar flip test
/// `f64::sample(rng) < p` (53 mantissa bits): a draw succeeds iff a uniform
/// 53-bit integer `k` satisfies `k < ceil(p · 2^53)`, so the packed and
/// scalar paths share the same marginal to the last ulp.
///
/// Sampling walks the binary expansion of the threshold most-significant bit
/// first, consuming one random word per bit and retiring every lane whose
/// comparison is already decided; it stops as soon as all 64 lanes are
/// decided, which takes `log2(64) + O(1) ≈ 7–8` words in expectation —
/// independent of `p` — instead of the 64 words a lane-by-lane scalar
/// sampler would burn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedBernoulli {
    /// `ceil(p · 2^53)`, in `0..=2^53`.
    threshold: u64,
}

impl PackedBernoulli {
    /// Creates a sampler with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let scale = (1u64 << 53) as f64;
        let threshold = ((p * scale).ceil() as u64).min(1 << 53);
        Self { threshold }
    }

    /// The exact success probability of each lane, `threshold / 2^53`.
    pub fn probability(&self) -> f64 {
        self.threshold as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws 64 independent Bernoulli samples; bit `l` of the result is
    /// lane `l`'s draw.
    pub fn sample_u64<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.threshold >= 1 << 53 {
            return u64::MAX;
        }
        // Compare a fresh uniform 53-bit integer k (one random bit per lane
        // per step) against the threshold t, MSB first: at the first bit
        // where they differ the lane is decided (k_bit < t_bit → success).
        // Lanes whose bits matched t exactly through all 53 steps have
        // k == t, i.e. k < t is false.
        let mut successes = 0u64;
        let mut undecided = u64::MAX;
        for j in (0..53).rev() {
            let w = rng.next_u64();
            if (self.threshold >> j) & 1 == 1 {
                successes |= undecided & !w;
                undecided &= w;
            } else {
                undecided &= !w;
            }
            if undecided == 0 {
                break;
            }
        }
        successes
    }
}

/// Commonly imported traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct SplitMix64(u64);

    impl RngCore for SplitMix64 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SplitMix64 {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SplitMix64(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = SplitMix64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 7 values should appear: {seen:?}"
        );
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_range_never_returns_the_exclusive_bound() {
        // A generator that forces the maximal 53-bit draw, where
        // start + (end-start)*u rounds up to exactly `end` without the clamp.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = MaxRng.gen_range(0.0f64..100.0);
        assert!(v < 100.0, "got the exclusive upper bound: {v}");
        let mut rng = SplitMix64(6);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn packed_bernoulli_matches_the_scalar_marginal() {
        // The packed sampler must hit the same quantised probability as the
        // scalar `f64::sample(rng) < p` test: ceil(p · 2^53) / 2^53.
        for &p in &[0.0, 2e-2, 0.25, 0.5, 2.0 / 3.0, 1.0] {
            let sampler = PackedBernoulli::new(p);
            assert!((sampler.probability() - p).abs() < 1e-12, "p={p}");
            let mut rng = SplitMix64(9);
            let draws = 4000u64;
            let mut hits = 0u64;
            for _ in 0..draws {
                hits += sampler.sample_u64(&mut rng).count_ones() as u64;
            }
            let frac = hits as f64 / (draws * 64) as f64;
            assert!(
                (frac - p).abs() < 0.01,
                "p={p}: packed fraction {frac} off by more than 1%"
            );
        }
    }

    #[test]
    fn packed_bernoulli_lanes_are_independent() {
        // Adjacent lanes must not be correlated: the joint frequency of
        // (lane i, lane i+1) both succeeding should be ≈ p².
        let sampler = PackedBernoulli::new(0.5);
        let mut rng = SplitMix64(11);
        let draws = 8000;
        let mut both = 0u64;
        for _ in 0..draws {
            let w = sampler.sample_u64(&mut rng);
            both += (w & (w >> 1) & 0x7FFF_FFFF_FFFF_FFFF).count_ones() as u64;
        }
        let frac = both as f64 / (draws * 63) as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "pairwise success fraction {frac} should be ≈ 0.25"
        );
    }

    #[test]
    fn packed_bernoulli_extremes_are_exact() {
        let mut rng = SplitMix64(13);
        let never = PackedBernoulli::new(0.0);
        let always = PackedBernoulli::new(1.0);
        for _ in 0..100 {
            assert_eq!(never.sample_u64(&mut rng), 0);
            assert_eq!(always.sample_u64(&mut rng), u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn packed_bernoulli_rejects_invalid_probability() {
        let _ = PackedBernoulli::new(1.5);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SplitMix64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
