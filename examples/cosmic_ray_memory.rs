//! A quantum-memory experiment under cosmic rays: compares the logical error
//! rate of a surface-code memory with no burst, with a burst decoded blindly,
//! and with a burst decoded by Q3DE's re-executed (anomaly-aware) decoder.
//!
//! Run with: `cargo run --release --example cosmic_ray_memory`

use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let shots = 300;
    let physical_error_rate = 6e-3;
    println!("distance | MBBE free | without rollback | with rollback   ({shots} shots each)");
    for distance in [5usize, 7, 9] {
        let config = MemoryExperimentConfig::new(distance, physical_error_rate)
            .with_anomaly(AnomalyInjection::centered(2, 0.5));
        let experiment = MemoryExperiment::new(config).expect("valid distance");
        let mut rng = ChaCha8Rng::seed_from_u64(distance as u64);
        let free = experiment.estimate(shots, DecodingStrategy::MbbeFree, &mut rng);
        let blind = experiment.estimate(shots, DecodingStrategy::Blind, &mut rng);
        let aware = experiment.estimate(shots, DecodingStrategy::AnomalyAware, &mut rng);
        println!(
            "   d={distance}   | {:9.4} | {:16.4} | {:12.4}",
            free.logical_error_rate(),
            blind.logical_error_rate(),
            aware.logical_error_rate()
        );
    }
    println!(
        "\nThe burst lifts the logical error rate well above the MBBE-free value; knowing the"
    );
    println!("burst location (decoder re-execution) recovers a large part of the loss.");
}
