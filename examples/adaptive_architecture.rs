//! Architecture-level comparison: instruction throughput and qubit-count
//! requirements of Q3DE versus the doubled-distance baseline.
//!
//! Run with: `cargo run --release --example adaptive_architecture`

use q3de::control::{ArchitectureMode, ThroughputConfig, ThroughputSimulator};
use q3de::scaling::{
    qubit_density::log_grid, MemoryOverheadModel, ScalabilityConfig, ScalabilityModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Instruction throughput (Fig. 10 style, reduced size).
    println!("instruction throughput (meas_ZZ per d cycles, 500 instructions):");
    for (name, mode) in [
        ("MBBE free", ArchitectureMode::MbbeFree),
        ("baseline (2d)", ArchitectureMode::Baseline),
        ("Q3DE", ArchitectureMode::Q3de),
    ] {
        let config = ThroughputConfig {
            plane_size: 11,
            code_distance: 11,
            num_instructions: 500,
            mbbe_probability_per_block_per_d_cycles: 1e-5,
            mbbe_duration_d_cycles: 1000,
            mode,
            max_cycles: 2_000_000,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = ThroughputSimulator::new(config).run(&mut rng);
        println!("  {name:<14} {:6.2}", report.instructions_per_d_cycles);
    }

    // 2. Required qubit density to reach p_L < 1e-10 (Fig. 9 style).
    let model = ScalabilityModel::new(ScalabilityConfig::default());
    let densities = log_grid(1.0, 5000.0, 300);
    println!("\nrequired qubit-density ratio for p_L < 1e-10:");
    println!("  chip area ratio |   Q3DE | baseline");
    for area in [2.0, 4.0, 10.0, 30.0] {
        let fmt = |p: Option<q3de::scaling::ScalabilityPoint>| match p {
            Some(point) => format!("{:7.1}", point.qubit_density_ratio),
            None => "    inf".to_string(),
        };
        println!(
            "  {area:15.0} | {} | {}",
            fmt(model.required_density(area, true, &densities)),
            fmt(model.required_density(area, false, &densities))
        );
    }

    // 3. Classical memory overhead of the rollback machinery (Table III).
    let memory = MemoryOverheadModel::table3();
    println!(
        "\nclassical memory overhead per logical qubit: {:.0} kbit (syndrome queue {:.0} kbit, ~{:.1}x the MBBE-free queue)",
        MemoryOverheadModel::to_kbit(memory.total_bits()),
        MemoryOverheadModel::to_kbit(memory.syndrome_queue_bits()),
        memory.syndrome_queue_overhead_ratio()
    );
}
