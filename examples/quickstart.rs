//! Quickstart: protect one logical qubit with Q3DE.
//!
//! Builds a distance-5 surface code, injects a cosmic-ray burst into the
//! noise model, and shows the three Q3DE mechanisms working together:
//! anomaly detection from syndrome statistics, an `op_expand` request and
//! decoder re-execution.
//!
//! Run with: `cargo run --release --example quickstart`

use q3de::decoder::SyndromeHistory;
use q3de::lattice::Coord;
use q3de::noise::{AnomalousRegion, NoiseModel};
use q3de::pipeline::{PipelineConfig, Q3dePipeline};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let config = PipelineConfig::new(7, 1e-3)
        .with_detection_window(60)
        .with_count_threshold(8)
        .with_assumed_anomaly_size(2);
    let mut pipeline = Q3dePipeline::new(config).expect("valid configuration");
    println!(
        "protecting a distance-{} logical qubit ({} physical qubits)",
        pipeline.code().distance(),
        pipeline.code().num_physical_qubits()
    );

    // A cosmic ray strikes the centre of the patch at cycle 100.
    let burst = AnomalousRegion::new(Coord::new(4, 4), 2, 100, 100_000, 0.5);
    let noise = NoiseModel::uniform(1e-3).with_anomaly(burst);

    // Sample 400 rounds of syndrome extraction under that noise.
    let graph = pipeline.graph().clone();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut flipped = vec![false; graph.num_edges()];
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for cycle in 0..400u64 {
        for (edge_index, edge) in graph.edges().iter().enumerate() {
            if noise
                .sample_pauli(edge.qubit, cycle, &mut rng)
                .has_x_component()
            {
                flipped[edge_index] = !flipped[edge_index];
            }
        }
        let layer: Vec<bool> = (0..graph.num_nodes())
            .map(|node| {
                let mut parity = graph
                    .incident_edges(node)
                    .iter()
                    .filter(|&&e| flipped[e])
                    .count()
                    % 2
                    == 1;
                if noise
                    .sample_pauli(graph.node(node), cycle, &mut rng)
                    .has_x_component()
                {
                    parity = !parity;
                }
                parity
            })
            .collect();
        history.push_layer(&layer);
    }

    let report = pipeline.process_window(&history, 0);
    match &report.detection {
        Some(found) => {
            println!(
                "MBBE detected at cycle {} (true onset 100), estimated centre {} (true centre {})",
                found.detection_cycle,
                found.estimated_center,
                burst.center()
            );
            println!(
                "emitted instruction: {}",
                report.expansion_instruction.as_ref().unwrap()
            );
            println!(
                "decoder re-executed: {} (correction parity changed: {})",
                report.decoding.was_rolled_back(),
                report.decoding.reexecution_changed_parity()
            );
            let plan = pipeline.expansion_plan().unwrap();
            println!(
                "code expansion plan: d {} -> {} ({} extra physical qubits, latency {} cycles)",
                plan.original().distance(),
                plan.expanded().distance(),
                plan.additional_physical_qubits(),
                plan.expansion_latency_cycles()
            );
        }
        None => println!("no MBBE detected in this window (try another seed)"),
    }
}
