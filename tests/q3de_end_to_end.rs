//! End-to-end pipeline test: a cosmic-ray strike sampled from the
//! `CosmicRayProcess` is injected into the syndrome stream, the
//! `Q3dePipeline` must detect it, request `op_expand` code deformation, and
//! rollback re-decoding must beat the non-Q3DE (blind) baseline on the same
//! syndrome stream.

use q3de::control::Instruction;
use q3de::decoder::{MatcherKind, ReExecutingDecoder, SyndromeHistory};
use q3de::lattice::{Coord, ErrorKind, Pauli, PauliString, StabilizerKind, SurfaceCode};
use q3de::noise::{AnomalousRegion, CosmicRayProcess, NoiseModel, PhysicalParams};
use q3de::pipeline::{PipelineConfig, Q3dePipeline};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Physical parameters that make strikes frequent (so the test samples an
/// event quickly) with a burst that fits on a distance-7 patch.
fn strike_params() -> PhysicalParams {
    PhysicalParams {
        anomaly_size: 2,
        anomalous_error_rate: 0.5,
        anomaly_frequency_hz: 1e5,
        code_cycle_s: 1e-6,      // p_strike = 0.1 per cycle
        anomaly_duration_s: 0.1, // 100_000 cycles
        ..PhysicalParams::default()
    }
}

/// Draws the first cosmic-ray strike the Poisson process produces.
fn first_strike(rng: &mut ChaCha8Rng) -> q3de::noise::CosmicRayEvent {
    // Grid of a distance-7 planar code: (2·7 − 1) × (2·7 − 1) sites.
    let mut process = CosmicRayProcess::new(strike_params(), 13, 13);
    for _ in 0..10_000 {
        if let Some(event) = process.advance(rng) {
            return event;
        }
    }
    panic!("the cosmic-ray process produced no strike in 10k cycles at p = 0.1/cycle");
}

/// Draws strikes until one lands in the bulk of the patch (the regime the
/// paper evaluates: edge strikes barely perturb the logical qubit).
fn first_bulk_strike(rng: &mut ChaCha8Rng) -> q3de::noise::CosmicRayEvent {
    let patch_center = q3de::lattice::Coord::new(6, 6);
    let mut process = CosmicRayProcess::new(strike_params(), 13, 13);
    for _ in 0..100_000 {
        if let Some(event) = process.advance(rng) {
            if event.region.center().chebyshev(patch_center) <= 2 {
                return event;
            }
        }
    }
    panic!("no bulk strike in 100k cycles at p = 0.1/cycle");
}

/// Samples a syndrome history for the pipeline's graph under `noise`.
fn sampled_history(
    pipeline: &Q3dePipeline,
    noise: &NoiseModel,
    rounds: usize,
    rng: &mut ChaCha8Rng,
) -> SyndromeHistory {
    let graph = pipeline.graph();
    let mut flipped = vec![false; graph.num_edges()];
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for t in 0..rounds {
        for (ei, edge) in graph.edges().iter().enumerate() {
            if noise
                .sample_pauli(edge.qubit, t as u64, rng)
                .has_x_component()
            {
                flipped[ei] = !flipped[ei];
            }
        }
        let layer: Vec<bool> = (0..graph.num_nodes())
            .map(|n| {
                let mut parity = graph
                    .incident_edges(n)
                    .iter()
                    .filter(|&&e| flipped[e])
                    .count()
                    % 2
                    == 1;
                if noise
                    .sample_pauli(graph.node(n), t as u64, rng)
                    .has_x_component()
                {
                    parity = !parity;
                }
                parity
            })
            .collect();
        history.push_layer(&layer);
    }
    history
}

#[test]
fn strike_is_detected_and_triggers_op_expand_and_rollback() {
    let mut rng = ChaCha8Rng::seed_from_u64(2022);
    let event = first_strike(&mut rng);
    let size = event.region.size();
    assert_eq!(
        size, 2,
        "the sampled strike should carry the configured burst size"
    );

    // Re-anchor the sampled strike at cycle 100 of a 400-cycle window so the
    // detector sees both quiet and anomalous statistics.
    let top_left = event
        .region
        .center()
        .offset(-(size as i32) + 1, -(size as i32) + 1);
    let burst = AnomalousRegion::new(top_left, size, 100, 100_000, event.region.anomalous_rate());

    let config = PipelineConfig::new(7, 1e-3)
        .with_detection_window(60)
        .with_count_threshold(8)
        .with_assumed_anomaly_size(size);
    let mut pipeline = Q3dePipeline::new(config).expect("valid configuration");

    let noise = NoiseModel::uniform(1e-3).with_anomaly(burst);
    let history = sampled_history(&pipeline, &noise, 400, &mut rng);
    let report = pipeline.process_window(&history, 0);

    // 1. In-situ anomaly DEtection.
    assert!(report.reacted(), "the pipeline must detect the burst");
    let detection = report.detection.as_ref().expect("detection present");
    assert!(
        detection.detection_cycle >= 100,
        "detection cannot precede the onset"
    );
    assert!(
        detection.estimated_center.chebyshev(burst.center()) <= 6,
        "the estimated centre {:?} should be near the true centre {:?}",
        detection.estimated_center,
        burst.center()
    );

    // 2. Dynamic code DEformation: an op_expand instruction is emitted and
    //    queued, and the implied plan covers the assumed anomaly.
    assert!(
        matches!(
            report.expansion_instruction,
            Some(Instruction::OpExpand { .. })
        ),
        "a detection must emit op_expand, got {:?}",
        report.expansion_instruction
    );
    assert_eq!(pipeline.pending_expansions(), 1);
    let plan = pipeline.expansion_plan().expect("valid expansion plan");
    assert!(
        plan.covers_anomaly(size),
        "the expanded code must cover the burst"
    );
    assert!(
        plan.expanded().distance() >= 7 + 2 * size,
        "d_exp >= d + 2*d_ano"
    );
    let request = pipeline.pop_expansion_request().expect("queued request");
    assert_eq!(request.keep_cycles, pipeline.config().expansion_keep_cycles);

    // 3. Optimized error DEcoding: the decoder rolled back and re-executed
    //    with anomaly-aware weights.
    assert!(
        report.decoding.was_rolled_back(),
        "decoding must re-execute after a detection"
    );
}

#[test]
fn back_to_back_strikes_are_redecoded_together() {
    // Two overlapping strikes within one `expansion_keep_cycles` window:
    // region A (onset cycle 0) is still active when region B lands at cycle
    // 20, and the decoded window at cycle 25 sees both.  Rollback
    // re-decoding must consume *both* regions' re-weighted costs at once,
    // for every matching backend.
    let code = SurfaceCode::new(7).expect("valid distance");
    let graph = code.matching_graph(ErrorKind::X);
    let keep_cycles = 100u64; // one expansion keep window
    let region_a = AnomalousRegion::new(Coord::new(0, 2), 4, 0, keep_cycles, 0.5);
    let region_b = AnomalousRegion::new(Coord::new(8, 2), 2, 20, keep_cycles, 0.5);
    let window_start = 25u64;
    assert!(
        region_a.affects(Coord::new(0, 2), window_start)
            && region_b.affects(Coord::new(8, 2), window_start),
        "both strikes must be active in the decoded window"
    );

    // Burst damage: a wide chain inside region A (weight 4 >= d/2, so blind
    // decoding mis-matches it to the boundaries) plus a short chain inside
    // region B (weight 2, harmless on its own but re-weighted by rollback).
    let error: PauliString = [
        (Coord::new(0, 2), Pauli::X),
        (Coord::new(0, 4), Pauli::X),
        (Coord::new(0, 6), Pauli::X),
        (Coord::new(0, 8), Pauli::X),
        (Coord::new(8, 2), Pauli::X),
        (Coord::new(8, 4), Pauli::X),
    ]
    .into_iter()
    .collect();
    let syndrome = code.syndrome(StabilizerKind::Z, &error);
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for _ in 0..3 {
        history.push_layer(&syndrome);
    }
    let parity = code
        .logical_z_support()
        .iter()
        .filter(|&&q| error.get(q).has_x_component())
        .count()
        % 2
        == 1;

    let regions = [region_a, region_b];
    for kind in MatcherKind::ALL {
        let mut decoder = ReExecutingDecoder::with_matcher(&graph, 1e-3, kind);
        let outcome = decoder.decode(&history, Some(&regions), window_start);
        assert!(outcome.was_rolled_back(), "{kind:?}");
        assert!(
            outcome.first_pass.is_logical_failure(parity),
            "{kind:?}: the blind pass should mis-correct the wide burst chain"
        );
        assert!(
            !outcome.final_outcome().is_logical_failure(parity),
            "{kind:?}: re-decoding with both overlapping regions must fix the stream"
        );
        assert!(outcome.reexecution_changed_parity(), "{kind:?}");
    }
}

#[test]
fn rollback_redecoding_beats_the_blind_baseline_on_the_same_stream() {
    let mut seed_rng = ChaCha8Rng::seed_from_u64(7);
    let event = first_bulk_strike(&mut seed_rng);
    let size = event.region.size();
    let top_left = event
        .region
        .center()
        .offset(-(size as i32) + 1, -(size as i32) + 1);

    // Distance 7: its 13x13 grid is the plane the strike was sampled on, so
    // the burst is guaranteed to land on the patch.
    let config = MemoryExperimentConfig::new(7, 6e-3).with_anomaly(AnomalyInjection {
        size,
        rate: event.region.anomalous_rate(),
        origin: Some(top_left),
    });
    let experiment = MemoryExperiment::new(config).expect("valid distance");

    // Re-seeding per shot gives both strategies the *same* physical error
    // stream; only the decoding differs.  (Blind and AnomalyAware share the
    // same noise model, so shot i draws identical samples under both.)
    let shots = 200usize;
    let failures = |strategy: DecodingStrategy| {
        (0..shots)
            .filter(|&shot| {
                let mut rng = ChaCha8Rng::seed_from_u64(0xE2E + shot as u64);
                experiment.run_shot(strategy, &mut rng).logical_failure
            })
            .count()
    };

    let blind = failures(DecodingStrategy::Blind);
    let aware = failures(DecodingStrategy::AnomalyAware);
    assert!(
        aware < blind,
        "rollback re-decoding ({aware}/{shots} failures) must beat the blind \
         baseline ({blind}/{shots} failures) on the same syndrome stream"
    );
    // The burst must actually be doing damage, or the comparison is vacuous.
    assert!(
        blind * 10 >= shots,
        "the blind baseline should fail on >= 10% of burst shots, got {blind}/{shots}"
    );
}
