//! Chip-level integration tests (the system acceptance criteria):
//!
//! (a) with no strike, an N-patch chip's per-patch logical error rates
//!     match N independent single-patch runs on the same seeds *exactly*,
//! (b) a seeded strike straddling two patches triggers both patches'
//!     anomaly detectors, and under a spare budget sufficient for only one
//!     expansion the expansion queue grants exactly one
//!     `d_exp ≥ d + 2·d_ano` expansion and queues the other — all
//!     deterministic under fixed seeds.

use q3de::control::queues::ExpansionDecision;
use q3de::decoder::{MatcherKind, SyndromeHistory};
use q3de::lattice::{ChipLayout, Coord, MatchingGraph, PatchIndex};
use q3de::noise::{ChipStrike, NoiseModel};
use q3de::pipeline::PipelineConfig;
use q3de::sim::{
    chip_patch_seed, ChipMemoryExperiment, ChipMemoryExperimentConfig, DecodingStrategy,
    MemoryExperiment, MemoryExperimentConfig,
};
use q3de::system::{SystemConfig, SystemPipeline};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Samples `rounds` noisy syndrome layers for a patch graph under `noise`
/// (data errors persist, ancilla errors flip single measurements) — the
/// same kernel the single-patch end-to-end test uses.
fn sampled_patch_history(
    graph: &MatchingGraph,
    noise: &NoiseModel,
    rounds: usize,
    rng: &mut ChaCha8Rng,
) -> SyndromeHistory {
    let mut flipped = vec![false; graph.num_edges()];
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for t in 0..rounds {
        for (ei, edge) in graph.edges().iter().enumerate() {
            if noise
                .sample_pauli(edge.qubit, t as u64, rng)
                .has_x_component()
            {
                flipped[ei] = !flipped[ei];
            }
        }
        let layer: Vec<bool> = (0..graph.num_nodes())
            .map(|n| {
                let mut parity = graph
                    .incident_edges(n)
                    .iter()
                    .filter(|&&e| flipped[e])
                    .count()
                    % 2
                    == 1;
                if noise
                    .sample_pauli(graph.node(n), t as u64, rng)
                    .has_x_component()
                {
                    parity = !parity;
                }
                parity
            })
            .collect();
        history.push_layer(&layer);
    }
    history
}

#[test]
fn quiet_chip_per_patch_rates_match_independent_single_patch_runs() {
    let patch = MemoryExperimentConfig::new(3, 2e-2);
    let chip = ChipMemoryExperiment::new(ChipMemoryExperimentConfig::new(2, 2, patch))
        .expect("valid chip");
    let shots = 50usize;
    let base_seed = 0x51D5u64;
    let estimate =
        chip.estimate_parallel::<ChaCha8Rng>(shots, DecodingStrategy::MbbeFree, base_seed);
    assert_eq!(estimate.shots, shots);
    assert_eq!(estimate.struck_shots, 0);

    // Exact criterion: each patch of the chip run is byte-for-byte the same
    // Monte-Carlo experiment as an independent single-patch run replaying
    // the same seeds, so the failure counts must agree exactly — not just
    // statistically.
    let single = MemoryExperiment::new(patch).expect("valid patch");
    let mut any_failures = 0usize;
    for patch_i in 0..chip.num_patches() {
        let failures = (0..shots as u64)
            .filter(|&stream| {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(chip_patch_seed(base_seed, stream, patch_i));
                single
                    .run_shot(DecodingStrategy::MbbeFree, &mut rng)
                    .logical_failure
            })
            .count();
        assert_eq!(
            estimate.per_patch_failures[patch_i], failures,
            "patch {patch_i}: chip-run failures diverge from the independent run"
        );
        any_failures += failures;
    }
    // d = 3 at p = 2e-2 fails often enough that the equality above is not
    // vacuously comparing zeros.
    assert!(
        any_failures > 0,
        "the comparison must cover at least one failing stream"
    );
    // Patch streams must be distinct experiments, not one stream copied
    // four times: with 50 shots at this rate, identical per-patch counts on
    // all four patches would be a seeding bug (shared streams), which the
    // seed function rules out.
    for i in 0..chip.num_patches() {
        for j in (i + 1)..chip.num_patches() {
            assert_ne!(
                chip_patch_seed(base_seed, 0, i),
                chip_patch_seed(base_seed, 0, j)
            );
        }
    }
}

/// The straddling-strike arbitration scenario: geometry shared by the two
/// tests below.
struct StraddleScenario {
    system: SystemPipeline,
    histories: Vec<SyndromeHistory>,
}

fn straddle_scenario(spare_budget: usize) -> StraddleScenario {
    // Two distance-7 patches side by side: 13-site footprints, pitch 14.
    // Union-find decoding keeps the 400-layer windows fast; the arbitration
    // flow under test is backend-independent.
    let patch = PipelineConfig::new(7, 1e-3)
        .with_matcher(MatcherKind::UnionFind)
        .with_detection_window(60)
        .with_count_threshold(8)
        .with_assumed_anomaly_size(4)
        // keep = 400: any grant from window 1 (cycles 0..400) survives that
        // window's end-of-window expiry sweep but lapses during window 2
        // (cycles 400..800), as does any still-queued request.
        .with_expansion_keep_cycles(400);
    let system =
        SystemPipeline::new(SystemConfig::new(1, 2, patch, spare_budget)).expect("valid system");

    // A size-4 burst over chip columns 10..18 straddles the boundary: patch
    // (0,0) sees local columns 10..12, patch (0,1) local columns 0..3.  It
    // relaxes at cycle 300, 100 cycles before the window ends, so the
    // detectors' sliding windows drain before the quiet follow-up window.
    let strike = ChipStrike::new(Coord::new(2, 10), 4, 100, 200, 0.5);
    let fan_out = strike.fan_out(system.layout());
    assert_eq!(fan_out.len(), 2, "the strike must straddle both patches");
    assert_eq!(fan_out[0].0, PatchIndex::new(0, 0));
    assert_eq!(fan_out[1].0, PatchIndex::new(0, 1));
    assert_eq!(fan_out[1].1.origin(), Coord::new(2, -4));

    // Sample each patch's 400-cycle window under its fanned-out region,
    // with fixed per-patch seeds.
    let histories: Vec<SyndromeHistory> = fan_out
        .iter()
        .enumerate()
        .map(|(i, (_, region))| {
            let noise = NoiseModel::uniform(1e-3).with_anomaly(*region);
            let mut rng = ChaCha8Rng::seed_from_u64(1_000 * (i as u64 + 1));
            sampled_patch_history(system.patch(i).graph(), &noise, 400, &mut rng)
        })
        .collect();
    StraddleScenario { system, histories }
}

#[test]
fn straddling_strike_grants_one_expansion_and_queues_the_other() {
    // Spare budget for exactly one d = 7 → d_exp = 15 expansion.
    let patch_distance = 7usize;
    let d_ano = 4usize;
    let d_exp = (patch_distance + 2 * d_ano).max(2 * patch_distance);
    let one_expansion = ChipLayout::expansion_cost(patch_distance, d_exp);
    let mut scenario = straddle_scenario(one_expansion);

    let report = scenario.system.process_window(&scenario.histories, 0);

    // (1) Both patches' anomaly detectors fire on the shared burst.
    assert_eq!(
        report.detecting_patches(),
        vec![0, 1],
        "the straddling strike must trigger both patch detectors"
    );
    for patch_report in &report.patch_reports {
        let detection = patch_report.detection.as_ref().expect("detection fired");
        assert!(
            detection.detection_cycle >= 100,
            "no detection before onset"
        );
        assert!(patch_report.decoding.was_rolled_back());
    }

    // (2) Exactly one d_exp ≥ d + 2·d_ano expansion is granted; the other
    // request waits in the expansion queue.
    assert_eq!(report.expansions.len(), 2);
    let granted: Vec<_> = report
        .expansions
        .iter()
        .filter_map(|o| match o.decision {
            ExpansionDecision::Granted(g) => Some((o.patch, g)),
            _ => None,
        })
        .collect();
    let queued: Vec<_> = report
        .expansions
        .iter()
        .filter(|o| matches!(o.decision, ExpansionDecision::Queued { .. }))
        .collect();
    assert_eq!(granted.len(), 1, "the budget covers exactly one expansion");
    assert_eq!(queued.len(), 1, "the other request must queue");
    let (granted_patch, grant) = granted[0];
    assert_eq!(granted_patch, PatchIndex::new(0, 0), "FIFO: patch 0 first");
    assert_eq!(queued[0].patch, PatchIndex::new(0, 1));
    assert!(
        grant.bid.to_distance >= patch_distance + 2 * d_ano,
        "granted d_exp {} violates d + 2·d_ano",
        grant.bid.to_distance
    );
    assert_eq!(grant.bid.cost_qubits, one_expansion);

    let arbiter = scenario.system.arbiter();
    assert_eq!(arbiter.in_use(), one_expansion);
    assert_eq!(arbiter.available(), 0);
    assert_eq!(arbiter.num_pending(), 1);

    // (3) Deterministic under fixed seeds: an identical scenario reproduces
    // the same decisions and detection cycles.
    let mut replay = straddle_scenario(one_expansion);
    let report2 = replay.system.process_window(&replay.histories, 0);
    assert_eq!(report2.detecting_patches(), report.detecting_patches());
    assert_eq!(report2.expansions.len(), report.expansions.len());
    for (a, b) in report.expansions.iter().zip(&report2.expansions) {
        assert_eq!(a.patch, b.patch);
        assert_eq!(a.decision, b.decision);
    }
    for (a, b) in report.patch_reports.iter().zip(&report2.patch_reports) {
        assert_eq!(
            a.detection.as_ref().map(|d| d.detection_cycle),
            b.detection.as_ref().map(|d| d.detection_cycle)
        );
    }

    // (4) Once the granted expansion expires, its qubits return to the
    // pool.  Patch 1's queued request was made at nearly the same cycle
    // with the same keep window, so by now its burst has relaxed too: the
    // arbiter drops the stale request instead of issuing a born-expired
    // grant that would hold the spares for nothing.
    // Noiseless histories: window 2 only advances time past the grant's
    // keep window (background noise can, with small probability, trip the
    // detector again and would re-arm the queued request).
    let quiet: Vec<SyndromeHistory> = (0..scenario.system.num_patches())
        .map(|i| {
            let noise = NoiseModel::uniform(0.0);
            let mut rng = ChaCha8Rng::seed_from_u64(7_000 + i as u64);
            sampled_patch_history(scenario.system.patch(i).graph(), &noise, 400, &mut rng)
        })
        .collect();
    let follow_up = scenario.system.process_window(&quiet, 400);
    assert_eq!(
        follow_up.reclaimed.len(),
        1,
        "the grant expires in window 2"
    );
    assert_eq!(follow_up.reclaimed[0].target, grant.target);
    assert!(
        follow_up.unblocked.is_empty(),
        "the queued request is stale by now and must be dropped, not granted"
    );
    let arbiter = scenario.system.arbiter();
    assert_eq!(arbiter.num_pending(), 0, "the stale request left the queue");
    assert_eq!(arbiter.in_use(), 0, "the whole pool is available again");
}

#[test]
fn doubled_budget_grants_both_straddled_patches() {
    // Complementary check: with spares for two expansions, neither patch
    // waits.
    let (d, d_ano) = (7usize, 4usize);
    let d_exp = (d + 2 * d_ano).max(2 * d);
    let two_expansions = 2 * ChipLayout::expansion_cost(d, d_exp);
    let mut scenario = straddle_scenario(two_expansions);
    let report = scenario.system.process_window(&scenario.histories, 0);
    assert_eq!(report.detecting_patches(), vec![0, 1]);
    assert_eq!(report.num_granted(), 2);
    assert_eq!(report.num_queued(), 0);
    assert_eq!(scenario.system.arbiter().num_pending(), 0);
    assert_eq!(scenario.system.arbiter().available(), 0);
}
