//! Differential test: the union-find backend vs the exact-MWPM oracle on
//! seeded random syndrome streams.
//!
//! For every stream the union-find decoder must return a *valid perfect
//! matching* of the detection events (each event in exactly one pair or
//! boundary match), and over >=200 streams per distance its logical error
//! rate must stay within 2x of exact MWPM's on the very same streams.
//!
//! Streams are sampled through `MemoryExperiment::sample_history` — the same
//! kernel every Monte-Carlo shot decodes — so the differential suite
//! exercises exactly the distribution the simulator sees.

use q3de::decoder::{DecodeOutcome, DecoderConfig, MatcherKind, SurfaceDecoder};
use q3de::lattice::ErrorKind;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

const STREAMS: usize = 200;

/// Asserts that the decode outcome is a valid perfect matching: every
/// detection event covered exactly once, never paired with itself.
fn assert_valid_matching(outcome: &DecodeOutcome, who: &str) {
    let mut coverage: HashMap<_, usize> = HashMap::new();
    for pair in &outcome.pairs {
        assert_ne!(pair.a, pair.b, "{who}: event paired with itself");
        *coverage.entry(pair.a).or_insert(0) += 1;
        *coverage.entry(pair.b).or_insert(0) += 1;
    }
    for &(event, _, _) in &outcome.boundary_matches {
        *coverage.entry(event).or_insert(0) += 1;
    }
    assert_eq!(
        coverage.len(),
        outcome.num_events(),
        "{who}: every event must be covered"
    );
    for &event in &outcome.events {
        assert_eq!(
            coverage.get(&event),
            Some(&1),
            "{who}: event {event} covered {} times",
            coverage.get(&event).copied().unwrap_or(0)
        );
    }
}

/// Runs the differential comparison for one experiment configuration and
/// returns the per-backend failure counts (exact, union-find).
fn differential(
    config: MemoryExperimentConfig,
    strategy: DecodingStrategy,
    salt: u64,
) -> (usize, usize) {
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let graph = experiment.code().matching_graph(ErrorKind::X);
    let model = experiment.weight_model(strategy);
    let mut exact = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::Exact),
    );
    let mut union_find = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::UnionFind),
    );
    let d = config.distance as u64;
    let mut exact_failures = 0usize;
    let mut uf_failures = 0usize;
    for stream in 0..STREAMS {
        let mut rng = ChaCha8Rng::seed_from_u64(salt ^ (d * 1_000_003 + stream as u64));
        let (history, parity) = experiment.sample_history(strategy, &mut rng);
        let exact_out = exact.decode(&history, &model);
        let uf_out = union_find.decode(&history, &model);
        assert_valid_matching(&uf_out, "union-find");
        assert_valid_matching(&exact_out, "exact");
        exact_failures += usize::from(exact_out.is_logical_failure(parity));
        uf_failures += usize::from(uf_out.is_logical_failure(parity));
    }
    (exact_failures, uf_failures)
}

#[test]
fn union_find_tracks_exact_mwpm_on_uniform_streams() {
    // p = 2e-2 sits just below threshold: high enough that exact MWPM fails
    // on a measurable fraction of streams, so the 2x bound is not vacuous.
    let p = 2e-2;
    for d in [3usize, 5, 7] {
        let config = MemoryExperimentConfig::new(d, p);
        let (exact, uf) = differential(config, DecodingStrategy::MbbeFree, 0xD1FF);
        assert!(
            exact > 0,
            "d={d}: exact MWPM should fail on some of {STREAMS} streams at p={p}"
        );
        assert!(
            uf <= 2 * exact,
            "d={d}: union-find failed {uf}/{STREAMS} vs exact {exact}/{STREAMS} \
             — outside the 2x differential bound"
        );
    }
}

#[test]
fn union_find_tracks_exact_mwpm_under_burst_reweighting() {
    // The rollback hot path: a centred MBBE with anomaly-aware re-weighted
    // costs.  Union-find must stay within 2x of exact here too.
    let p = 8e-3;
    for d in [5usize, 7] {
        let config =
            MemoryExperimentConfig::new(d, p).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let (exact, uf) = differential(config, DecodingStrategy::AnomalyAware, 0xB065);
        assert!(
            exact > 0,
            "d={d}: the burst should defeat exact MWPM on some of {STREAMS} streams"
        );
        assert!(
            uf <= 2 * exact,
            "d={d}: union-find failed {uf}/{STREAMS} vs exact {exact}/{STREAMS} \
             under re-weighting — outside the 2x differential bound"
        );
    }
}
