//! Differential test: the union-find, blossom and alternating-tree backends
//! vs the exact-MWPM oracle on seeded random syndrome streams.
//!
//! For every stream the union-find decoder must return a *valid perfect
//! matching* of the detection events (each event in exactly one pair or
//! boundary match), and over >=200 streams per distance its logical error
//! rate must stay within 2x of exact MWPM's on the very same streams.
//!
//! The blossom and alternating-tree backends are exact, so they are held to
//! a much stronger pin: their *total matching weight* must equal the exact
//! oracle's on every stream the oracle can solve exactly — at most 22
//! detection events, the bitmask DP's hard ceiling (the oracle runs with
//! `exact_cluster_threshold = 22`) — and must never be *worse* on the rest,
//! where the oracle's refined-greedy fallback is merely heuristic and the
//! exact backends routinely beat it.  The two exact sparse backends must
//! also agree with *each other* on every stream, pinned or not.
//!
//! Streams are sampled through `MemoryExperiment::sample_history` — the same
//! kernel every Monte-Carlo shot decodes — so the differential suite
//! exercises exactly the distribution the simulator sees.  A separate
//! tie-heavy random-graph loop (30k instances release-mode in CI's
//! `matcher-smoke` job, a 2k slice in tier-1) hammers the degenerate-optimum
//! regime where dual ties force blossom formation.

use q3de::decoder::{DecodeOutcome, DecoderConfig, MatcherKind, SurfaceDecoder};
use q3de::lattice::ErrorKind;
use q3de::matching::{AltTreeBackend, DecoderBackend, ExactBackend, SyndromeGraph};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

const STREAMS: usize = 200;

/// Asserts that the decode outcome is a valid perfect matching: every
/// detection event covered exactly once, never paired with itself.
fn assert_valid_matching(outcome: &DecodeOutcome, who: &str) {
    let mut coverage: HashMap<_, usize> = HashMap::new();
    for pair in &outcome.pairs {
        assert_ne!(pair.a, pair.b, "{who}: event paired with itself");
        *coverage.entry(pair.a).or_insert(0) += 1;
        *coverage.entry(pair.b).or_insert(0) += 1;
    }
    for &(event, _, _) in &outcome.boundary_matches {
        *coverage.entry(event).or_insert(0) += 1;
    }
    assert_eq!(
        coverage.len(),
        outcome.num_events(),
        "{who}: every event must be covered"
    );
    for &event in &outcome.events {
        assert_eq!(
            coverage.get(&event),
            Some(&1),
            "{who}: event {event} covered {} times",
            coverage.get(&event).copied().unwrap_or(0)
        );
    }
}

/// Runs the differential comparison for one experiment configuration and
/// returns the per-backend failure counts (exact, union-find) plus the
/// number of streams that hit the blossom-vs-exact *equality* pin (windows
/// small enough for the oracle's bitmask DP to be provably exact).
fn differential(
    config: MemoryExperimentConfig,
    strategy: DecodingStrategy,
    salt: u64,
) -> (usize, usize, usize) {
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let graph = experiment.code().matching_graph(ErrorKind::X);
    let model = experiment.weight_model(strategy);
    let mut exact = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::Exact),
    );
    let mut union_find = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::UnionFind),
    );
    let mut blossom = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::Blossom),
    );
    let mut tree = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig::default().with_matcher(MatcherKind::Tree),
    );
    // The weight oracle: exact bitmask DP on every cluster its matcher can
    // represent (22 nodes), so no inexact fallback muddies the equality pin.
    let mut oracle = SurfaceDecoder::with_config(
        &graph,
        DecoderConfig {
            matcher: MatcherKind::Exact,
            exact_cluster_threshold: 22,
            refine_rounds: 64,
        },
    );
    let d = config.distance as u64;
    let mut exact_failures = 0usize;
    let mut uf_failures = 0usize;
    let mut pinned = 0usize;
    for stream in 0..STREAMS {
        let mut rng = ChaCha8Rng::seed_from_u64(salt ^ (d * 1_000_003 + stream as u64));
        let (history, parity) = experiment.sample_history(strategy, &mut rng);
        let exact_out = exact.decode(&history, &model);
        let uf_out = union_find.decode(&history, &model);
        let blossom_out = blossom.decode(&history, &model);
        let tree_out = tree.decode(&history, &model);
        let oracle_out = oracle.decode(&history, &model);
        assert_valid_matching(&uf_out, "union-find");
        assert_valid_matching(&exact_out, "exact");
        assert_valid_matching(&blossom_out, "blossom");
        assert_valid_matching(&tree_out, "tree");
        let (bw, tw, ow) = (
            blossom_out.total_weight,
            tree_out.total_weight,
            oracle_out.total_weight,
        );
        let tol = 1e-6 * (1.0 + ow.abs());
        // Both sparse exact backends must always agree with each other,
        // whether or not the oracle window is exactly solvable.
        assert!(
            (bw - tw).abs() <= tol,
            "d={d} stream {stream}: tree weight {tw} != blossom weight {bw} \
             on a {}-event window",
            oracle_out.num_events()
        );
        if oracle_out.num_events() <= 22 {
            // Every cluster fits the oracle's DP: all three are exact,
            // weights must coincide.
            assert!(
                (bw - ow).abs() <= tol,
                "d={d} stream {stream}: blossom weight {bw} != exact weight {ow} \
                 on an exactly-solvable window ({} events)",
                oracle_out.num_events()
            );
            assert!(
                (tw - ow).abs() <= tol,
                "d={d} stream {stream}: tree weight {tw} != exact weight {ow} \
                 on an exactly-solvable window ({} events)",
                oracle_out.num_events()
            );
            pinned += 1;
        } else {
            // The oracle may have fallen back to refined greedy on a large
            // cluster; the exact backends can only be at least as good.
            assert!(
                bw <= ow + tol,
                "d={d} stream {stream}: blossom weight {bw} worse than the \
                 oracle's {ow} on a {}-event window",
                oracle_out.num_events()
            );
            assert!(
                tw <= ow + tol,
                "d={d} stream {stream}: tree weight {tw} worse than the \
                 oracle's {ow} on a {}-event window",
                oracle_out.num_events()
            );
        }
        exact_failures += usize::from(exact_out.is_logical_failure(parity));
        uf_failures += usize::from(uf_out.is_logical_failure(parity));
    }
    (exact_failures, uf_failures, pinned)
}

#[test]
fn union_find_tracks_exact_mwpm_on_uniform_streams() {
    // p = 2e-2 sits just below threshold: high enough that exact MWPM fails
    // on a measurable fraction of streams, so the 2x bound is not vacuous.
    let p = 2e-2;
    for d in [3usize, 5, 7] {
        let config = MemoryExperimentConfig::new(d, p);
        let (exact, uf, pinned) = differential(config, DecodingStrategy::MbbeFree, 0xD1FF);
        assert!(
            exact > 0,
            "d={d}: exact MWPM should fail on some of {STREAMS} streams at p={p}"
        );
        // Busy windows (> 22 events) only get the never-worse bound; at
        // d = 3 nearly every stream hits the equality pin, at d = 7 about
        // a tenth still do.
        assert!(
            pinned * 20 >= STREAMS,
            "d={d}: only {pinned}/{STREAMS} streams hit the blossom equality pin"
        );
        assert!(
            uf <= 2 * exact,
            "d={d}: union-find failed {uf}/{STREAMS} vs exact {exact}/{STREAMS} \
             — outside the 2x differential bound"
        );
    }
}

#[test]
fn union_find_tracks_exact_mwpm_under_burst_reweighting() {
    // The rollback hot path: a centred MBBE with anomaly-aware re-weighted
    // costs.  Union-find must stay within 2x of exact here too.
    let p = 8e-3;
    let mut total_pinned = 0usize;
    for d in [5usize, 7] {
        let config =
            MemoryExperimentConfig::new(d, p).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let (exact, uf, pinned) = differential(config, DecodingStrategy::AnomalyAware, 0xB065);
        total_pinned += pinned;
        assert!(
            exact > 0,
            "d={d}: the burst should defeat exact MWPM on some of {STREAMS} streams"
        );
        assert!(
            uf <= 2 * exact,
            "d={d}: union-find failed {uf}/{STREAMS} vs exact {exact}/{STREAMS} \
             under re-weighting — outside the 2x differential bound"
        );
    }
    // A full-rate burst floods d = 7 windows past the oracle's DP ceiling
    // (never-worse still binds on every one of them); d = 5 keeps enough
    // small windows that the equality pin sees re-weighted graphs here too.
    assert!(
        total_pinned > 0,
        "no burst stream hit the blossom equality pin"
    );
}

/// Samples one tie-heavy random instance: a connected sparse graph whose
/// weights are almost all drawn from {1, 2} (with a sprinkling of exact
/// zeros to exercise the tree backend's free pre-pairing), boundary edges
/// on a random vertex subset, and a defect set small enough that the
/// bitmask-DP oracle is provably exact.
fn tie_heavy_instance(rng: &mut ChaCha8Rng) -> (SyndromeGraph, Vec<usize>) {
    let n = rng.gen_range(6..=24);
    let mut graph = SyndromeGraph::new(n);
    let tie_weight = |rng: &mut ChaCha8Rng| -> f64 {
        if rng.gen_range(0..20) == 0 {
            0.0
        } else {
            rng.gen_range(1..=2) as f64
        }
    };
    // random spanning tree keeps every instance connected ...
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        let w = tie_weight(rng);
        graph.add_edge(parent, v, w);
    }
    // ... plus chords, so tight-edge cycles (and therefore blossoms) form
    for _ in 0..n / 2 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            graph.add_edge(u, v, tie_weight(rng));
        }
    }
    // at least one boundary attachment makes every defect set feasible
    let boundary_sites = rng.gen_range(1..=3);
    for _ in 0..boundary_sites {
        let v = rng.gen_range(0..n);
        graph.add_boundary_edge(v, tie_weight(rng).max(1.0));
    }
    let k = rng.gen_range(0..=n.min(12));
    let mut defects: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        defects.swap(i, j);
    }
    defects.truncate(k);
    defects.sort_unstable();
    (graph, defects)
}

/// The tie-heavy random-problem loop: `instances` random graphs whose
/// near-degenerate integer weights force the alternating-tree backend
/// through its blossom/expand/zero-pre-pair paths, each pinned
/// weight-equal to the exact bitmask-DP oracle.
fn tie_heavy_differential(instances: usize, salt: u64) {
    let mut tree = AltTreeBackend::new();
    let mut oracle = ExactBackend::new(22, 64);
    for instance in 0..instances {
        let mut rng = ChaCha8Rng::seed_from_u64(salt ^ (instance as u64).wrapping_mul(0x9E37));
        let (graph, defects) = tie_heavy_instance(&mut rng);
        let tree_match = tree.decode_defects(&graph, &defects);
        let oracle_match = oracle.decode_defects(&graph, &defects);
        assert!(
            tree_match.is_perfect(defects.len()),
            "instance {instance}: tree matching not perfect"
        );
        let (tw, ow) = (tree_match.total_cost(), oracle_match.total_cost());
        assert!(
            (tw - ow).abs() <= 1e-6 * (1.0 + ow.abs()),
            "instance {instance}: tree weight {tw} != oracle weight {ow} \
             ({} defects)",
            defects.len()
        );
    }
}

#[test]
fn tree_weight_equals_exact_on_tie_heavy_random_problems() {
    // Tier-1 slice of the 30k loop below: fast enough for debug builds while
    // still driving thousands of degenerate optima through the tree backend.
    tie_heavy_differential(2_000, 0x7E31);
}

#[test]
#[ignore = "30k-instance release-mode loop; run by CI's matcher-smoke job"]
fn tree_weight_equals_exact_on_tie_heavy_random_problems_full() {
    tie_heavy_differential(30_000, 0x7E31);
}

#[test]
fn blossom_weight_equals_exact_on_mild_anomaly_streams() {
    // A mild centred anomaly re-weights the graph without flooding it with
    // detection events, so most windows stay within the oracle's exact
    // range: the blossom-vs-exact weight-equality pin covers anomaly
    // re-weighted graphs at every swept distance.
    let p = 4e-3;
    for d in [3usize, 5, 7] {
        let config =
            MemoryExperimentConfig::new(d, p).with_anomaly(AnomalyInjection::centered(1, 0.2));
        let (_, _, pinned) = differential(config, DecodingStrategy::AnomalyAware, 0xA0A1);
        assert!(
            pinned * 2 >= STREAMS,
            "d={d}: only {pinned}/{STREAMS} mild-anomaly streams hit the \
             blossom equality pin"
        );
    }
}
