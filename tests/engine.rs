//! Acceptance tests of the sweep engine (ISSUE 4): checkpoint/resume
//! bit-identity, adaptive-mode statistical agreement with fixed-shot runs,
//! and machine-independence of the scheduler.

use std::path::PathBuf;

use q3de::sim::engine::{Checkpoint, EngineError, SweepConfig, SweepPoint, SweepRunner};
use q3de::sim::{
    AnomalyInjection, ChipMemoryExperimentConfig, ChipStrikePolicy, DecodingStrategy,
    MemoryExperiment, MemoryExperimentConfig,
};
use rand_chacha::ChaCha8Rng;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("q3de-engine-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn memory_points() -> Vec<SweepPoint> {
    // Two memory points and one chip point — the three kernel families the
    // figure binaries sweep.
    let quiet = MemoryExperimentConfig::new(3, 2e-2);
    let burst =
        MemoryExperimentConfig::new(5, 8e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
    let chip = ChipMemoryExperimentConfig::new(2, 2, MemoryExperimentConfig::new(3, 8e-3))
        .with_strike(ChipStrikePolicy::Random {
            probability: 0.5,
            size: 2,
            rate: 0.5,
        });
    vec![
        SweepPoint::from_memory::<ChaCha8Rng>("quiet", quiet, DecodingStrategy::MbbeFree, 0xA)
            .unwrap(),
        SweepPoint::from_memory::<ChaCha8Rng>("burst", burst, DecodingStrategy::Blind, 0xB)
            .unwrap(),
        SweepPoint::from_chip::<ChaCha8Rng>("chip", chip, DecodingStrategy::Blind, 0xC).unwrap(),
    ]
}

#[test]
fn resumed_sweep_is_bit_identical_to_an_uninterrupted_one() {
    let path = temp_path("resume.json");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted reference: 256 shots per point.
    let reference = SweepRunner::new(SweepConfig::fixed(256))
        .run(memory_points())
        .unwrap();

    // "Killed" run: the same schedule truncated at its first block boundary
    // (64 shots) leaves exactly the checkpoint a killed 256-shot sweep
    // would have written after its first blocks.
    SweepRunner::new(SweepConfig::fixed(64).with_checkpoint(&path))
        .run(memory_points())
        .unwrap();
    let partial = Checkpoint::load(&path).unwrap();
    assert!(partial.points.iter().all(|p| p.shots == 64));

    // Resume with the full budget: statistics must match bit for bit.
    let resumed = SweepRunner::new(
        SweepConfig::fixed(256)
            .with_checkpoint(&path)
            .with_resume(true),
    )
    .run(memory_points())
    .unwrap();
    for (r, f) in resumed.points.iter().zip(&reference.points) {
        assert_eq!(r.id, f.id);
        assert_eq!(
            (r.shots, r.failures),
            (f.shots, f.failures),
            "point {} diverged after resume",
            r.id
        );
    }
    // The final checkpoint reflects the completed sweep and can be resumed
    // again as a no-op.
    let finished = Checkpoint::load(&path).unwrap();
    assert!(finished.points.iter().all(|p| p.shots == 256));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn adaptive_estimate_falls_inside_the_fixed_runs_wilson_interval() {
    // A rate around 30 % converges quickly; ceiling 2048, floor 64.
    let burst =
        MemoryExperimentConfig::new(5, 8e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
    let point =
        || SweepPoint::from_memory::<ChaCha8Rng>("p", burst, DecodingStrategy::Blind, 77).unwrap();

    let fixed = SweepRunner::new(SweepConfig::fixed(2048))
        .run(vec![point()])
        .unwrap();
    let adaptive = SweepRunner::new(SweepConfig::adaptive(64, 2048, 0.15))
        .run(vec![point()])
        .unwrap();

    let f = fixed.point("p").unwrap();
    let a = adaptive.point("p").unwrap();
    assert!(a.converged, "a ~30% point must converge at rse 0.15");
    assert!(
        a.shots < f.shots,
        "adaptive mode must spend fewer shots ({} vs {})",
        a.shots,
        f.shots
    );
    let (low, high) = f.wilson();
    let estimate = a.failure_rate();
    assert!(
        low <= estimate && estimate <= high,
        "adaptive estimate {estimate} outside the fixed run's interval [{low}, {high}]"
    );
    // And symmetrically, the fixed estimate lies in the adaptive interval.
    let (a_low, a_high) = a.wilson();
    assert!(
        a_low <= f.failure_rate() && f.failure_rate() <= a_high,
        "fixed estimate {} outside adaptive interval [{a_low}, {a_high}]",
        f.failure_rate()
    );
    // Because the adaptive tally is a prefix of the fixed stream set, it
    // must agree with a direct replay of those streams.
    let experiment = MemoryExperiment::new(burst).unwrap();
    let replay = (0..a.shots as u64)
        .filter(|&s| {
            experiment
                .run_stream::<ChaCha8Rng>(DecodingStrategy::Blind, 77, s)
                .logical_failure
        })
        .count();
    assert_eq!(a.failures, replay);
}

#[test]
fn sweep_statistics_are_independent_of_the_worker_count() {
    let run = |threads: usize| {
        let report = SweepRunner::new(SweepConfig::adaptive(32, 256, 0.2).with_threads(threads))
            .run(memory_points())
            .unwrap();
        report
            .points
            .iter()
            .map(|p| (p.id.clone(), p.shots, p.failures, p.converged))
            .collect::<Vec<_>>()
    };
    let reference = run(1);
    assert_eq!(run(2), reference);
    assert_eq!(run(7), reference);
}

#[test]
fn foreign_checkpoints_are_rejected_not_silently_merged() {
    let path = temp_path("foreign.json");
    let _ = std::fs::remove_file(&path);
    // Checkpoint a sweep over different points...
    SweepRunner::new(SweepConfig::fixed(64).with_checkpoint(&path))
        .run(vec![SweepPoint::new("other", |s: u64| s.is_multiple_of(5))])
        .unwrap();
    // ...then try to resume this sweep from it.
    let err = SweepRunner::new(
        SweepConfig::fixed(64)
            .with_checkpoint(&path)
            .with_resume(true),
    )
    .run(memory_points())
    .unwrap_err();
    assert!(
        matches!(err, EngineError::CheckpointMismatch { .. }),
        "expected a mismatch error, got: {err}"
    );
    std::fs::remove_file(&path).unwrap();
}
