//! Integration tests spanning the control, scaling and noise crates: the
//! architecture-level claims of the paper.

use q3de::control::{ArchitectureMode, ThroughputConfig, ThroughputSimulator};
use q3de::noise::{CosmicRayProcess, PhysicalParams};
use q3de::scaling::{
    qubit_density::log_grid, MemoryOverheadModel, ScalabilityConfig, ScalabilityModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn q3de_throughput_beats_the_baseline_at_realistic_mbbe_rates() {
    let run = |mode| {
        let config = ThroughputConfig {
            plane_size: 7,
            code_distance: 5,
            num_instructions: 100,
            mbbe_probability_per_block_per_d_cycles: 1e-5,
            mbbe_duration_d_cycles: 100,
            mode,
            max_cycles: 100_000,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        ThroughputSimulator::new(config)
            .run(&mut rng)
            .instructions_per_d_cycles
    };
    let q3de = run(ArchitectureMode::Q3de);
    let baseline = run(ArchitectureMode::Baseline);
    assert!(
        q3de > baseline,
        "Q3DE {q3de} should beat the doubled-distance baseline {baseline}"
    );
    assert!(
        q3de / baseline > 1.5,
        "the advantage should approach 2x, got {}",
        q3de / baseline
    );
}

#[test]
fn scalability_model_shows_q3de_reducing_qubit_requirements() {
    let model = ScalabilityModel::new(ScalabilityConfig::default());
    let densities = log_grid(1.0, 5000.0, 300);
    let q3de = model
        .required_density(4.0, true, &densities)
        .expect("Q3DE feasible");
    let baseline = model
        .required_density(4.0, false, &densities)
        .expect("baseline feasible");
    assert!(q3de.qubit_density_ratio < baseline.qubit_density_ratio);
}

#[test]
fn cosmic_ray_process_matches_mcewen_statistics() {
    let params = PhysicalParams::mcewen();
    let mut process = CosmicRayProcess::new(params, 43, 43);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    // 10 seconds of cycles at 1 µs each → about 10 strikes at 1 Hz.
    let events = process.advance_by(10_000_000, &mut rng);
    assert!(
        (2..=25).contains(&events.len()),
        "expected on the order of 10 strikes in 10 s, got {}",
        events.len()
    );
    assert!(events.iter().all(|e| e.region.duration_cycles() == 25_000));
}

#[test]
fn memory_overhead_stays_in_the_hundreds_of_kilobits() {
    let model = MemoryOverheadModel::table3();
    let total = MemoryOverheadModel::to_kbit(model.total_bits());
    assert!(
        total > 500.0 && total < 1000.0,
        "total overhead {total} kbit"
    );
}
