//! Cross-crate integration tests: the full detect → expand → re-decode flow
//! and the memory experiment built on top of all substrate crates.

use q3de::decoder::SyndromeHistory;
use q3de::lattice::Coord;
use q3de::noise::{AnomalousRegion, NoiseModel};
use q3de::pipeline::{PipelineConfig, Q3dePipeline};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sampled_history(
    pipeline: &Q3dePipeline,
    noise: &NoiseModel,
    rounds: usize,
    rng: &mut ChaCha8Rng,
) -> SyndromeHistory {
    let graph = pipeline.graph();
    let mut flipped = vec![false; graph.num_edges()];
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for t in 0..rounds {
        for (ei, edge) in graph.edges().iter().enumerate() {
            if noise
                .sample_pauli(edge.qubit, t as u64, rng)
                .has_x_component()
            {
                flipped[ei] = !flipped[ei];
            }
        }
        let layer: Vec<bool> = (0..graph.num_nodes())
            .map(|n| {
                let mut parity = graph
                    .incident_edges(n)
                    .iter()
                    .filter(|&&e| flipped[e])
                    .count()
                    % 2
                    == 1;
                if noise
                    .sample_pauli(graph.node(n), t as u64, rng)
                    .has_x_component()
                {
                    parity = !parity;
                }
                parity
            })
            .collect();
        history.push_layer(&layer);
    }
    history
}

#[test]
fn quiet_memory_is_stable_below_threshold() {
    let config = MemoryExperimentConfig::new(5, 4e-3);
    let experiment = MemoryExperiment::new(config).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let estimate = experiment.estimate(200, DecodingStrategy::MbbeFree, &mut rng);
    assert!(
        estimate.logical_error_rate() < 0.05,
        "well below threshold the memory must be stable, got {}",
        estimate.logical_error_rate()
    );
}

#[test]
fn mbbe_degrades_and_q3de_recovers_the_memory() {
    let config =
        MemoryExperimentConfig::new(5, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
    let experiment = MemoryExperiment::new(config).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let shots = 250;
    let free = experiment.estimate(shots, DecodingStrategy::MbbeFree, &mut rng);
    let blind = experiment.estimate(shots, DecodingStrategy::Blind, &mut rng);
    let aware = experiment.estimate(shots, DecodingStrategy::AnomalyAware, &mut rng);
    assert!(blind.logical_error_rate() > free.logical_error_rate());
    assert!(aware.logical_error_rate() <= blind.logical_error_rate() + 0.03);
}

#[test]
fn end_to_end_pipeline_detects_expands_and_reexecutes() {
    let config = PipelineConfig::new(7, 1e-3)
        .with_detection_window(60)
        .with_count_threshold(8)
        .with_assumed_anomaly_size(2);
    let mut pipeline = Q3dePipeline::new(config).unwrap();
    let burst = AnomalousRegion::new(Coord::new(4, 4), 2, 100, 100_000, 0.5);
    let noise = NoiseModel::uniform(1e-3).with_anomaly(burst);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let history = sampled_history(&pipeline, &noise, 350, &mut rng);
    let report = pipeline.process_window(&history, 0);
    assert!(report.reacted(), "the burst must be detected end to end");
    assert!(report.expansion_instruction.is_some());
    assert!(report.decoding.was_rolled_back());
    assert_eq!(pipeline.pending_expansions(), 1);
    // The expansion plan the control unit would execute covers the anomaly.
    let plan = pipeline.expansion_plan().unwrap();
    assert!(plan.covers_anomaly(2));
}

#[test]
fn pipeline_stays_quiet_without_bursts() {
    let config = PipelineConfig::new(5, 1e-3);
    let mut pipeline = Q3dePipeline::new(config).unwrap();
    let noise = NoiseModel::uniform(1e-3);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let history = sampled_history(&pipeline, &noise, 200, &mut rng);
    let report = pipeline.process_window(&history, 0);
    assert!(!report.reacted());
    assert!(!report.decoding.was_rolled_back());
}
