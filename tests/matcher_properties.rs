//! Cross-matcher property tests over random matching problems.
//!
//! For small random `MatchingProblem`s the exact dynamic-programming matcher
//! is the ground truth: the greedy matcher may never beat it, and every
//! matcher must return a *perfect* matching — each defect either paired with
//! exactly one other defect (symmetrically) or matched to the boundary.

use q3de::matching::{
    ExactMatcher, GreedyMatcher, MatchTarget, Matcher, MatchingProblem, RefinedGreedyMatcher,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 150;

/// A random symmetric problem with positive pair and boundary costs.
fn random_problem(rng: &mut ChaCha8Rng, max_nodes: usize) -> MatchingProblem {
    let n = rng.gen_range(0..=max_nodes);
    let pair: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.05..20.0)).collect();
    let boundary: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..20.0)).collect();
    MatchingProblem::from_fn(
        n,
        |i, j| pair[i * n + j].min(pair[j * n + i]),
        |i| boundary[i],
    )
}

/// Asserts that `matching` is a perfect matching of `problem`: complete, and
/// an involution (i matched to j implies j matched to i, and never i to i).
fn assert_perfect(matching: &q3de::matching::Matching, problem: &MatchingProblem, who: &str) {
    assert!(
        matching.is_complete(),
        "{who}: matching must cover every defect"
    );
    assert_eq!(
        matching.len(),
        problem.num_nodes(),
        "{who}: one target per defect"
    );
    for (i, target) in matching.iter() {
        match target {
            MatchTarget::Boundary => {}
            MatchTarget::Node(j) => {
                assert_ne!(i, j, "{who}: defect {i} cannot be matched to itself");
                assert_eq!(
                    matching.target(j),
                    MatchTarget::Node(i),
                    "{who}: pairing must be symmetric ({i} -> {j})"
                );
            }
        }
    }
}

#[test]
fn greedy_is_perfect_and_never_beats_exact() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 10);
        let exact = ExactMatcher::default().solve(&problem);
        let greedy = GreedyMatcher::new().solve(&problem);

        assert_perfect(&exact, &problem, "exact");
        assert_perfect(&greedy, &problem, "greedy");

        let exact_cost = exact.total_cost(&problem);
        let greedy_cost = greedy.total_cost(&problem);
        assert!(
            greedy_cost >= exact_cost - 1e-9,
            "case {case}: greedy ({greedy_cost}) beat the exact optimum ({exact_cost}) \
             on a {}-defect problem",
            problem.num_nodes()
        );
    }
}

#[test]
fn refined_greedy_is_bracketed_between_exact_and_greedy() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 9);
        let exact_cost = ExactMatcher::default().solve(&problem).total_cost(&problem);
        let greedy_cost = GreedyMatcher::new().solve(&problem).total_cost(&problem);
        let refined = RefinedGreedyMatcher::default().solve(&problem);
        assert_perfect(&refined, &problem, "refined");
        let refined_cost = refined.total_cost(&problem);
        assert!(
            refined_cost >= exact_cost - 1e-9,
            "case {case}: refined ({refined_cost}) beat exact ({exact_cost})"
        );
        assert!(
            refined_cost <= greedy_cost + 1e-9,
            "case {case}: refinement made greedy worse ({refined_cost} > {greedy_cost})"
        );
    }
}

#[test]
fn matchers_agree_on_trivial_problems() {
    // Zero defects: the empty matching, cost 0, for every engine.
    let empty = MatchingProblem::new(0);
    for (name, matching) in [
        ("exact", ExactMatcher::default().solve(&empty)),
        ("greedy", GreedyMatcher::new().solve(&empty)),
        ("refined", RefinedGreedyMatcher::default().solve(&empty)),
    ] {
        assert!(
            matching.is_complete(),
            "{name} must handle the empty problem"
        );
        assert_eq!(matching.total_cost(&empty), 0.0, "{name} empty cost");
    }

    // One defect: boundary matching is the only perfect option.
    let single = MatchingProblem::from_fn(1, |_, _| 1.0, |_| 2.5);
    for (name, matching) in [
        ("exact", ExactMatcher::default().solve(&single)),
        ("greedy", GreedyMatcher::new().solve(&single)),
        ("refined", RefinedGreedyMatcher::default().solve(&single)),
    ] {
        assert_eq!(
            matching.target(0),
            MatchTarget::Boundary,
            "{name} single defect"
        );
        assert_eq!(
            matching.total_cost(&single),
            2.5,
            "{name} single-defect cost"
        );
    }
}

#[test]
fn greedy_matches_exact_when_pairing_is_forced() {
    // Two defects with a pair cost far below either boundary cost: both
    // engines must pair them, and the costs coincide exactly.
    let mut rng = ChaCha8Rng::seed_from_u64(0xF0FCED);
    for _ in 0..CASES {
        let pair_cost = rng.gen_range(0.01..0.5);
        let b0 = rng.gen_range(5.0..10.0);
        let b1 = rng.gen_range(5.0..10.0);
        let problem =
            MatchingProblem::from_fn(2, |_, _| pair_cost, |i| if i == 0 { b0 } else { b1 });
        let exact = ExactMatcher::default().solve(&problem);
        let greedy = GreedyMatcher::new().solve(&problem);
        assert_eq!(exact.target(0), MatchTarget::Node(1));
        assert_eq!(greedy.target(0), MatchTarget::Node(1));
        assert!((exact.total_cost(&problem) - greedy.total_cost(&problem)).abs() < 1e-12);
    }
}
