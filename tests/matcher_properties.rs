//! Cross-matcher property tests over random matching problems.
//!
//! For small random `MatchingProblem`s the exact dynamic-programming matcher
//! is the ground truth: the greedy matcher may never beat it, and every
//! matcher must return a *perfect* matching — each defect either paired with
//! exactly one other defect (symmetrically) or matched to the boundary.

use q3de::decoder::{DecoderConfig, MatcherKind, SurfaceDecoder, SyndromeHistory, WeightModel};
use q3de::lattice::{Coord, ErrorKind, Pauli, PauliString, StabilizerKind, SurfaceCode};
use q3de::matching::{
    AltTreeBackend, BlossomMatcher, DecoderBackend, ExactBackend, ExactMatcher, GreedyMatcher,
    MatchTarget, Matcher, MatchingProblem, RefinedGreedyMatcher, SyndromeGraph,
};
use q3de::noise::AnomalousRegion;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

const CASES: usize = 150;

/// A random symmetric problem with positive pair and boundary costs.
fn random_problem(rng: &mut ChaCha8Rng, max_nodes: usize) -> MatchingProblem {
    let n = rng.gen_range(0..=max_nodes);
    let pair: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.05..20.0)).collect();
    let boundary: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..20.0)).collect();
    MatchingProblem::from_fn(
        n,
        |i, j| pair[i * n + j].min(pair[j * n + i]),
        |i| boundary[i],
    )
}

/// Asserts that `matching` is a perfect matching of `problem`: complete, and
/// an involution (i matched to j implies j matched to i, and never i to i).
fn assert_perfect(matching: &q3de::matching::Matching, problem: &MatchingProblem, who: &str) {
    assert!(
        matching.is_complete(),
        "{who}: matching must cover every defect"
    );
    assert_eq!(
        matching.len(),
        problem.num_nodes(),
        "{who}: one target per defect"
    );
    for (i, target) in matching.iter() {
        match target {
            MatchTarget::Boundary => {}
            MatchTarget::Node(j) => {
                assert_ne!(i, j, "{who}: defect {i} cannot be matched to itself");
                assert_eq!(
                    matching.target(j),
                    MatchTarget::Node(i),
                    "{who}: pairing must be symmetric ({i} -> {j})"
                );
            }
        }
    }
}

#[test]
fn greedy_is_perfect_and_never_beats_exact() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 10);
        let exact = ExactMatcher::default().solve(&problem);
        let greedy = GreedyMatcher::new().solve(&problem);

        assert_perfect(&exact, &problem, "exact");
        assert_perfect(&greedy, &problem, "greedy");

        let exact_cost = exact.total_cost(&problem);
        let greedy_cost = greedy.total_cost(&problem);
        assert!(
            greedy_cost >= exact_cost - 1e-9,
            "case {case}: greedy ({greedy_cost}) beat the exact optimum ({exact_cost}) \
             on a {}-defect problem",
            problem.num_nodes()
        );
    }
}

#[test]
fn refined_greedy_is_bracketed_between_exact_and_greedy() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 9);
        let exact_cost = ExactMatcher::default().solve(&problem).total_cost(&problem);
        let greedy_cost = GreedyMatcher::new().solve(&problem).total_cost(&problem);
        let refined = RefinedGreedyMatcher::default().solve(&problem);
        assert_perfect(&refined, &problem, "refined");
        let refined_cost = refined.total_cost(&problem);
        assert!(
            refined_cost >= exact_cost - 1e-9,
            "case {case}: refined ({refined_cost}) beat exact ({exact_cost})"
        );
        assert!(
            refined_cost <= greedy_cost + 1e-9,
            "case {case}: refinement made greedy worse ({refined_cost} > {greedy_cost})"
        );
    }
}

#[test]
fn blossom_matcher_equals_exact_on_random_problems() {
    // Blossom is exact, so unlike the greedy family it is pinned by cost
    // *equality* against the bitmask-DP oracle, not a one-sided bound.
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1055);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 10);
        let exact = ExactMatcher::default().solve(&problem);
        let blossom = BlossomMatcher.solve(&problem);
        assert_perfect(&blossom, &problem, "blossom");
        let (ec, bc) = (exact.total_cost(&problem), blossom.total_cost(&problem));
        assert!(
            (ec - bc).abs() <= 1e-6 * (1.0 + ec.abs()),
            "case {case}: blossom ({bc}) != exact optimum ({ec}) on a \
             {}-defect problem",
            problem.num_nodes()
        );
    }
}

#[test]
fn alt_tree_backend_equals_exact_on_random_sparse_problems() {
    // The sparse analog of the dense blossom pin above: embed each random
    // dense problem as a complete SyndromeGraph (one edge per pair, one
    // boundary edge per defect) and require cost equality between the
    // alternating-tree backend and the bitmask-DP oracle.  One persistent
    // backend across all cases also exercises the scratch-reuse contract.
    let mut rng = ChaCha8Rng::seed_from_u64(0x7EE5);
    let mut tree = AltTreeBackend::new();
    let mut oracle = ExactBackend::new(22, 64);
    for case in 0..CASES {
        let problem = random_problem(&mut rng, 10);
        let n = problem.num_nodes();
        let mut graph = SyndromeGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                graph.add_edge(i, j, problem.pair_cost(i, j));
            }
            graph.add_boundary_edge(i, problem.boundary_cost(i));
        }
        let defects: Vec<usize> = (0..n).collect();
        let tree_match = tree.decode_defects(&graph, &defects);
        assert!(
            tree_match.is_perfect(n),
            "case {case}: tree matching not perfect on {n} defects"
        );
        let (tc, ec) = (
            tree_match.total_cost(),
            oracle.decode_defects(&graph, &defects).total_cost(),
        );
        assert!(
            (tc - ec).abs() <= 1e-6 * (1.0 + ec.abs()),
            "case {case}: tree ({tc}) != exact optimum ({ec}) on a \
             {n}-defect sparse problem"
        );
    }
}

#[test]
fn matchers_agree_on_trivial_problems() {
    // Zero defects: the empty matching, cost 0, for every engine.
    let empty = MatchingProblem::new(0);
    for (name, matching) in [
        ("exact", ExactMatcher::default().solve(&empty)),
        ("greedy", GreedyMatcher::new().solve(&empty)),
        ("refined", RefinedGreedyMatcher::default().solve(&empty)),
    ] {
        assert!(
            matching.is_complete(),
            "{name} must handle the empty problem"
        );
        assert_eq!(matching.total_cost(&empty), 0.0, "{name} empty cost");
    }

    // One defect: boundary matching is the only perfect option.
    let single = MatchingProblem::from_fn(1, |_, _| 1.0, |_| 2.5);
    for (name, matching) in [
        ("exact", ExactMatcher::default().solve(&single)),
        ("greedy", GreedyMatcher::new().solve(&single)),
        ("refined", RefinedGreedyMatcher::default().solve(&single)),
    ] {
        assert_eq!(
            matching.target(0),
            MatchTarget::Boundary,
            "{name} single defect"
        );
        assert_eq!(
            matching.total_cost(&single),
            2.5,
            "{name} single-defect cost"
        );
    }
}

// ---------------------------------------------------------------------------
// Backend-level properties: every DecoderBackend (exact, greedy, union-find)
// must correct all guaranteed-correctable errors, with uniform weights and
// under post-anomaly re-weighted graphs alike.
// ---------------------------------------------------------------------------

const BACKEND_DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

/// A noiseless static syndrome stream of the given data-error pattern.
fn static_history(code: &SurfaceCode, error: &PauliString, rounds: usize) -> SyndromeHistory {
    let graph = code.matching_graph(ErrorKind::X);
    let syndrome = code.syndrome(StabilizerKind::Z, error);
    let mut h = SyndromeHistory::new(graph.num_nodes());
    for _ in 0..rounds {
        h.push_layer(&syndrome);
    }
    h
}

fn error_cut_parity(code: &SurfaceCode, error: &PauliString) -> bool {
    code.logical_z_support()
        .iter()
        .filter(|&&q| error.get(q).has_x_component())
        .count()
        % 2
        == 1
}

/// Whether decoding `error` under `model` with the given backend leaves a
/// logical error.
fn decode_fails(
    code: &SurfaceCode,
    error: &PauliString,
    model: &WeightModel,
    kind: MatcherKind,
) -> bool {
    let graph = code.matching_graph(ErrorKind::X);
    let mut decoder =
        SurfaceDecoder::with_config(&graph, DecoderConfig::default().with_matcher(kind));
    let history = static_history(code, error, 3);
    let outcome = decoder.decode(&history, model);
    outcome.is_logical_failure(error_cut_parity(code, error))
}

/// All horizontal X-error chains of `weight` data qubits whose support
/// satisfies `keep`, starting anywhere on the patch.
fn horizontal_chains(
    code: &SurfaceCode,
    weight: usize,
    keep: impl Fn(Coord) -> bool,
) -> Vec<PauliString> {
    let data: HashSet<Coord> = code.data_qubits().iter().copied().collect();
    let mut chains = Vec::new();
    for &start in code.data_qubits() {
        let support: Vec<Coord> = (0..weight).map(|i| start.offset(0, 2 * i as i32)).collect();
        if support.iter().all(|&q| data.contains(&q) && keep(q)) {
            chains.push(support.into_iter().map(|q| (q, Pauli::X)).collect());
        }
    }
    chains
}

/// The centred anomalous region used by the re-weighted-graph properties:
/// interior to the patch (never touching a boundary column/row) and active
/// over the whole decoded window.
///
/// `p_ano = 0.3` re-weights the region's edges to ~12% of the base weight
/// without making them exactly free: at `p_ano = 0.5` a small patch can tie
/// the two boundary costs of an edge-adjacent event *exactly* (the region
/// contributes zero cost), and no matcher can break a zero-cost tie towards
/// the true error.  The `p_ano = 0.5` regime is exercised separately by the
/// in-region chain property below via the decode-level burst tests.
fn centered_region(d: usize) -> AnomalousRegion {
    let size = if d == 3 { 1 } else { 2 };
    let mid = (d - 1) as i32;
    AnomalousRegion::new(
        Coord::new(mid - size as i32, mid - size as i32),
        size,
        0,
        100,
        0.3,
    )
}

#[test]
fn every_backend_corrects_all_single_qubit_errors() {
    for d in BACKEND_DISTANCES {
        let code = SurfaceCode::new(d).expect("valid distance");
        let model = WeightModel::uniform(1e-3);
        for kind in MatcherKind::ALL {
            for &q in code.data_qubits() {
                let error: PauliString = [(q, Pauli::X)].into_iter().collect();
                assert!(
                    !decode_fails(&code, &error, &model, kind),
                    "{kind:?} d={d}: single X on {q} was not corrected"
                );
            }
        }
    }
}

#[test]
fn every_backend_corrects_all_subthreshold_chains() {
    // Every horizontal error chain of weight < d/2 is guaranteed
    // correctable; all backends must get every one of them right.
    for d in BACKEND_DISTANCES {
        let code = SurfaceCode::new(d).expect("valid distance");
        let model = WeightModel::uniform(1e-3);
        for weight in 1..=(d - 1) / 2 {
            for error in horizontal_chains(&code, weight, |_| true) {
                for kind in MatcherKind::ALL {
                    assert!(
                        !decode_fails(&code, &error, &model, kind),
                        "{kind:?} d={d}: weight-{weight} chain was not corrected"
                    );
                }
            }
        }
    }
}

#[test]
fn every_backend_corrects_single_qubit_errors_under_reweighting() {
    // Post-anomaly re-weighted graph: a centred p_ano = 0.5 region makes its
    // edges free, yet isolated single-qubit errors anywhere on the patch
    // must still decode correctly with every backend.
    for d in BACKEND_DISTANCES {
        let code = SurfaceCode::new(d).expect("valid distance");
        let region = centered_region(d);
        let model = WeightModel::anomaly_aware(1e-3, vec![region], 0);
        for kind in MatcherKind::ALL {
            for &q in code.data_qubits() {
                let error: PauliString = [(q, Pauli::X)].into_iter().collect();
                assert!(
                    !decode_fails(&code, &error, &model, kind),
                    "{kind:?} d={d}: single X on {q} mis-decoded on the re-weighted graph"
                );
            }
        }
    }
}

#[test]
fn every_backend_corrects_in_region_chains_under_reweighting() {
    // The Q3DE rollback guarantee: burst-induced chains *inside* the
    // re-weighted region are matched through it (at ~zero cost) instead of
    // being mis-matched to the boundary, for every backend.
    for d in BACKEND_DISTANCES {
        let code = SurfaceCode::new(d).expect("valid distance");
        let region = centered_region(d);
        let model = WeightModel::anomaly_aware(1e-3, vec![region], 0);
        let in_region = |q: Coord| region.contains(q);
        let mut tested = 0usize;
        for weight in 1..=(d - 1) / 2 {
            for error in horizontal_chains(&code, weight, in_region) {
                tested += 1;
                for kind in MatcherKind::ALL {
                    assert!(
                        !decode_fails(&code, &error, &model, kind),
                        "{kind:?} d={d}: in-region weight-{weight} chain mis-decoded"
                    );
                }
            }
        }
        assert!(
            tested > 0,
            "d={d}: the region must contain at least one chain"
        );
    }
}

#[test]
fn greedy_matches_exact_when_pairing_is_forced() {
    // Two defects with a pair cost far below either boundary cost: both
    // engines must pair them, and the costs coincide exactly.
    let mut rng = ChaCha8Rng::seed_from_u64(0xF0FCED);
    for _ in 0..CASES {
        let pair_cost = rng.gen_range(0.01..0.5);
        let b0 = rng.gen_range(5.0..10.0);
        let b1 = rng.gen_range(5.0..10.0);
        let problem =
            MatchingProblem::from_fn(2, |_, _| pair_cost, |i| if i == 0 { b0 } else { b1 });
        let exact = ExactMatcher::default().solve(&problem);
        let greedy = GreedyMatcher::new().solve(&problem);
        assert_eq!(exact.target(0), MatchTarget::Node(1));
        assert_eq!(greedy.target(0), MatchTarget::Node(1));
        assert!((exact.total_cost(&problem) - greedy.total_cost(&problem)).abs() < 1e-12);
    }
}
