//! Differential test: persistent decoder contexts vs fresh-per-call
//! decoding.
//!
//! The zero-rebuild decode path caches the space-time graph inside a
//! [`DecoderContext`] and re-weights it in place across windows and shots.
//! That reuse must be *bit-identical* — corrections, costs, failure flags
//! and re-execution outcomes all exactly equal to what a decoder built from
//! scratch for every call produces — for all three matching backends, with
//! the weight model flipping between uniform and anomaly-aware mid-stream,
//! and across overlapping-strike rollback sequences.  Debug builds
//! additionally run the decoder crate's stale-weight assertions, so this
//! test doubles as the stale-cache tripwire in the CI debug matrix.

use q3de::decoder::{DecoderConfig, DecoderContext, MatcherKind, ReExecutingDecoder, WeightModel};
use q3de::lattice::{Coord, ErrorKind};
use q3de::noise::AnomalousRegion;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const STREAMS: usize = 100;

/// One reused context per (backend, distance), decoding 100 seeded streams
/// with the weight model alternating every stream — each decode is checked
/// against a cold context built just for that call.
#[test]
fn reused_context_is_bit_identical_to_fresh_decoding() {
    for kind in MatcherKind::ALL {
        for d in [3usize, 5, 7] {
            let config = MemoryExperimentConfig::new(d, 1e-2)
                .with_matcher(kind)
                .with_anomaly(AnomalyInjection::centered(2, 0.5));
            let experiment = MemoryExperiment::new(config).expect("valid distance");
            let graph = experiment.code().matching_graph(ErrorKind::X);
            let aware = experiment.weight_model(DecodingStrategy::AnomalyAware);
            let uniform = WeightModel::uniform(1e-2);
            let mut reused = DecoderContext::new(DecoderConfig::default().with_matcher(kind));
            for stream in 0..STREAMS {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(0x5EED ^ (d as u64 * 1_000_003 + stream as u64));
                let (history, parity) =
                    experiment.sample_history(DecodingStrategy::AnomalyAware, &mut rng);
                // Alternate models so the in-place re-weight path (uniform →
                // aware → uniform …) is exercised on every second stream.
                let model = if stream % 2 == 0 { &aware } else { &uniform };
                let reused_out = reused.decode(&graph, &history, model);
                let fresh_out = DecoderContext::new(DecoderConfig::default().with_matcher(kind))
                    .decode(&graph, &history, model);
                assert_eq!(
                    reused_out, fresh_out,
                    "{kind:?} d={d} stream {stream}: reused context diverged"
                );
                assert_eq!(
                    reused_out.is_logical_failure(parity),
                    fresh_out.is_logical_failure(parity)
                );
            }
            // The window shape never changed, so the reused context must
            // have built its graph exactly once (quiet streams decode
            // without touching the cache at all).
            assert!(
                reused.graph_builds() <= 1,
                "{kind:?} d={d}: cache was rebuilt {} times",
                reused.graph_builds()
            );
        }
    }
}

/// The rollback hot path: one long-lived `ReExecutingDecoder` per backend
/// replaying a sequence of windows whose detected regions appear, overlap,
/// swap and vanish — against a fresh decoder per call.
#[test]
fn reused_rollback_matches_fresh_across_overlapping_strike_sequences() {
    let p = 8e-3;
    for kind in MatcherKind::ALL {
        for d in [5usize, 7] {
            let config = MemoryExperimentConfig::new(d, p).with_matcher(kind);
            let experiment = MemoryExperiment::new(config).expect("valid distance");
            let graph = experiment.code().matching_graph(ErrorKind::X);
            // Two strikes whose footprints overlap on the patch interior,
            // plus a later-onset variant so window_start_cycle matters.
            let strike_a = AnomalousRegion::new(Coord::new(0, 2), 2, 0, 100, 0.5);
            let strike_b = AnomalousRegion::new(Coord::new(2, 2), 2, 0, 100, 0.5);
            let late_b = AnomalousRegion::new(Coord::new(2, 2), 2, 3, 100, 0.5);
            let sequence: Vec<(Option<Vec<AnomalousRegion>>, u64)> = vec![
                (None, 0),
                (Some(vec![strike_a]), 0),
                (Some(vec![strike_a, strike_b]), 0),
                (Some(vec![strike_b]), 0),
                (None, 0),
                (Some(vec![strike_a, late_b]), 2),
                (Some(vec![strike_a, strike_b]), 0),
            ];
            let mut reused = ReExecutingDecoder::with_matcher(&graph, p, kind);
            for round in 0..3u64 {
                for (step, (regions, window_start)) in sequence.iter().enumerate() {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        0xCA11 ^ (d as u64) << 32 ^ round << 8 ^ step as u64,
                    );
                    let (history, parity) =
                        experiment.sample_history(DecodingStrategy::MbbeFree, &mut rng);
                    let regions = regions.as_deref();
                    let reused_out = reused.decode(&history, regions, *window_start);
                    let fresh_out = ReExecutingDecoder::with_matcher(&graph, p, kind).decode(
                        &history,
                        regions,
                        *window_start,
                    );
                    assert_eq!(
                        reused_out, fresh_out,
                        "{kind:?} d={d} round {round} step {step}: rollback diverged"
                    );
                    assert_eq!(
                        reused_out.final_outcome().is_logical_failure(parity),
                        fresh_out.final_outcome().is_logical_failure(parity)
                    );
                    assert_eq!(
                        reused_out.was_rolled_back(),
                        regions.is_some_and(|r| !r.is_empty())
                    );
                }
            }
            assert!(
                reused.context().graph_builds() <= 1,
                "{kind:?} d={d}: rollback sequence rebuilt the graph {} times",
                reused.context().graph_builds()
            );
        }
    }
}

/// One context dragged through distance and window-depth changes — every
/// structural change invalidates the cache, and decoding still matches a
/// cold context exactly.
#[test]
fn context_survives_structural_churn() {
    for kind in MatcherKind::ALL {
        let mut reused = DecoderContext::new(DecoderConfig::default().with_matcher(kind));
        for (d, rounds, seed) in [(3usize, 3usize, 1u64), (7, 7, 2), (3, 3, 3), (5, 9, 4)] {
            let config = MemoryExperimentConfig::new(d, 2e-2)
                .with_matcher(kind)
                .with_rounds(rounds);
            let experiment = MemoryExperiment::new(config).expect("valid distance");
            let graph = experiment.code().matching_graph(ErrorKind::X);
            let model = WeightModel::uniform(2e-2);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (history, _) = experiment.sample_history(DecodingStrategy::MbbeFree, &mut rng);
            let reused_out = reused.decode(&graph, &history, &model);
            let fresh_out = DecoderContext::new(DecoderConfig::default().with_matcher(kind))
                .decode(&graph, &history, &model);
            assert_eq!(reused_out, fresh_out, "{kind:?} d={d} rounds={rounds}");
        }
    }
}
