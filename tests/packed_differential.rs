//! Differential suite: the bit-packed batch path vs the scalar oracle.
//!
//! The packed kernel (`PackedShotBatch`) samples 64 shots per machine word
//! and decodes only eventful lanes; the scalar path is the reference.  For
//! every configuration the suite replays the *identical* packed-sampled
//! noise realization of each lane through the scalar parity/decode
//! machinery (`PackedShotBatch::replay_lane_scalar`) and requires the
//! failure verdicts — and therefore the failure counts — to match
//! bit-for-bit.  Covered axes, per the issue: d ∈ {3, 5, 7}, uniform and
//! burst noise, all three decoding strategies, and shot counts that are
//! not multiples of 64 (tail-group lane masking).

use q3de::sim::{
    AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig, PackedShotBatch,
};
use rand_chacha::ChaCha8Rng;

const STRATEGIES: [DecodingStrategy; 3] = [
    DecodingStrategy::MbbeFree,
    DecodingStrategy::Blind,
    DecodingStrategy::AnomalyAware,
];

/// Packed-vs-scalar comparison for one configuration: every lane's packed
/// failure bit must equal the scalar replay of the same noise realization,
/// and the aggregate estimates (sequential and parallel) must count exactly
/// those failures.
fn assert_packed_matches_scalar_replay(
    config: MemoryExperimentConfig,
    strategy: DecodingStrategy,
    base_seed: u64,
    shots: usize,
) {
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let packed: PackedShotBatch<ChaCha8Rng> = experiment.packed(strategy, base_seed);

    let mut scalar_failures = 0usize;
    for group in 0..shots.div_ceil(64) as u64 {
        let mask = packed.run_group(group);
        let lanes_in_group = (shots - group as usize * 64).min(64);
        for lane in 0..lanes_in_group {
            let stream = group * 64 + lane as u64;
            let packed_failed = (mask >> lane) & 1 == 1;
            let scalar_failed = packed.replay_lane_scalar(stream);
            assert_eq!(
                packed_failed, scalar_failed,
                "d={} strategy={strategy:?} seed={base_seed} stream={stream}: \
                 packed and scalar verdicts diverge",
                config.distance
            );
            scalar_failures += usize::from(scalar_failed);
        }
    }

    let sequential = packed.estimate(shots);
    assert_eq!(
        sequential.failures, scalar_failures,
        "d={} strategy={strategy:?}: estimate must count the per-lane verdicts",
        config.distance
    );
    assert_eq!(sequential.shots, shots);
    let parallel = packed.estimate_parallel(shots);
    assert_eq!(
        sequential, parallel,
        "d={} strategy={strategy:?}: sequential and parallel estimates diverge",
        config.distance
    );
}

#[test]
fn packed_matches_scalar_under_uniform_noise() {
    // lane counts deliberately not divisible by 64
    for (distance, shots) in [(3, 130), (5, 70), (7, 65)] {
        let config = MemoryExperimentConfig::new(distance, 2e-2);
        assert_packed_matches_scalar_replay(
            config,
            DecodingStrategy::MbbeFree,
            0xD1FF ^ distance as u64,
            shots,
        );
    }
}

#[test]
fn packed_matches_scalar_under_burst_noise_all_strategies() {
    for distance in [3usize, 5, 7] {
        let config = MemoryExperimentConfig::new(distance, 5e-3)
            .with_anomaly(AnomalyInjection::centered(2, 0.5));
        for (i, strategy) in STRATEGIES.into_iter().enumerate() {
            assert_packed_matches_scalar_replay(
                config,
                strategy,
                0xB0B0 + distance as u64,
                67 + i, // straddles one group, never a multiple of 64
            );
        }
    }
}

#[test]
fn packed_estimate_entry_points_agree() {
    // The MemoryExperiment convenience wrapper and a hand-built batch must
    // produce the same numbers for the same (base_seed, shots).
    let config =
        MemoryExperimentConfig::new(5, 1e-2).with_anomaly(AnomalyInjection::mcewen_default());
    let experiment = MemoryExperiment::new(config).unwrap();
    for strategy in STRATEGIES {
        let wrapper = experiment.estimate_packed::<ChaCha8Rng>(150, strategy, 42);
        let manual = experiment.packed::<ChaCha8Rng>(strategy, 42).estimate(150);
        assert_eq!(wrapper, manual, "{strategy:?}");
        assert_eq!(wrapper.shots, 150);
        assert_eq!(wrapper.rounds, 5);
    }
}

#[test]
fn packed_failure_rates_track_the_scalar_path_statistically() {
    // The packed path uses its own RNG discipline, so counts are not
    // shot-for-shot equal to the scalar stream set — but over enough shots
    // the two estimators must agree within a few standard errors.
    let config = MemoryExperimentConfig::new(3, 2e-2);
    let experiment = MemoryExperiment::new(config).unwrap();
    let shots = 8000;
    let packed = experiment.estimate_packed::<ChaCha8Rng>(shots, DecodingStrategy::MbbeFree, 7);
    let scalar = experiment.estimate_parallel::<ChaCha8Rng>(shots, DecodingStrategy::MbbeFree, 7);
    let sigma = (packed.standard_error().powi(2) + scalar.standard_error().powi(2)).sqrt();
    let delta = (packed.logical_error_rate() - scalar.logical_error_rate()).abs();
    assert!(
        delta < 5.0 * sigma.max(1e-3),
        "packed rate {} vs scalar rate {} (delta {delta}, sigma {sigma})",
        packed.logical_error_rate(),
        scalar.logical_error_rate()
    );
}
