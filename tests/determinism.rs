//! Deterministic-seed regression tests.
//!
//! Every stochastic experiment in the workspace takes an explicit RNG, so a
//! fixed `ChaCha8Rng` seed must reproduce byte-identical results across two
//! runs.  These tests pin that guarantee down before any future PR
//! introduces parallelism, work-stealing or refactors of the sampling order:
//! if a change reorders RNG draws, the comparisons below fail.

use q3de::decoder::SyndromeHistory;
use q3de::lattice::Coord;
use q3de::noise::{AnomalousRegion, NoiseModel};
use q3de::pipeline::{PipelineConfig, Q3dePipeline};
use q3de::sim::{
    AnomalyInjection, DecodingStrategy, DetectionExperiment, DetectionExperimentConfig,
    MemoryExperiment, MemoryExperimentConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 0xD5EED;

#[test]
fn memory_experiment_estimates_are_reproducible() {
    let config =
        MemoryExperimentConfig::new(5, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
    let experiment = MemoryExperiment::new(config).expect("valid distance");

    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        let blind = experiment.estimate(60, DecodingStrategy::Blind, &mut rng);
        let aware = experiment.estimate(60, DecodingStrategy::AnomalyAware, &mut rng);
        let free = experiment.estimate(60, DecodingStrategy::MbbeFree, &mut rng);
        (blind, aware, free)
    };

    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must give identical estimates");
}

#[test]
fn memory_experiment_shot_sequences_are_reproducible() {
    let config = MemoryExperimentConfig::new(5, 8e-3);
    let experiment = MemoryExperiment::new(config).expect("valid distance");

    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 1);
        (0..40)
            .map(|_| experiment.run_shot(DecodingStrategy::MbbeFree, &mut rng))
            .collect::<Vec<_>>()
    };

    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "the full per-shot outcome sequence must match"
    );
    assert!(
        first.iter().any(|shot| shot.num_detection_events > 0),
        "the sequence should not be trivially empty"
    );
}

#[test]
fn detection_experiment_trials_are_reproducible() {
    let config = DetectionExperimentConfig::fig7(100.0);
    let experiment = DetectionExperiment::new(config).expect("valid configuration");

    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 2);
        let trials: Vec<_> = (0..15)
            .map(|_| experiment.run_trial(100, &mut rng))
            .collect();
        let aggregate = experiment.run_trials(100, 15, &mut rng);
        (trials, aggregate)
    };

    let (trials_a, agg_a) = run();
    let (trials_b, agg_b) = run();
    assert_eq!(
        trials_a, trials_b,
        "per-trial outcomes must be byte-identical"
    );
    // The aggregate means can be NaN when nothing was detected; compare via
    // bit patterns so NaN == NaN.
    assert_eq!(agg_a.0.to_bits(), agg_b.0.to_bits());
    assert_eq!(agg_a.1.to_bits(), agg_b.1.to_bits());
    assert_eq!(agg_a.2.to_bits(), agg_b.2.to_bits());
}

/// Samples a syndrome history for the pipeline's graph under `noise`.
fn sampled_history(
    pipeline: &Q3dePipeline,
    noise: &NoiseModel,
    rounds: usize,
    rng: &mut ChaCha8Rng,
) -> SyndromeHistory {
    let graph = pipeline.graph();
    let mut flipped = vec![false; graph.num_edges()];
    let mut history = SyndromeHistory::new(graph.num_nodes());
    for t in 0..rounds {
        for (ei, edge) in graph.edges().iter().enumerate() {
            if noise
                .sample_pauli(edge.qubit, t as u64, rng)
                .has_x_component()
            {
                flipped[ei] = !flipped[ei];
            }
        }
        let layer: Vec<bool> = (0..graph.num_nodes())
            .map(|n| {
                let mut parity = graph
                    .incident_edges(n)
                    .iter()
                    .filter(|&&e| flipped[e])
                    .count()
                    % 2
                    == 1;
                if noise
                    .sample_pauli(graph.node(n), t as u64, rng)
                    .has_x_component()
                {
                    parity = !parity;
                }
                parity
            })
            .collect();
        history.push_layer(&layer);
    }
    history
}

#[test]
fn pipeline_episode_reports_are_reproducible() {
    let run = || {
        let config = PipelineConfig::new(7, 1e-3)
            .with_detection_window(60)
            .with_count_threshold(8)
            .with_assumed_anomaly_size(2);
        let mut pipeline = Q3dePipeline::new(config).expect("valid configuration");
        let burst = AnomalousRegion::new(Coord::new(4, 4), 2, 100, 100_000, 0.5);
        let noise = NoiseModel::uniform(1e-3).with_anomaly(burst);
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 3);
        let history = sampled_history(&pipeline, &noise, 300, &mut rng);
        let report = pipeline.process_window(&history, 0);
        // EpisodeReport does not implement PartialEq; its Debug rendering
        // covers every field, so byte-identical Debug output is the
        // regression contract here.
        format!("{report:?}")
    };

    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same seed must give a byte-identical episode report"
    );
    assert!(
        first.contains("OpExpand"),
        "the burst episode should contain an expansion"
    );
}

#[test]
fn different_seeds_change_the_outcome() {
    // Sanity check that the comparisons above are not vacuous: distinct
    // seeds must be able to produce distinct shot sequences.
    let config = MemoryExperimentConfig::new(5, 8e-3);
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let sample = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..40)
            .map(|_| experiment.run_shot(DecodingStrategy::MbbeFree, &mut rng))
            .collect::<Vec<_>>()
    };
    assert_ne!(sample(1), sample(2), "distinct seeds should diverge");
}
