//! The sparse syndrome graph that [`crate::DecoderBackend`]s decode.
//!
//! The decoder crate stacks the 2D layer graph of the surface code into a 3D
//! space-time graph: one vertex per (stabilizer, event-layer) pair, space
//! edges for data-qubit errors, time edges for measurement errors, and
//! *boundary* edges for chains that terminate on a lattice boundary.  This
//! module holds the geometry-agnostic representation of that graph — plain
//! vertices, weighted edges and boundary stubs — so that matching backends
//! (exact, greedy, union-find) can be implemented without depending on the
//! lattice or decoder crates.

/// Identifier of an edge in a [`SyndromeGraph`].
pub type SparseEdgeId = usize;

/// One edge of a [`SyndromeGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseEdge {
    /// First endpoint.
    pub u: usize,
    /// Second endpoint, or `None` for a boundary edge.
    pub v: Option<usize>,
    /// Non-negative matching weight (negative log-likelihood of the
    /// underlying error mechanism; `0.0` models an edge inside a `p = 0.5`
    /// anomalous region).
    pub weight: f64,
}

impl SparseEdge {
    /// Whether the edge terminates on a lattice boundary.
    pub fn is_boundary(&self) -> bool {
        self.v.is_none()
    }

    /// Given one endpoint, the other endpoint (`None` for the boundary).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    pub fn other(&self, from: usize) -> Option<usize> {
        if self.u == from {
            self.v
        } else {
            assert_eq!(self.v, Some(from), "vertex {from} is not an endpoint");
            Some(self.u)
        }
    }
}

/// A sparse, undirected, non-negatively weighted decoding graph with
/// boundary edges.
///
/// Unlike [`crate::MatchingProblem`] — which stores *dense* pairwise costs
/// between active defects — a `SyndromeGraph` stores the underlying physical
/// graph.  Backends that need pairwise defect costs derive them with
/// shortest-path searches; the union-find backend never materialises them at
/// all, which is where its almost-linear runtime comes from.
#[derive(Debug, Clone, Default)]
pub struct SyndromeGraph {
    num_vertices: usize,
    edges: Vec<SparseEdge>,
    adjacency: Vec<Vec<SparseEdgeId>>,
}

impl SyndromeGraph {
    /// Creates an empty graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_vertices],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges (boundary edges included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge between `u` and `v` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, `u == v`, or `weight` is
    /// negative or not finite.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> SparseEdgeId {
        assert!(
            u < self.num_vertices && v < self.num_vertices,
            "endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "edge weight must be finite and non-negative, got {weight}"
        );
        let id = self.edges.len();
        self.edges.push(SparseEdge {
            u,
            v: Some(v),
            weight,
        });
        self.adjacency[u].push(id);
        self.adjacency[v].push(id);
        id
    }

    /// Adds a boundary edge at `u` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `weight` is negative or not finite.
    pub fn add_boundary_edge(&mut self, u: usize, weight: f64) -> SparseEdgeId {
        assert!(u < self.num_vertices, "endpoint out of range");
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "edge weight must be finite and non-negative, got {weight}"
        );
        let id = self.edges.len();
        self.edges.push(SparseEdge { u, v: None, weight });
        self.adjacency[u].push(id);
        id
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: SparseEdgeId) -> &SparseEdge {
        &self.edges[id]
    }

    /// Overwrites the weight of an existing edge — the primitive behind
    /// in-place re-weighting of a cached decoding graph (the decoder
    /// crate's `DecoderContext` rewrites only the edges an anomaly model
    /// actually changes instead of rebuilding the graph).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `weight` is negative or not
    /// finite.
    pub fn set_weight(&mut self, id: SparseEdgeId, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "edge weight must be finite and non-negative, got {weight}"
        );
        self.edges[id].weight = weight;
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[SparseEdge] {
        &self.edges
    }

    /// Ids of the edges incident to vertex `u` (boundary edges included).
    pub fn incident(&self, u: usize) -> &[SparseEdgeId] {
        &self.adjacency[u]
    }

    /// Builds a path graph over `weights.len() + 1` vertices with the given
    /// edge weights and boundary edges of weight `boundary` at both ends —
    /// a convenient one-dimensional test fixture.
    pub fn line(weights: &[f64], boundary: f64) -> Self {
        let n = weights.len() + 1;
        let mut g = Self::new(n);
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(i, i + 1, w);
        }
        g.add_boundary_edge(0, boundary);
        g.add_boundary_edge(n - 1, boundary);
        g
    }
}

/// A defect–defect pairing produced by a [`crate::DecoderBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectPair {
    /// Index of the first defect in the backend's defect list.
    pub a: usize,
    /// Index of the second defect.
    pub b: usize,
    /// Cost of the correction chain joining them.
    pub cost: f64,
}

/// A defect–boundary match produced by a [`crate::DecoderBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectBoundaryMatch {
    /// Index of the defect in the backend's defect list.
    pub defect: usize,
    /// The boundary edge the correction chain terminates on.  Callers that
    /// distinguish boundary *sides* (the decoder's homological-cut parity)
    /// map this id back to a side.
    pub edge: SparseEdgeId,
    /// Cost of the correction chain.
    pub cost: f64,
}

/// The complete output of a backend run: every defect appears in exactly one
/// pair or one boundary match.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectMatching {
    /// Defect–defect pairings (each defect at most once, `a < b` not
    /// guaranteed).
    pub pairs: Vec<DefectPair>,
    /// Defect–boundary matches.
    pub boundary: Vec<DefectBoundaryMatch>,
    /// Number of independent clusters the instance decomposed into.
    pub num_clusters: usize,
}

impl DefectMatching {
    /// Whether the matching is *perfect* over `num_defects` defects: every
    /// defect covered exactly once and no defect paired with itself.
    pub fn is_perfect(&self, num_defects: usize) -> bool {
        let mut seen = vec![0usize; num_defects];
        for p in &self.pairs {
            if p.a == p.b || p.a >= num_defects || p.b >= num_defects {
                return false;
            }
            seen[p.a] += 1;
            seen[p.b] += 1;
        }
        for b in &self.boundary {
            if b.defect >= num_defects {
                return false;
            }
            seen[b.defect] += 1;
        }
        seen.iter().all(|&c| c == 1)
    }

    /// Total cost of all pairings and boundary matches.
    pub fn total_cost(&self) -> f64 {
        self.pairs.iter().map(|p| p.cost).sum::<f64>()
            + self.boundary.iter().map(|b| b.cost).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_shape() {
        let g = SyndromeGraph::line(&[1.0, 2.0, 3.0], 5.0);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.incident(0).len(), 2); // interior edge + boundary stub
        assert_eq!(g.incident(1).len(), 2);
        assert!(g.edge(3).is_boundary());
        assert!(g.edge(4).is_boundary());
        assert_eq!(g.edge(0).other(0), Some(1));
        assert_eq!(g.edge(0).other(1), Some(0));
        assert_eq!(g.edge(3).other(0), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_is_rejected() {
        let mut g = SyndromeGraph::new(2);
        g.add_edge(1, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_is_rejected() {
        let mut g = SyndromeGraph::new(2);
        g.add_edge(0, 1, -0.5);
    }

    #[test]
    fn set_weight_overwrites_in_place() {
        let mut g = SyndromeGraph::line(&[1.0, 2.0], 3.0);
        g.set_weight(1, 0.25);
        assert_eq!(g.edge(1).weight, 0.25);
        assert_eq!(g.edge(0).weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn set_weight_rejects_negative() {
        let mut g = SyndromeGraph::line(&[1.0], 1.0);
        g.set_weight(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        let g = SyndromeGraph::line(&[1.0], 1.0);
        let _ = g.edge(0).other(7);
    }

    #[test]
    fn perfect_matching_detection() {
        let mut m = DefectMatching::default();
        m.pairs.push(DefectPair {
            a: 0,
            b: 1,
            cost: 1.0,
        });
        m.boundary.push(DefectBoundaryMatch {
            defect: 2,
            edge: 0,
            cost: 2.0,
        });
        assert!(m.is_perfect(3));
        assert!(!m.is_perfect(4)); // defect 3 uncovered
        assert!((m.total_cost() - 3.0).abs() < 1e-12);

        // duplicated coverage is rejected
        m.boundary.push(DefectBoundaryMatch {
            defect: 0,
            edge: 0,
            cost: 0.0,
        });
        assert!(!m.is_perfect(3));
    }

    #[test]
    fn self_pair_is_not_perfect() {
        let m = DefectMatching {
            pairs: vec![DefectPair {
                a: 0,
                b: 0,
                cost: 0.0,
            }],
            boundary: Vec::new(),
            num_clusters: 1,
        };
        assert!(!m.is_perfect(1));
    }
}
