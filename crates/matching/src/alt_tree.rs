//! The simultaneous alternating-tree backend: sparse-native exact MWPM.
//!
//! [`BlossomBackend`](crate::BlossomBackend) still funnels every cluster
//! through a dense `O(c³)` primal–dual kernel after its sparse clustering
//! pass, and profiling the d = 11 rollback kernel shows those per-cluster
//! solves dominating.  This module removes them — and the truncated-ball
//! radius heuristics — entirely, with the core idea behind PyMatching v2's
//! sparse blossom: *every* unmatched defect grows an alternating-tree
//! region directly on the sparse [`SyndromeGraph`], all at once.
//!
//! The machinery:
//!
//! * **Regions as duals.**  Each defect `i` owns a Dijkstra exploration of
//!   the graph (a monotonically growing set of `(vertex, distance)` claims)
//!   and a dual variable `y_i`.  Exploration is driven lazily so the
//!   invariant *everything within radius `y_i` is settled* always holds;
//!   exploration state is never undone, even when duals later shrink —
//!   claims are facts about the graph, not about the matching.
//! * **A global event queue.**  One binary heap over virtual time orders
//!   the next-tight events: *settle* (a region's Dijkstra frontier becomes
//!   reachable, possibly discovering new candidate edges), *edge-tight* (a
//!   discovered defect–defect candidate's slack hits zero), *boundary-hit*
//!   (a defect's cheapest boundary attachment becomes tight), and
//!   *shrink-to-zero* (an inner blossom's dual reaches zero and the blossom
//!   must expand).  Events are validated lazily on pop — state changes
//!   simply re-push whatever they invalidate.
//! * **Candidate edges are exact when it matters.**  A meet between regions
//!   `i` and `j` yields the candidate cost `d_i(u) + w(u,v) + d_j(v)`.
//!   Because `y_i ≤ (settled radius of i)` at all times, the moment
//!   `y_i + y_j` reaches the true distance `d(i,j)` the certifying meet has
//!   been discovered and the best candidate *equals* `d(i,j)` — so tight
//!   edges always carry exact shortest-path costs, and matched pairs are
//!   exact by construction.
//! * **Lazy blossoms.**  A tight edge between two outer nodes of the same
//!   tree contracts the odd cycle of tight edges into a blossom node whose
//!   cycle edges are remembered; augmentation re-bases blossoms along the
//!   concrete candidate edges (the PR-8 lesson: the recursion must thread
//!   the actual edge, never re-derive it).  Inner blossoms whose dual hits
//!   zero dissolve back into their children.
//! * **The boundary is an infinite-capacity virtual vertex.**  A tight
//!   boundary edge from an outer node is an immediate augmenting path, and
//!   a tight edge into a boundary-matched free node re-matches that node
//!   and releases its boundary attachment — no boundary-slot pools, no
//!   retry doubling, no big-M.
//!
//! Zero-weight pre-pairing (a Q3DE anomaly at `p = 0.5`) is shared with the
//! blossom backend: defects in one zero-weight component pair for free and
//! only the residual parity enters the tree machinery.
//!
//! All scratch — region arrays, the event queue, claim lists, the blossom
//! stack, parent pointers — persists across calls per the
//! [`crate::DecoderBackend`] `&mut self` contract, and the backend is
//! stateless up to scratch: reused instances decode bit-identically to
//! fresh ones.
//!
//! Exactness is pinned the same way the blossom backend's is: *total
//! matching weight equality* against [`ExactBackend`](crate::ExactBackend)
//! on every differential and property suite, plus a 30k-instance tie-heavy
//! random-graph differential.

use crate::sparse::{DefectBoundaryMatch, DefectMatching, DefectPair, SparseEdgeId, SyndromeGraph};
use crate::DecoderBackend;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Edges at or below this weight are treated as free by the zero-weight
/// pre-pairing contraction (shared with the blossom backend).
const ZERO_EPS: f64 = 1e-12;

/// Sentinel node / defect id meaning "none".
const NONE: u32 = u32::MAX;
/// Sentinel partner id meaning "matched to the lattice boundary".
const BOUNDARY: u32 = u32::MAX - 1;

// ---------------------------------------------------------------------------
// Region exploration (per-defect lazy Dijkstra).
// ---------------------------------------------------------------------------

/// One entry of a region's Dijkstra frontier heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    cost: f64,
    vertex: u32,
}
impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap; ties break on vertex id so
        // settle order is deterministic.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// The global event queue.
// ---------------------------------------------------------------------------

/// Event kinds, in tie-break priority order at equal virtual time.
/// Settles run first so candidate discovery precedes tightness checks at
/// the same radius; structural events follow deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A region's Dijkstra frontier becomes reachable: settle it.
    Settle,
    /// An inner blossom's dual reaches zero: expand it.
    BlossomZero,
    /// A defect–defect candidate edge's slack reaches zero.
    EdgeTight,
    /// A defect's cheapest boundary attachment becomes tight.
    BoundaryHit,
}

/// One scheduled event at absolute virtual time `t`.  Ordering is
/// `(t, kind, id)` so pops are deterministic under ties.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    t: f64,
    kind: EventKind,
    id: u32,
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed for the max-heap
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discovered defect–defect candidate edge: concrete residual-defect
/// endpoints and the best (smallest) meet cost seen so far.  The cost only
/// ever decreases, and equals the true shortest-path distance whenever the
/// edge goes tight (see the module docs).
#[derive(Debug, Clone, Copy)]
struct Cand {
    a: u32,
    b: u32,
    c: f64,
}

// ---------------------------------------------------------------------------
// The backend.
// ---------------------------------------------------------------------------

/// The simultaneous alternating-tree backend (see the module docs).
/// Select it with [`crate::MatcherKind::Tree`].
///
/// Exactness contract: identical to the blossom backend's — total matching
/// weight equals the dense exact oracle's on every instance, with no
/// cluster-size cliff and no per-cluster dense solves at all.
#[derive(Debug, Clone, Default)]
pub struct AltTreeBackend {
    // -- per-call problem size ------------------------------------------------
    /// Residual defect count `k` of the current call.
    k: usize,
    /// Virtual time: every growing region's dual advances at rate 1.
    now: f64,
    /// Slack tolerance, scaled from the largest edge weight of the graph.
    eps: f64,

    // -- region exploration ---------------------------------------------------
    /// One Dijkstra frontier heap per residual defect (reused, grow-only).
    fronts: Vec<BinaryHeap<Frontier>>,
    /// `claims[v]` = `(region, dist)` settles of vertex `v`, in settle order.
    claims: Vec<Vec<(u32, f64)>>,
    /// Vertices holding claims, for cheap clearing next call.
    touched: Vec<u32>,
    /// Cheapest `(cost, boundary edge)` attachment per residual defect.
    bnd: Vec<Option<(f64, SparseEdgeId)>>,
    /// The boundary attachment actually matched, captured at augment time so
    /// later discoveries cannot retarget an already-committed match.
    bnd_used: Vec<Option<(f64, SparseEdgeId)>>,

    // -- candidate edges ------------------------------------------------------
    cands: Vec<Cand>,
    /// `adj[defect]` = candidate ids incident to that residual defect.
    adj: Vec<Vec<u32>>,

    // -- duals (lazily materialised against `now`) ----------------------------
    /// Defect dual at its last materialisation.
    y: Vec<f64>,
    /// Virtual time of that materialisation.
    y_at: Vec<f64>,
    /// Blossom dual at its last materialisation (slots `k..`).
    z: Vec<f64>,
    z_at: Vec<f64>,

    // -- alternating-tree / blossom structure ---------------------------------
    /// Outermost container of each node id (`st[x] == x` iff outermost).
    st: Vec<u32>,
    /// Immediate container blossom of each node (NONE at top level).
    up: Vec<u32>,
    /// Tree state of each *outermost* node: 0 outer, 1 inner, -1 free.
    state: Vec<i8>,
    /// Concrete defect in the parent node on the tree edge (NONE at roots).
    pa: Vec<u32>,
    /// Candidate id of that tree edge.
    pa_edge: Vec<u32>,
    /// Concrete partner defect (`BOUNDARY`, or NONE while unmatched); for a
    /// blossom id, the partner of its base.
    matched: Vec<u32>,
    /// Candidate id realising `matched` (unused for boundary matches).
    matched_edge: Vec<u32>,
    /// Blossom cycles, base first (odd length).
    flower: Vec<Vec<u32>>,
    /// `flower_edges[i]` joins `flower[i]` and `flower[(i + 1) % len]`.
    flower_edges: Vec<Vec<u32>>,
    /// Recycled blossom node ids.
    free_slots: Vec<u32>,
    /// Upper bound on allocated node ids (defects + live/dead blossoms).
    n_ids: usize,

    // -- trees ----------------------------------------------------------------
    /// Tree tag of each node (NONE when not in a tree).
    tree_tag: Vec<u32>,
    /// Member node ids per tree tag (may contain absorbed/stale ids).
    tree_members: Vec<Vec<u32>>,
    free_trees: Vec<u32>,

    // -- the event queue ------------------------------------------------------
    events: BinaryHeap<Event>,

    // -- bookkeeping ----------------------------------------------------------
    /// LCA walk stamps.
    vis: Vec<u32>,
    vis_epoch: u32,
    /// Number of residual defects not yet matched.
    unmatched: usize,
    /// Zero-weight contraction union-find over graph vertices.
    zero_parent: Vec<u32>,
    /// Scratch for defect enumeration walks.
    walk: Vec<u32>,
}

impl AltTreeBackend {
    /// Creates the backend with cold scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    // -- dual accessors -------------------------------------------------------

    /// Growth rate of a defect's dual under the current tree structure.
    #[inline]
    fn rate(&self, defect: u32) -> f64 {
        match self.state[self.st[defect as usize] as usize] {
            0 => 1.0,
            1 => -1.0,
            _ => 0.0,
        }
    }

    /// Current dual of a defect.
    #[inline]
    fn y_now(&self, defect: u32) -> f64 {
        let d = defect as usize;
        self.y[d] + self.rate(defect) * (self.now - self.y_at[d])
    }

    /// Current dual of a blossom node.
    #[inline]
    fn z_now(&self, b: u32) -> f64 {
        let rate = match self.state[b as usize] {
            0 => 2.0,
            1 => -2.0,
            _ => 0.0,
        };
        self.z[b as usize] + rate * (self.now - self.z_at[b as usize])
    }

    /// Materialises a defect's dual at the current time (call *before*
    /// changing the tree state that defines its rate).
    #[inline]
    fn freeze_y(&mut self, defect: u32) {
        let v = self.y_now(defect);
        let d = defect as usize;
        self.y[d] = v;
        self.y_at[d] = self.now;
    }

    /// Materialises a blossom's dual at the current time.
    #[inline]
    fn freeze_z(&mut self, b: u32) {
        let v = self.z_now(b);
        self.z[b as usize] = v;
        self.z_at[b as usize] = self.now;
    }

    /// Appends every concrete defect contained in node `x` to `out`.
    fn collect_defects(&self, x: u32, out: &mut Vec<u32>) {
        let mut stack = vec![x];
        while let Some(x) = stack.pop() {
            if (x as usize) < self.k {
                out.push(x);
            } else {
                stack.extend_from_slice(&self.flower[x as usize]);
            }
        }
    }

    /// Freezes the duals of every defect in node `x` (before a state flip).
    fn freeze_node(&mut self, x: u32) {
        let mut walk = std::mem::take(&mut self.walk);
        walk.clear();
        self.collect_defects(x, &mut walk);
        for &d in &walk {
            self.freeze_y(d);
        }
        self.walk = walk;
    }

    // -- event scheduling -----------------------------------------------------

    #[inline]
    fn push_event(&mut self, t: f64, kind: EventKind, id: u32) {
        if t.is_finite() {
            self.events.push(Event {
                t: t.max(self.now),
                kind,
                id,
            });
        }
    }

    /// Schedules the next settle of `defect`'s region, if it is growing.
    fn schedule_settle(&mut self, defect: u32) {
        if self.rate(defect) <= 0.0 {
            return;
        }
        // Skip frontier entries already settled by this region.
        while let Some(&f) = self.fronts[defect as usize].peek() {
            if self.claimed_at(f.vertex as usize, defect).is_some() {
                self.fronts[defect as usize].pop();
                continue;
            }
            let t = self.now + (f.cost - self.y_now(defect));
            self.push_event(t, EventKind::Settle, defect);
            return;
        }
    }

    /// Schedules the tight event of candidate `cid`, if its endpoints'
    /// combined growth rate is positive (otherwise it is parked: any state
    /// change that raises the rate re-schedules it via [`Self::wake`]).
    fn schedule_cand(&mut self, cid: u32) {
        let c = self.cands[cid as usize];
        if self.st[c.a as usize] == self.st[c.b as usize] {
            return; // internal to one node
        }
        let rs = self.rate(c.a) + self.rate(c.b);
        if rs <= 0.0 {
            return;
        }
        let slack = c.c - self.y_now(c.a) - self.y_now(c.b);
        self.push_event(self.now + slack / rs, EventKind::EdgeTight, cid);
    }

    /// Schedules `defect`'s boundary-hit event, if it is growing and a
    /// boundary attachment is known.
    fn schedule_boundary(&mut self, defect: u32) {
        if self.rate(defect) <= 0.0 {
            return;
        }
        if let Some((c, _)) = self.bnd[defect as usize] {
            let t = self.now + (c - self.y_now(defect));
            self.push_event(t, EventKind::BoundaryHit, defect);
        }
    }

    /// Schedules an inner blossom's shrink-to-zero expansion event.
    fn schedule_blossom(&mut self, b: u32) {
        if self.state[b as usize] == 1 {
            let t = self.now + self.z_now(b) / 2.0;
            self.push_event(t, EventKind::BlossomZero, b);
        }
    }

    /// Re-schedules everything a defect's state change may have enabled.
    fn wake(&mut self, defect: u32) {
        self.schedule_settle(defect);
        self.schedule_boundary(defect);
        for i in 0..self.adj[defect as usize].len() {
            let cid = self.adj[defect as usize][i];
            self.schedule_cand(cid);
        }
    }

    /// Freezes duals, stamps the new rate epoch, and wakes every defect of
    /// node `x` — the one call every structural state change funnels
    /// through.
    fn refresh_node(&mut self, x: u32) {
        let mut walk = std::mem::take(&mut self.walk);
        walk.clear();
        self.collect_defects(x, &mut walk);
        for &d in &walk {
            self.wake(d);
        }
        self.walk = walk;
    }

    // -- candidate discovery --------------------------------------------------

    /// The distance at which `region` settled `vertex`, if it has.
    #[inline]
    fn claimed_at(&self, vertex: usize, region: u32) -> Option<f64> {
        self.claims[vertex]
            .iter()
            .find(|&&(r, _)| r == region)
            .map(|&(_, d)| d)
    }

    /// Records or improves the candidate edge between residual defects
    /// `a` and `b` at meet cost `c`, scheduling its tight event.
    fn offer_cand(&mut self, a: u32, b: u32, c: f64) {
        if a == b {
            return;
        }
        // Dedup by linear scan of the smaller endpoint's list: k and the
        // per-defect degree are both small, and this keeps the hot path
        // free of hash maps.
        let (key, other) = if self.adj[a as usize].len() <= self.adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        for &cid in &self.adj[key as usize] {
            let cand = &mut self.cands[cid as usize];
            if cand.a == other || cand.b == other {
                if c < cand.c {
                    cand.c = c;
                    self.schedule_cand(cid);
                }
                return;
            }
        }
        let cid = self.cands.len() as u32;
        self.cands.push(Cand { a, b, c });
        self.adj[a as usize].push(cid);
        self.adj[b as usize].push(cid);
        self.schedule_cand(cid);
    }

    /// Settles every frontier vertex of `defect`'s region whose distance is
    /// within the region's current dual, discovering meets and boundary
    /// attachments, then re-schedules the next settle.
    fn settle(&mut self, graph: &SyndromeGraph, defect: u32) {
        if self.rate(defect) <= 0.0 {
            return; // stale event; re-scheduled on the next wake
        }
        loop {
            let Some(&front) = self.fronts[defect as usize].peek() else {
                return;
            };
            let (cost, vertex) = (front.cost, front.vertex as usize);
            if self.claimed_at(vertex, defect).is_some() {
                self.fronts[defect as usize].pop();
                continue;
            }
            if cost > self.y_now(defect) + self.eps {
                self.push_event(
                    self.now + (cost - self.y_now(defect)),
                    EventKind::Settle,
                    defect,
                );
                return;
            }
            self.fronts[defect as usize].pop();
            // Vertex meets: other regions that already settled this vertex.
            if self.claims[vertex].is_empty() {
                self.touched.push(vertex as u32);
            }
            for i in 0..self.claims[vertex].len() {
                let (other, od) = self.claims[vertex][i];
                self.offer_cand(defect, other, cost + od);
            }
            self.claims[vertex].push((defect, cost));
            for &eid in graph.incident(vertex) {
                let edge = graph.edge(eid);
                match edge.other(vertex) {
                    Some(neighbor) => {
                        let next = cost + edge.weight;
                        // Edge meets: regions holding the far endpoint.
                        for i in 0..self.claims[neighbor].len() {
                            let (other, od) = self.claims[neighbor][i];
                            if other != defect {
                                self.offer_cand(defect, other, next + od);
                            }
                        }
                        if self.claimed_at(neighbor, defect).is_none() {
                            self.fronts[defect as usize].push(Frontier {
                                cost: next,
                                vertex: neighbor as u32,
                            });
                        }
                    }
                    None => {
                        let next = cost + edge.weight;
                        let better = match self.bnd[defect as usize] {
                            None => true,
                            Some((c, e)) => next < c || (next == c && eid < e),
                        };
                        if better {
                            self.bnd[defect as usize] = Some((next, eid));
                            self.schedule_boundary(defect);
                        }
                    }
                }
            }
        }
    }

    // -- blossom containment helpers -----------------------------------------

    /// The immediate child of blossom `b` containing `defect`.
    fn child_containing(&self, b: u32, defect: u32) -> u32 {
        let mut x = defect;
        while self.up[x as usize] != b {
            x = self.up[x as usize];
            debug_assert_ne!(x, NONE, "defect not inside blossom");
        }
        x
    }

    /// Orients candidate `cid` so the first returned endpoint lies inside
    /// node `x` (checked by walking endpoint `a`'s container chain).
    fn oriented(&self, cid: u32, x: u32) -> (u32, u32) {
        let c = self.cands[cid as usize];
        let mut t = c.a;
        loop {
            if t == x {
                return (c.a, c.b);
            }
            t = self.up[t as usize];
            if t == NONE {
                return (c.b, c.a);
            }
        }
    }

    /// Points every id inside node `x` at outermost container `b`.
    fn set_st(&mut self, x: u32, b: u32) {
        let mut stack = vec![x];
        while let Some(x) = stack.pop() {
            self.st[x as usize] = b;
            if (x as usize) >= self.k {
                stack.extend_from_slice(&self.flower[x as usize]);
            }
        }
    }

    /// Position of child `xr` in blossom `b`'s cycle, after re-orienting the
    /// cycle (and its edge list) so the base→`xr` path has even length.
    fn get_pr(&mut self, b: u32, xr: u32) -> usize {
        let pr = self.flower[b as usize]
            .iter()
            .position(|&x| x == xr)
            .expect("blossom child not on its cycle");
        if pr % 2 == 1 {
            let len = self.flower[b as usize].len();
            self.flower[b as usize][1..].reverse();
            // Edges e_i join c_i—c_{i+1} (cyclically).  Reversing the cycle
            // tail maps the edge list to its full reverse.
            self.flower_edges[b as usize].reverse();
            len - pr
        } else {
            pr
        }
    }

    /// The cycle-edge candidate joining `flower[b][i]` and its `i ^ 1`
    /// partner (the matched-pair alignment used by [`Self::set_match`]).
    #[inline]
    fn cycle_edge(&self, b: u32, i: usize) -> u32 {
        let e = &self.flower_edges[b as usize];
        if i.is_multiple_of(2) {
            e[i]
        } else {
            e[i - 1]
        }
    }
}

// ---------------------------------------------------------------------------
// Matching mutations: set_match / augment / blossoms / trees.
// ---------------------------------------------------------------------------

impl AltTreeBackend {
    /// Matches node `x` to the far endpoint of candidate `cid`, re-basing any
    /// blossom structure inside `x` along the *concrete* edge (the PR-8
    /// float-tie lesson: the recursion threads the actual candidate, it never
    /// re-derives a representative edge).
    fn set_match(&mut self, x: u32, cid: u32) {
        let (inside, outside) = self.oriented(cid, x);
        self.matched[x as usize] = outside;
        self.matched_edge[x as usize] = cid;
        if (x as usize) >= self.k {
            let xr = self.child_containing(x, inside);
            let pr = self.get_pr(x, xr);
            for i in 0..pr {
                let ch = self.flower[x as usize][i];
                let e = self.cycle_edge(x, i);
                self.set_match(ch, e);
            }
            self.set_match(xr, cid);
            self.flower[x as usize].rotate_left(pr);
            self.flower_edges[x as usize].rotate_left(pr);
        }
    }

    /// Matches node `x` to the boundary through its member defect `u`,
    /// capturing `u`'s boundary attachment at commit time.
    fn set_match_boundary(&mut self, x: u32, u: u32) {
        self.matched[x as usize] = BOUNDARY;
        self.matched_edge[x as usize] = NONE;
        if (x as usize) >= self.k {
            let xr = self.child_containing(x, u);
            let pr = self.get_pr(x, xr);
            for i in 0..pr {
                let ch = self.flower[x as usize][i];
                let e = self.cycle_edge(x, i);
                self.set_match(ch, e);
            }
            self.set_match_boundary(xr, u);
            self.flower[x as usize].rotate_left(pr);
            self.flower_edges[x as usize].rotate_left(pr);
        } else {
            debug_assert_eq!(x, u, "boundary match must commit at its defect");
            self.bnd_used[x as usize] = self.bnd[x as usize];
        }
    }

    /// One step up the alternating tree from outer node `x`: through its
    /// matched edge into its inner parent, then through that parent's tree
    /// edge to the next outer node (`NONE` at the root).
    fn up_chain_step(&self, x: u32) -> u32 {
        let m = self.matched[x as usize];
        if m == NONE || m == BOUNDARY {
            return NONE;
        }
        let inner = self.st[m as usize];
        let p = self.pa[inner as usize];
        debug_assert_ne!(p, NONE, "inner node without a tree parent");
        self.st[p as usize]
    }

    /// Lowest common ancestor of outer nodes `x` and `y` in their (shared)
    /// alternating tree, by stamped alternating walks.
    fn get_lca(&mut self, mut x: u32, mut y: u32) -> u32 {
        self.vis_epoch += 1;
        let ep = self.vis_epoch;
        while x != NONE || y != NONE {
            if x != NONE {
                if self.vis[x as usize] == ep {
                    return x;
                }
                self.vis[x as usize] = ep;
                x = self.up_chain_step(x);
            }
            std::mem::swap(&mut x, &mut y);
        }
        unreachable!("outer nodes of one tree always share a root")
    }

    /// Collects the tree path from outer node `from` up to (excluding)
    /// `lca`: `nodes` = `[from, i1, o1, …, i_s]`, `edges[j]` joins
    /// `nodes[j]`–`nodes[j+1]`, and the final edge joins `nodes.last()` to
    /// `lca`.
    fn tree_path(&self, from: u32, lca: u32, nodes: &mut Vec<u32>, edges: &mut Vec<u32>) {
        nodes.clear();
        edges.clear();
        let mut x = from;
        while x != lca {
            nodes.push(x);
            let m = self.matched[x as usize];
            debug_assert!(m != NONE && m != BOUNDARY, "tree path through the root");
            let inner = self.st[m as usize];
            edges.push(self.matched_edge[x as usize]);
            nodes.push(inner);
            edges.push(self.pa_edge[inner as usize]);
            x = self.st[self.pa[inner as usize] as usize];
        }
    }

    /// Allocates a blossom node id (recycled slot or fresh arrays).
    fn alloc_blossom(&mut self) -> u32 {
        if let Some(b) = self.free_slots.pop() {
            let bi = b as usize;
            self.flower[bi].clear();
            self.flower_edges[bi].clear();
            self.up[bi] = NONE;
            return b;
        }
        let b = self.n_ids as u32;
        self.n_ids += 1;
        self.st.push(b);
        self.up.push(NONE);
        self.state.push(-1);
        self.pa.push(NONE);
        self.pa_edge.push(NONE);
        self.matched.push(NONE);
        self.matched_edge.push(NONE);
        self.z.push(0.0);
        self.z_at.push(0.0);
        self.tree_tag.push(NONE);
        self.vis.push(0);
        self.flower.push(Vec::new());
        self.flower_edges.push(Vec::new());
        b
    }

    /// Contracts the odd cycle of tight edges closed by candidate `cid`
    /// (both endpoints outer in one tree) into a new outer blossom.
    fn add_blossom(&mut self, cid: u32) {
        let c = self.cands[cid as usize];
        let x = self.st[c.a as usize];
        let y = self.st[c.b as usize];
        let lca = self.get_lca(x, y);
        let (mut nx, mut ex) = (Vec::new(), Vec::new());
        let (mut ny, mut ey) = (Vec::new(), Vec::new());
        self.tree_path(x, lca, &mut nx, &mut ex);
        self.tree_path(y, lca, &mut ny, &mut ey);
        // Cycle: lca, x-path reversed (so it descends from lca to x), the
        // triggering edge, then the y-path ascending back to lca.
        let mut fl = Vec::with_capacity(1 + nx.len() + ny.len());
        fl.push(lca);
        fl.extend(nx.iter().rev().copied());
        fl.extend(ny.iter().copied());
        let mut fe = Vec::with_capacity(fl.len());
        fe.extend(ex.iter().rev().copied());
        fe.push(cid);
        fe.extend(ey.iter().copied());
        debug_assert_eq!(fe.len(), fl.len());
        debug_assert_eq!(fl.len() % 2, 1, "blossom cycles are odd");
        let b = self.alloc_blossom();
        let tag = self.tree_tag[lca as usize];
        // Freeze member duals under their *old* rates before any flips.
        for &ch in &fl {
            self.freeze_node(ch);
            if ch as usize >= self.k {
                self.freeze_z(ch);
            }
        }
        self.matched[b as usize] = self.matched[lca as usize];
        self.matched_edge[b as usize] = self.matched_edge[lca as usize];
        self.pa[b as usize] = self.pa[lca as usize];
        self.pa_edge[b as usize] = self.pa_edge[lca as usize];
        self.state[b as usize] = 0;
        self.z[b as usize] = 0.0;
        self.z_at[b as usize] = self.now;
        self.tree_tag[b as usize] = tag;
        self.tree_members[tag as usize].push(b);
        for &ch in &fl {
            self.up[ch as usize] = b;
            if ch as usize >= self.k {
                // Absorbed blossoms' duals freeze until they resurface.
                self.state[ch as usize] = -1;
            }
        }
        self.flower[b as usize] = fl;
        self.flower_edges[b as usize] = fe;
        self.set_st(b, b);
        self.refresh_node(b);
    }

    /// Dissolves inner blossom `b` (dual at zero): the even path from the
    /// entry child to the base stays in the tree, the rest goes free.
    fn expand_blossom(&mut self, b: u32) {
        let bi = b as usize;
        let pe = self.pa_edge[bi];
        let pc = self.cands[pe as usize];
        let entry = if self.st[pc.a as usize] == b {
            pc.a
        } else {
            pc.b
        };
        let tag = self.tree_tag[bi];
        // Freeze every member defect under the inner (shrinking) rate.
        self.freeze_node(b);
        for i in 0..self.flower[bi].len() {
            let ch = self.flower[bi][i];
            if ch as usize >= self.k {
                self.freeze_z(ch);
            }
            self.up[ch as usize] = NONE;
        }
        for i in 0..self.flower[bi].len() {
            let ch = self.flower[bi][i];
            self.set_st(ch, ch);
        }
        let xr = self.st[entry as usize];
        let pr = self.get_pr(b, xr);
        let fl = std::mem::take(&mut self.flower[bi]);
        let fe = std::mem::take(&mut self.flower_edges[bi]);
        // Tree path base → entry: fl[even] inner (tree edge = cycle edge up
        // to fl[even+1]), fl[odd] outer (linked up by its matched edge).
        for i in (0..pr).step_by(2) {
            let inner = fl[i];
            let outer = fl[i + 1];
            let ecid = fe[i];
            let (_, pvert) = self.oriented(ecid, inner);
            self.state[inner as usize] = 1;
            self.pa[inner as usize] = pvert;
            self.pa_edge[inner as usize] = ecid;
            self.state[outer as usize] = 0;
            self.tree_tag[inner as usize] = tag;
            self.tree_tag[outer as usize] = tag;
            self.tree_members[tag as usize].push(inner);
            self.tree_members[tag as usize].push(outer);
            if inner as usize >= self.k {
                self.schedule_blossom(inner);
            }
        }
        self.state[xr as usize] = 1;
        self.pa[xr as usize] = self.pa[bi];
        self.pa_edge[xr as usize] = self.pa_edge[bi];
        self.tree_tag[xr as usize] = tag;
        self.tree_members[tag as usize].push(xr);
        if xr as usize >= self.k {
            self.schedule_blossom(xr);
        }
        for &ch in fl.iter().skip(pr + 1) {
            self.state[ch as usize] = -1;
            self.pa[ch as usize] = NONE;
            self.pa_edge[ch as usize] = NONE;
            self.tree_tag[ch as usize] = NONE;
        }
        self.state[bi] = -1;
        self.tree_tag[bi] = NONE;
        self.matched[bi] = NONE;
        self.matched_edge[bi] = NONE;
        self.pa[bi] = NONE;
        self.pa_edge[bi] = NONE;
        self.free_slots.push(b);
        for &ch in &fl {
            self.refresh_node(ch);
        }
        // Hand the buffers back for capacity reuse (cleared on realloc).
        self.flower[bi] = fl;
        self.flower_edges[bi] = fe;
    }

    /// A tight edge from an outer node into a free node: either grab it (and
    /// its partner) into the tree, or — if it is boundary-matched — augment
    /// straight through it, releasing its boundary attachment.
    fn grow(&mut self, cid: u32) {
        let c = self.cands[cid as usize];
        let (av, bv) = if self.state[self.st[c.a as usize] as usize] == 0 {
            (c.a, c.b)
        } else {
            (c.b, c.a)
        };
        let x = self.st[av as usize];
        let f = self.st[bv as usize];
        debug_assert_eq!(self.state[x as usize], 0);
        debug_assert_eq!(self.state[f as usize], -1);
        let tag = self.tree_tag[x as usize];
        if self.matched[f as usize] == BOUNDARY {
            // root … x —cid— f —(boundary, infinite capacity): augmenting.
            self.augment_path(x, Some(cid), None);
            self.set_match(f, cid);
            self.teardown(tag);
            self.unmatched -= 1;
            return;
        }
        self.freeze_node(f);
        if f as usize >= self.k {
            self.freeze_z(f);
        }
        self.state[f as usize] = 1;
        self.pa[f as usize] = av;
        self.pa_edge[f as usize] = cid;
        self.tree_tag[f as usize] = tag;
        self.tree_members[tag as usize].push(f);
        let p = self.st[self.matched[f as usize] as usize];
        self.freeze_node(p);
        if p as usize >= self.k {
            self.freeze_z(p);
        }
        self.state[p as usize] = 0;
        self.pa[p as usize] = NONE;
        self.pa_edge[p as usize] = NONE;
        self.tree_tag[p as usize] = tag;
        self.tree_members[tag as usize].push(p);
        self.refresh_node(f);
        self.refresh_node(p);
        if f as usize >= self.k {
            self.schedule_blossom(f);
        }
    }

    /// Flips the alternating path from node `x` up to its tree root, with the
    /// first re-match given by either a candidate edge or a boundary commit.
    fn augment_path(&mut self, x: u32, pair: Option<u32>, boundary: Option<u32>) {
        let mut x = x;
        let mut old = self.matched[x as usize];
        debug_assert_ne!(old, BOUNDARY, "tree nodes are never boundary-matched");
        match (pair, boundary) {
            (Some(cid), None) => self.set_match(x, cid),
            (None, Some(u)) => self.set_match_boundary(x, u),
            _ => unreachable!("exactly one initial re-match"),
        }
        while old != NONE {
            let inner = self.st[old as usize];
            let pe = self.pa_edge[inner as usize];
            let parent = self.st[self.pa[inner as usize] as usize];
            let next_old = self.matched[parent as usize];
            debug_assert_ne!(next_old, BOUNDARY);
            self.set_match(inner, pe);
            self.set_match(parent, pe);
            x = parent;
            let _ = x;
            old = next_old;
        }
    }

    /// A tight edge between outer nodes of two different trees: augment both.
    fn augment_pair(&mut self, cid: u32) {
        let c = self.cands[cid as usize];
        let x = self.st[c.a as usize];
        let y = self.st[c.b as usize];
        let tx = self.tree_tag[x as usize];
        let ty = self.tree_tag[y as usize];
        self.augment_path(x, Some(cid), None);
        self.augment_path(y, Some(cid), None);
        self.teardown(tx);
        self.teardown(ty);
        self.unmatched -= 2;
    }

    /// A tight boundary attachment at defect `u` of an outer node: augment
    /// its tree into the boundary.
    fn augment_boundary_hit(&mut self, u: u32) {
        let x = self.st[u as usize];
        let tag = self.tree_tag[x as usize];
        self.augment_path(x, None, Some(u));
        self.teardown(tag);
        self.unmatched -= 1;
    }

    /// Dismantles a tree after augmentation: every still-live outermost
    /// member goes free (duals frozen) and gets re-scheduled.
    fn teardown(&mut self, tag: u32) {
        let members = std::mem::take(&mut self.tree_members[tag as usize]);
        for &x in &members {
            let xi = x as usize;
            if self.tree_tag[xi] != tag || self.st[xi] != x || self.state[xi] == -1 {
                continue; // absorbed, expanded away, or re-homed
            }
            self.freeze_node(x);
            if xi >= self.k {
                self.freeze_z(x);
            }
            self.state[xi] = -1;
            self.pa[xi] = NONE;
            self.pa_edge[xi] = NONE;
            self.tree_tag[xi] = NONE;
            self.refresh_node(x);
        }
        self.tree_members[tag as usize] = members;
        self.tree_members[tag as usize].clear();
        self.free_trees.push(tag);
    }
}

// ---------------------------------------------------------------------------
// Top-level drive: init, the event loop, extraction.
// ---------------------------------------------------------------------------

/// Clears and refills a scratch vector (capacity persists across calls).
fn fit<T: Clone>(v: &mut Vec<T>, len: usize, value: T) {
    v.clear();
    v.resize(len, value);
}

impl AltTreeBackend {
    /// Path-halving find over the zero-weight vertex union-find.
    fn zero_find(&mut self, mut x: u32) -> u32 {
        while self.zero_parent[x as usize] != x {
            let g = self.zero_parent[self.zero_parent[x as usize] as usize];
            self.zero_parent[x as usize] = g;
            x = g;
        }
        x
    }

    /// Resets all per-call state for `vertices[i]` = source vertex of
    /// residual region `i`, and seeds every region's frontier.
    fn init(&mut self, graph: &SyndromeGraph, vertices: &[usize]) {
        let k = vertices.len();
        let n = graph.num_vertices();
        self.k = k;
        self.now = 0.0;
        self.unmatched = k;
        self.vis_epoch = 0;
        for &v in &self.touched {
            self.claims[v as usize].clear();
        }
        self.touched.clear();
        if self.claims.len() < n {
            self.claims.resize(n, Vec::new());
        }
        self.events.clear();
        self.cands.clear();
        self.free_slots.clear();
        self.free_trees.clear();
        self.n_ids = k;
        fit(&mut self.y, k, 0.0);
        fit(&mut self.y_at, k, 0.0);
        fit(&mut self.bnd, k, None);
        fit(&mut self.bnd_used, k, None);
        if self.adj.len() < k {
            self.adj.resize(k, Vec::new());
        }
        for a in &mut self.adj[..k] {
            a.clear();
        }
        if self.fronts.len() < k {
            self.fronts.resize(k, BinaryHeap::new());
        }
        self.st.clear();
        self.st.extend(0..k as u32);
        fit(&mut self.up, k, NONE);
        fit(&mut self.state, k, 0);
        fit(&mut self.pa, k, NONE);
        fit(&mut self.pa_edge, k, NONE);
        fit(&mut self.matched, k, NONE);
        fit(&mut self.matched_edge, k, NONE);
        fit(&mut self.z, k, 0.0);
        fit(&mut self.z_at, k, 0.0);
        fit(&mut self.vis, k, 0);
        self.flower.truncate(k);
        while self.flower.len() < k {
            self.flower.push(Vec::new());
        }
        self.flower_edges.truncate(k);
        while self.flower_edges.len() < k {
            self.flower_edges.push(Vec::new());
        }
        fit(&mut self.tree_tag, k, NONE);
        if self.tree_members.len() < k {
            self.tree_members.resize(k, Vec::new());
        }
        for t in k..self.tree_members.len() {
            self.tree_members[t].clear();
            self.free_trees.push(t as u32);
        }
        for (i, &vertex) in vertices.iter().enumerate() {
            self.tree_members[i].clear();
            self.tree_members[i].push(i as u32);
            self.tree_tag[i] = i as u32;
            self.fronts[i].clear();
            self.fronts[i].push(Frontier {
                cost: 0.0,
                vertex: vertex as u32,
            });
            self.schedule_settle(i as u32);
        }
    }

    /// Runs the event loop to a perfect matching over the residual defects.
    fn run(&mut self, graph: &SyndromeGraph) {
        let cap = 100_000u64 + 256 * (self.k as u64 * self.k as u64 + graph.num_edges() as u64);
        let mut steps = 0u64;
        while self.unmatched > 0 {
            let ev = self.events.pop().unwrap_or_else(|| {
                panic!(
                    "alternating-tree matcher exhausted events with {} defects unmatched \
                     (disconnected component without boundary?)",
                    self.unmatched
                )
            });
            steps += 1;
            assert!(
                steps < cap,
                "alternating-tree matcher failed to converge within {cap} events"
            );
            match ev.kind {
                EventKind::Settle => {
                    let u = ev.id;
                    if self.rate(u) <= 0.0 {
                        continue; // re-scheduled when the region grows again
                    }
                    let Some(t) = self.next_settle_time(u) else {
                        continue; // region fully explored
                    };
                    if t > ev.t + self.eps {
                        self.push_event(t, EventKind::Settle, u);
                        continue;
                    }
                    self.now = self.now.max(t);
                    self.settle(graph, u);
                }
                EventKind::EdgeTight => {
                    let cid = ev.id;
                    let c = self.cands[cid as usize];
                    let x = self.st[c.a as usize];
                    let y = self.st[c.b as usize];
                    if x == y {
                        continue; // became internal to one node
                    }
                    let rs = self.rate(c.a) + self.rate(c.b);
                    if rs <= 0.0 {
                        continue; // parked; re-woken on a state change
                    }
                    let slack = c.c - self.y_now(c.a) - self.y_now(c.b);
                    let t = self.now + slack / rs;
                    if t > ev.t + self.eps {
                        self.push_event(t, EventKind::EdgeTight, cid);
                        continue;
                    }
                    self.now = self.now.max(t);
                    match (self.state[x as usize], self.state[y as usize]) {
                        (0, 0) => {
                            if self.tree_tag[x as usize] == self.tree_tag[y as usize] {
                                self.add_blossom(cid);
                            } else {
                                self.augment_pair(cid);
                            }
                        }
                        (0, -1) | (-1, 0) => self.grow(cid),
                        _ => {}
                    }
                }
                EventKind::BoundaryHit => {
                    let u = ev.id;
                    if self.rate(u) <= 0.0 {
                        continue;
                    }
                    let Some((c, _)) = self.bnd[u as usize] else {
                        continue;
                    };
                    let t = self.now + (c - self.y_now(u));
                    if t > ev.t + self.eps {
                        self.push_event(t, EventKind::BoundaryHit, u);
                        continue;
                    }
                    self.now = self.now.max(t);
                    self.augment_boundary_hit(u);
                }
                EventKind::BlossomZero => {
                    let b = ev.id;
                    if self.state[b as usize] != 1 {
                        continue;
                    }
                    let t = self.now + self.z_now(b) / 2.0;
                    if t > ev.t + self.eps {
                        self.push_event(t, EventKind::BlossomZero, b);
                        continue;
                    }
                    self.now = self.now.max(t);
                    self.expand_blossom(b);
                }
            }
        }
    }

    /// Time of `defect`'s next frontier settle (stale entries skipped), or
    /// `None` when the region has explored everything reachable.
    fn next_settle_time(&mut self, defect: u32) -> Option<f64> {
        while let Some(&f) = self.fronts[defect as usize].peek() {
            if self.claimed_at(f.vertex as usize, defect).is_some() {
                self.fronts[defect as usize].pop();
                continue;
            }
            return Some(self.now + (f.cost - self.y_now(defect)));
        }
        None
    }

    /// Reads the final matching back out in residual-index order.
    /// `residual[i]` is the caller-facing defect index of region `i`.
    fn extract(&mut self, residual: &[usize], out: &mut DefectMatching) {
        let k = self.k;
        let mut comp: Vec<u32> = (0..k as u32).collect();
        fn find(comp: &mut [u32], mut x: u32) -> u32 {
            while comp[x as usize] != x {
                let g = comp[comp[x as usize] as usize];
                comp[x as usize] = g;
                x = g;
            }
            x
        }
        for i in 0..k {
            let m = self.matched[i];
            assert!(m != NONE, "defect {i} left unmatched");
            if m == BOUNDARY {
                let (cost, edge) = self.bnd_used[i]
                    .expect("boundary-matched defect without a committed attachment");
                out.boundary.push(DefectBoundaryMatch {
                    defect: residual[i],
                    edge,
                    cost,
                });
            } else {
                if (i as u32) < m {
                    let cid = self.matched_edge[i];
                    out.pairs.push(DefectPair {
                        a: residual[i],
                        b: residual[m as usize],
                        cost: self.cands[cid as usize].c,
                    });
                }
                let (ra, rb) = (find(&mut comp, i as u32), find(&mut comp, m));
                if ra != rb {
                    comp[ra as usize] = rb;
                }
            }
        }
        // Clusters of the residual instance = components of the matching
        // graph: each boundary match is its own cluster, matched pairs merge.
        let mut clusters = 0usize;
        for i in 0..k {
            if find(&mut comp, i as u32) == i as u32 {
                clusters += 1;
            }
        }
        out.num_clusters += clusters;
    }
}

impl DecoderBackend for AltTreeBackend {
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        let mut out = DefectMatching::default();
        if defects.is_empty() {
            return out;
        }
        let n = graph.num_vertices();
        // Zero-weight pre-pairing: same contraction semantics as the blossom
        // backend — defects sharing a zero-weight component pair for free and
        // only the per-component parity enters the tree machinery.
        self.zero_parent.clear();
        self.zero_parent.extend(0..n as u32);
        for edge in graph.edges() {
            if let Some(v) = edge.v {
                if edge.weight <= ZERO_EPS {
                    let (ru, rv) = (self.zero_find(edge.u as u32), self.zero_find(v as u32));
                    if ru != rv {
                        self.zero_parent[ru as usize] = rv;
                    }
                }
            }
        }
        let mut buckets: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &v) in defects.iter().enumerate() {
            assert!(v < n, "defect vertex {v} out of range");
            let root = self.zero_find(v as u32);
            buckets.entry(root).or_default().push(i);
        }
        let mut residual: Vec<usize> = Vec::new();
        for bucket in buckets.values() {
            for pair in bucket.chunks(2) {
                if let [a, b] = *pair {
                    out.pairs.push(DefectPair { a, b, cost: 0.0 });
                } else {
                    residual.push(pair[0]);
                }
            }
            if bucket.len() >= 2 && bucket.len() % 2 == 0 {
                out.num_clusters += 1;
            }
        }
        residual.sort_unstable();
        if residual.is_empty() {
            return out;
        }
        let wmax = graph.edges().iter().fold(0.0f64, |m, e| m.max(e.weight));
        self.eps = (1.0 + wmax) * 1e-9;
        let vertices: Vec<usize> = residual.iter().map(|&i| defects[i]).collect();
        self.init(graph, &vertices);
        self.run(graph);
        self.extract(&residual, &mut out);
        out
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactBackend;

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs())),
            "{what}: {a} vs {b}"
        );
    }

    /// Tiny deterministic generator (same recurrence as the blossom tests).
    struct Lcg(u64);
    impl Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
        fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    fn oracle() -> ExactBackend {
        ExactBackend::new(22, 64)
    }

    #[test]
    fn empty_defect_list_is_empty_matching() {
        let g = SyndromeGraph::line(&[1.0, 1.0], 1.0);
        let m = AltTreeBackend::new().decode_defects(&g, &[]);
        assert!(m.pairs.is_empty() && m.boundary.is_empty());
        assert_eq!(m.num_clusters, 0);
    }

    #[test]
    fn single_defect_takes_cheapest_boundary() {
        let g = SyndromeGraph::line(&[1.0, 2.0, 3.0], 0.5);
        let m = AltTreeBackend::new().decode_defects(&g, &[1]);
        assert!(m.pairs.is_empty());
        assert_eq!(m.boundary.len(), 1);
        // vertex 1: left boundary via edge 0 costs 1.0 + 0.5.
        assert_close(m.boundary[0].cost, 1.5, "single defect boundary");
        assert_eq!(m.num_clusters, 1);
        assert!(m.is_perfect(1));
    }

    #[test]
    fn adjacent_pair_beats_boundary() {
        let g = SyndromeGraph::line(&[1.0, 0.4, 1.0], 5.0);
        let m = AltTreeBackend::new().decode_defects(&g, &[1, 2]);
        assert_eq!(m.pairs.len(), 1);
        assert!(m.boundary.is_empty());
        assert_close(m.total_cost(), 0.4, "adjacent pair");
        assert_eq!(m.num_clusters, 1);
        assert!(m.is_perfect(2));
    }

    #[test]
    fn far_defects_split_to_their_boundaries() {
        let g = SyndromeGraph::line(&[1.0; 9], 0.25);
        let m = AltTreeBackend::new().decode_defects(&g, &[0, 9]);
        assert_eq!(m.boundary.len(), 2);
        assert!(m.pairs.is_empty());
        assert_close(m.total_cost(), 0.5, "two boundary matches");
        assert_eq!(m.num_clusters, 2);
        assert!(m.is_perfect(2));
    }

    #[test]
    fn zero_weight_regions_pre_pair_for_free() {
        // A p = 0.5 anomaly: edges 3..=6 re-weighted to exactly zero.
        let mut weights = vec![1.0; 9];
        for w in &mut weights[3..=6] {
            *w = 0.0;
        }
        let g = SyndromeGraph::line(&weights, 2.0);
        let defects = [3usize, 4, 5, 6, 7];
        let m = AltTreeBackend::new().decode_defects(&g, &defects);
        assert!(m.is_perfect(defects.len()));
        let exact = oracle().decode_defects(&g, &defects);
        assert_close(m.total_cost(), exact.total_cost(), "zero stretch");
        let zero_pairs = m.pairs.iter().filter(|p| p.cost <= ZERO_EPS).count();
        assert!(zero_pairs >= 2, "expected free pre-pairs, got {zero_pairs}");
    }

    /// An odd cycle of equidistant defects with a far boundary forces
    /// blossom formation before any augmentation can finish.
    #[test]
    fn odd_cycle_forces_a_blossom_and_stays_exact() {
        let mut g = SyndromeGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0);
            g.add_boundary_edge(i, 10.0);
        }
        let defects = [0usize, 1, 2, 3, 4];
        let m = AltTreeBackend::new().decode_defects(&g, &defects);
        assert!(m.is_perfect(5));
        let exact = oracle().decode_defects(&g, &defects);
        assert_close(m.total_cost(), exact.total_cost(), "5-cycle blossom");
        // Two unit pairs + one boundary escape.
        assert_close(m.total_cost(), 12.0, "5-cycle value");
    }

    /// Nested structure: a 3-blossom whose escape is contested.
    #[test]
    fn triangle_with_pendant_tail_matches_oracle() {
        let mut g = SyndromeGraph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 0, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        g.add_boundary_edge(5, 1.0);
        g.add_boundary_edge(0, 8.0);
        for defects in [vec![0usize, 1, 2], vec![0, 1, 2, 3], vec![0, 1, 2, 4, 5]] {
            let m = AltTreeBackend::new().decode_defects(&g, &defects);
            assert!(m.is_perfect(defects.len()), "defects {defects:?}");
            let exact = oracle().decode_defects(&g, &defects);
            assert_close(
                m.total_cost(),
                exact.total_cost(),
                &format!("triangle tail {defects:?}"),
            );
        }
    }

    #[test]
    fn random_lines_match_oracle_weight() {
        let mut rng = Lcg(0x5eed_a17e);
        let mut tree = AltTreeBackend::new();
        let mut exact = oracle();
        for round in 0..120 {
            let len = 2 + rng.below(14);
            let weights: Vec<f64> = (0..len).map(|_| 0.05 + rng.uniform() * 2.0).collect();
            let boundary = 0.1 + rng.uniform() * 2.5;
            let g = SyndromeGraph::line(&weights, boundary);
            let mut defects: Vec<usize> = (0..=len).filter(|_| rng.below(3) == 0).collect();
            if defects.is_empty() {
                defects.push(rng.below(len + 1));
            }
            let m = tree.decode_defects(&g, &defects);
            assert!(m.is_perfect(defects.len()), "round {round}");
            let e = exact.decode_defects(&g, &defects);
            assert_close(
                m.total_cost(),
                e.total_cost(),
                &format!("line round {round}"),
            );
        }
    }

    #[test]
    fn random_ladders_match_oracle_weight() {
        let mut rng = Lcg(0xba5e_ba11);
        let mut tree = AltTreeBackend::new();
        let mut exact = oracle();
        for round in 0..80 {
            let cols = 3 + rng.below(7);
            let n = cols * 2;
            let mut g = SyndromeGraph::new(n);
            for c in 0..cols {
                g.add_edge(2 * c, 2 * c + 1, 0.05 + rng.uniform() * 1.5);
                if c + 1 < cols {
                    g.add_edge(2 * c, 2 * (c + 1), 0.05 + rng.uniform() * 1.5);
                    g.add_edge(2 * c + 1, 2 * (c + 1) + 1, 0.05 + rng.uniform() * 1.5);
                }
            }
            g.add_boundary_edge(0, 0.2 + rng.uniform());
            g.add_boundary_edge(n - 1, 0.2 + rng.uniform());
            let mut defects: Vec<usize> = (0..n).filter(|_| rng.below(3) == 0).collect();
            if defects.is_empty() {
                defects.push(rng.below(n));
            }
            let m = tree.decode_defects(&g, &defects);
            assert!(m.is_perfect(defects.len()), "round {round}");
            let e = exact.decode_defects(&g, &defects);
            assert_close(
                m.total_cost(),
                e.total_cost(),
                &format!("ladder round {round}"),
            );
        }
    }

    /// Integer weights maximise dual-update ties — the regime where blossom
    /// formation, expansion and simultaneous tight events all collide.
    #[test]
    fn tie_heavy_integer_weights_match_oracle_weight() {
        let mut rng = Lcg(0x0dd5_eed5);
        let mut tree = AltTreeBackend::new();
        let mut exact = oracle();
        for round in 0..150 {
            let n = 4 + rng.below(10);
            let mut g = SyndromeGraph::new(n);
            for v in 1..n {
                let u = rng.below(v);
                g.add_edge(u, v, (1 + rng.below(2)) as f64);
            }
            for v in 0..n {
                if rng.below(3) == 0 {
                    g.add_edge(v, (v + 1) % n, (1 + rng.below(2)) as f64);
                }
            }
            g.add_boundary_edge(rng.below(n), (1 + rng.below(3)) as f64);
            g.add_boundary_edge(rng.below(n), (1 + rng.below(3)) as f64);
            let mut defects: Vec<usize> = (0..n).filter(|_| rng.below(2) == 0).collect();
            if defects.is_empty() {
                defects.push(rng.below(n));
            }
            let m = tree.decode_defects(&g, &defects);
            assert!(m.is_perfect(defects.len()), "round {round}");
            let e = exact.decode_defects(&g, &defects);
            assert_close(
                m.total_cost(),
                e.total_cost(),
                &format!("tie round {round}"),
            );
        }
    }

    /// The `&mut self` scratch contract: a reused backend decodes
    /// bit-identically to a fresh one, in any interleaving.
    #[test]
    fn scratch_reuse_is_bit_identical() {
        let g1 = SyndromeGraph::line(&[1.0, 0.3, 0.9, 1.4, 0.2], 0.8);
        let mut g2 = SyndromeGraph::new(6);
        for i in 0..5 {
            g2.add_edge(i, i + 1, 0.5 + 0.1 * i as f64);
        }
        g2.add_edge(0, 5, 1.1);
        g2.add_boundary_edge(2, 0.7);
        let cases: [(&SyndromeGraph, Vec<usize>); 4] = [
            (&g1, vec![0, 2, 3, 5]),
            (&g2, vec![1, 4]),
            (&g1, vec![1, 2]),
            (&g2, vec![0, 2, 3, 5]),
        ];
        let mut reused = AltTreeBackend::new();
        for (g, defects) in &cases {
            let warm = reused.decode_defects(g, defects);
            let cold = AltTreeBackend::new().decode_defects(g, defects);
            assert_eq!(warm, cold);
        }
    }

    #[test]
    #[should_panic(expected = "unmatched")]
    fn infeasible_instance_panics() {
        // Two isolated vertices, no edges, no boundary: nothing can match.
        let g = SyndromeGraph::new(2);
        let _ = AltTreeBackend::new().decode_defects(&g, &[0, 1]);
    }
}
