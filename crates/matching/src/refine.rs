//! Local-improvement matcher and the automatic matcher selector.

use crate::{GreedyMatcher, MatchTarget, Matcher, Matching, MatchingProblem};

/// Greedy matching followed by repeated 2-opt local improvement.
///
/// Starting from the [`GreedyMatcher`] solution, the matcher repeatedly
/// applies the cheapest-improving move among:
///
/// * **pair/pair swap** — for matched pairs `(a,b)` and `(c,d)`, rewire to
///   `(a,c),(b,d)` or `(a,d),(b,c)`;
/// * **pair/boundary swap** — for a matched pair `(a,b)` and a
///   boundary-matched node `c`, rewire to `(a,c)` with `b` on the boundary
///   (and the three symmetric variants);
/// * **pair break** — split a pair `(a,b)` into two boundary matches;
/// * **boundary merge** — join two boundary-matched nodes into a pair.
///
/// This recovers the optimum on the vast majority of decoding instances (it
/// is property-tested against [`crate::ExactMatcher`] on random instances)
/// and plays the role of Blossom V for large syndromes in this reproduction;
/// see DESIGN.md for the substitution rationale.
#[derive(Debug, Clone, Copy)]
pub struct RefinedGreedyMatcher {
    /// Maximum number of improvement sweeps over the current matching.
    pub max_rounds: usize,
}

impl Default for RefinedGreedyMatcher {
    fn default() -> Self {
        Self { max_rounds: 64 }
    }
}

impl RefinedGreedyMatcher {
    /// Creates a matcher with an explicit sweep limit.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        Self { max_rounds }
    }

    /// One improvement sweep.  Returns `true` if the matching changed.
    fn improve_once(problem: &MatchingProblem, assignment: &mut [MatchTarget]) -> bool {
        let n = assignment.len();
        let mut improved = false;
        let eps = 1e-12;

        // Boundary merge and pair break / pair-boundary swaps are easiest to
        // express by scanning unordered node pairs (a, b).
        for a in 0..n {
            for b in (a + 1)..n {
                let ta = assignment[a];
                let tb = assignment[b];
                match (ta, tb) {
                    (MatchTarget::Boundary, MatchTarget::Boundary) => {
                        // boundary merge
                        let current = problem.boundary_cost(a) + problem.boundary_cost(b);
                        let candidate = problem.pair_cost(a, b);
                        if candidate + eps < current {
                            assignment[a] = MatchTarget::Node(b);
                            assignment[b] = MatchTarget::Node(a);
                            improved = true;
                        }
                    }
                    (MatchTarget::Node(pa), MatchTarget::Boundary) if pa != b => {
                        // pair (a, pa) + boundary b: try (b, pa) + boundary a,
                        // or (a, b) + boundary pa.
                        let current = problem.pair_cost(a, pa) + problem.boundary_cost(b);
                        let swap1 = problem.pair_cost(b, pa) + problem.boundary_cost(a);
                        let swap2 = problem.pair_cost(a, b) + problem.boundary_cost(pa);
                        if swap1 + eps < current && swap1 <= swap2 {
                            assignment[b] = MatchTarget::Node(pa);
                            assignment[pa] = MatchTarget::Node(b);
                            assignment[a] = MatchTarget::Boundary;
                            improved = true;
                        } else if swap2 + eps < current {
                            assignment[a] = MatchTarget::Node(b);
                            assignment[b] = MatchTarget::Node(a);
                            assignment[pa] = MatchTarget::Boundary;
                            improved = true;
                        }
                    }
                    (MatchTarget::Boundary, MatchTarget::Node(pb)) if pb != a => {
                        let current = problem.pair_cost(b, pb) + problem.boundary_cost(a);
                        let swap1 = problem.pair_cost(a, pb) + problem.boundary_cost(b);
                        let swap2 = problem.pair_cost(a, b) + problem.boundary_cost(pb);
                        if swap1 + eps < current && swap1 <= swap2 {
                            assignment[a] = MatchTarget::Node(pb);
                            assignment[pb] = MatchTarget::Node(a);
                            assignment[b] = MatchTarget::Boundary;
                            improved = true;
                        } else if swap2 + eps < current {
                            assignment[a] = MatchTarget::Node(b);
                            assignment[b] = MatchTarget::Node(a);
                            assignment[pb] = MatchTarget::Boundary;
                            improved = true;
                        }
                    }
                    (MatchTarget::Node(pa), MatchTarget::Node(pb))
                        if pa != b && pb != a && a < pa && b < pb =>
                    {
                        // pair/pair swap between (a, pa) and (b, pb)
                        let current = problem.pair_cost(a, pa) + problem.pair_cost(b, pb);
                        let swap1 = problem.pair_cost(a, b) + problem.pair_cost(pa, pb);
                        let swap2 = problem.pair_cost(a, pb) + problem.pair_cost(pa, b);
                        if swap1 + eps < current && swap1 <= swap2 {
                            assignment[a] = MatchTarget::Node(b);
                            assignment[b] = MatchTarget::Node(a);
                            assignment[pa] = MatchTarget::Node(pb);
                            assignment[pb] = MatchTarget::Node(pa);
                            improved = true;
                        } else if swap2 + eps < current {
                            assignment[a] = MatchTarget::Node(pb);
                            assignment[pb] = MatchTarget::Node(a);
                            assignment[pa] = MatchTarget::Node(b);
                            assignment[b] = MatchTarget::Node(pa);
                            improved = true;
                        }
                    }
                    _ => {}
                }
            }
            // pair break: (a, pa) → two boundary matches
            if let MatchTarget::Node(pa) = assignment[a] {
                let current = problem.pair_cost(a, pa);
                let candidate = problem.boundary_cost(a) + problem.boundary_cost(pa);
                if candidate + eps < current {
                    assignment[a] = MatchTarget::Boundary;
                    assignment[pa] = MatchTarget::Boundary;
                    improved = true;
                }
            }
        }

        // pair absorption: a matched pair (a, pa) plus two boundary-matched
        // nodes (b, c) can be rewired into two pairs.  This is the move that
        // repairs the classic greedy trap where a single cheap pair strands
        // its neighbours on the boundary.
        let boundary_nodes: Vec<usize> = (0..n)
            .filter(|&i| assignment[i] == MatchTarget::Boundary)
            .collect();
        for a in 0..n {
            let pa = match assignment[a] {
                MatchTarget::Node(pa) if a < pa => pa,
                _ => continue,
            };
            let current_pair = problem.pair_cost(a, pa);
            let mut best: Option<(f64, usize, usize, bool)> = None;
            for (bi, &b) in boundary_nodes.iter().enumerate() {
                if assignment[b] != MatchTarget::Boundary {
                    continue;
                }
                for &c in &boundary_nodes[bi + 1..] {
                    if assignment[c] != MatchTarget::Boundary {
                        continue;
                    }
                    let current =
                        current_pair + problem.boundary_cost(b) + problem.boundary_cost(c);
                    let opt1 = problem.pair_cost(a, b) + problem.pair_cost(pa, c);
                    let opt2 = problem.pair_cost(a, c) + problem.pair_cost(pa, b);
                    let (cand, swapped) = if opt1 <= opt2 {
                        (opt1, false)
                    } else {
                        (opt2, true)
                    };
                    if cand + eps < current && best.is_none_or(|(bc, ..)| cand < bc) {
                        best = Some((cand, b, c, swapped));
                    }
                }
            }
            if let Some((_, b, c, swapped)) = best {
                let (first, second) = if swapped { (c, b) } else { (b, c) };
                assignment[a] = MatchTarget::Node(first);
                assignment[first] = MatchTarget::Node(a);
                assignment[pa] = MatchTarget::Node(second);
                assignment[second] = MatchTarget::Node(pa);
                improved = true;
            }
        }
        improved
    }
}

impl Matcher for RefinedGreedyMatcher {
    fn solve(&self, problem: &MatchingProblem) -> Matching {
        let initial = GreedyMatcher::new().solve(problem);
        let mut assignment: Vec<MatchTarget> = initial.iter().map(|(_, t)| t).collect();
        for _ in 0..self.max_rounds {
            if !Self::improve_once(problem, &mut assignment) {
                break;
            }
        }
        Matching::new(assignment)
    }

    fn name(&self) -> &'static str {
        "greedy+2opt"
    }
}

/// Selects the exact matcher for small instances and the refined greedy
/// matcher for large ones.
#[derive(Debug, Clone, Copy)]
pub struct AutoMatcher {
    /// Instances with at most this many nodes are solved exactly.
    pub exact_threshold: usize,
    /// The refined matcher used above the threshold.
    pub refined: RefinedGreedyMatcher,
}

impl Default for AutoMatcher {
    fn default() -> Self {
        Self {
            exact_threshold: 16,
            refined: RefinedGreedyMatcher::default(),
        }
    }
}

impl AutoMatcher {
    /// Creates an automatic matcher with an explicit exact-solver threshold.
    pub fn with_exact_threshold(exact_threshold: usize) -> Self {
        Self {
            exact_threshold,
            ..Self::default()
        }
    }
}

impl Matcher for AutoMatcher {
    fn solve(&self, problem: &MatchingProblem) -> Matching {
        if problem.num_nodes() <= self.exact_threshold {
            crate::ExactMatcher::with_max_nodes(self.exact_threshold.max(1)).solve(problem)
        } else {
            self.refined.solve(problem)
        }
    }

    fn name(&self) -> &'static str {
        "auto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactMatcher;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn refined_repairs_the_greedy_trap() {
        let mut p = MatchingProblem::new(4);
        p.set_pair_cost(1, 2, 1.0);
        p.set_pair_cost(0, 1, 2.0);
        p.set_pair_cost(2, 3, 2.0);
        p.set_pair_cost(0, 3, 50.0);
        p.set_pair_cost(0, 2, 50.0);
        p.set_pair_cost(1, 3, 50.0);
        for i in 0..4 {
            p.set_boundary_cost(i, 10.0);
        }
        let refined = RefinedGreedyMatcher::default().solve(&p);
        let exact = ExactMatcher::default().solve(&p);
        assert!((refined.total_cost(&p) - exact.total_cost(&p)).abs() < 1e-9);
    }

    #[test]
    fn refined_never_worse_than_greedy() {
        let p = MatchingProblem::from_fn(
            9,
            |i, j| ((i * 7 + j * 13) % 11) as f64 + 1.0,
            |i| ((i * 5) % 7) as f64 + 1.0,
        );
        let g = GreedyMatcher::new().solve(&p).total_cost(&p);
        let r = RefinedGreedyMatcher::default().solve(&p).total_cost(&p);
        assert!(r <= g + 1e-12);
    }

    #[test]
    fn auto_matcher_uses_exact_below_threshold() {
        let p = MatchingProblem::from_fn(6, |i, j| (i + j) as f64, |_| 3.0);
        let auto = AutoMatcher::default().solve(&p);
        let exact = ExactMatcher::default().solve(&p);
        assert!((auto.total_cost(&p) - exact.total_cost(&p)).abs() < 1e-12);
    }

    #[test]
    fn auto_matcher_handles_large_instances() {
        let n = 60;
        let p = MatchingProblem::from_fn(
            n,
            |i, j| ((i as f64 - j as f64).abs()).sqrt() + 0.1,
            |i| 2.0 + (i % 5) as f64,
        );
        let m = AutoMatcher::default().solve(&p);
        assert!(m.is_complete());
        assert!(m.total_cost(&p).is_finite());
    }

    #[test]
    fn zero_round_refinement_equals_greedy() {
        let p = MatchingProblem::from_fn(7, |i, j| ((i * j) % 5) as f64 + 1.0, |_| 2.0);
        let g = GreedyMatcher::new().solve(&p);
        let r = RefinedGreedyMatcher::with_max_rounds(0).solve(&p);
        assert_eq!(g.total_cost(&p), r.total_cost(&p));
    }

    /// Random geometric instances: nodes on a line, boundary at both ends.
    fn line_instance(positions: &[f64], span: f64) -> MatchingProblem {
        MatchingProblem::from_fn(
            positions.len(),
            |i, j| (positions[i] - positions[j]).abs(),
            |i| positions[i].min(span - positions[i]).max(0.0),
        )
    }

    // Seeded-RNG property tests (128 random cases each, mirroring the
    // proptest suite this replaced — the offline build cannot fetch proptest).
    const PROPERTY_CASES: usize = 128;

    fn random_positions(
        rng: &mut ChaCha8Rng,
        len_range: std::ops::Range<usize>,
        span: f64,
    ) -> Vec<f64> {
        let len = rng.gen_range(len_range);
        (0..len).map(|_| rng.gen_range(0.0..span)).collect()
    }

    /// The refined greedy matcher attains the exact optimum on random
    /// geometric (line) instances of up to 4 nodes and is otherwise
    /// bracketed between the exact optimum and the plain greedy cost.
    #[test]
    fn refined_is_bracketed_on_line_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x51);
        for _ in 0..PROPERTY_CASES {
            let positions = random_positions(&mut rng, 1..10, 100.0);
            let p = line_instance(&positions, 100.0);
            let exact = ExactMatcher::default().solve(&p).total_cost(&p);
            let greedy = GreedyMatcher::new().solve(&p).total_cost(&p);
            let refined = RefinedGreedyMatcher::default().solve(&p).total_cost(&p);
            assert!(
                refined >= exact - 1e-9,
                "refined {refined} below exact {exact}"
            );
            assert!(
                refined <= greedy + 1e-9,
                "refined {refined} above greedy {greedy}"
            );
            if positions.len() <= 4 {
                assert!(
                    (refined - exact).abs() < 1e-6,
                    "refined {refined} vs exact {exact} on {positions:?}"
                );
            }
        }
    }

    /// On arbitrary random cost matrices the refined matcher is always
    /// feasible, never better than the exact optimum (sanity) and never
    /// worse than the greedy initialisation.
    #[test]
    fn refined_is_feasible_and_bracketed_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x52);
        for _ in 0..PROPERTY_CASES {
            let n = 6;
            let seed_costs: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.1..10.0)).collect();
            let boundary: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
            let p = MatchingProblem::from_fn(
                n,
                |i, j| seed_costs[i * n + j].min(seed_costs[j * n + i]),
                |i| boundary[i],
            );
            let exact = ExactMatcher::default().solve(&p).total_cost(&p);
            let greedy = GreedyMatcher::new().solve(&p).total_cost(&p);
            let refined_m = RefinedGreedyMatcher::default().solve(&p);
            assert!(refined_m.is_complete());
            let refined = refined_m.total_cost(&p);
            assert!(refined >= exact - 1e-9);
            assert!(refined <= greedy + 1e-9);
        }
    }

    /// The automatic matcher is exactly optimal whenever the instance
    /// fits under its exact-solver threshold.
    #[test]
    fn auto_is_optimal_below_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x53);
        for _ in 0..PROPERTY_CASES {
            let positions = random_positions(&mut rng, 1..13, 100.0);
            let p = line_instance(&positions, 100.0);
            let exact = ExactMatcher::default().solve(&p).total_cost(&p);
            let auto = AutoMatcher::default().solve(&p).total_cost(&p);
            assert!(
                (auto - exact).abs() < 1e-9,
                "auto {auto} vs exact {exact} on {positions:?}"
            );
        }
    }

    /// The greedy matcher is always feasible and never better than exact.
    #[test]
    fn greedy_is_feasible_and_bounded_below_by_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x54);
        for _ in 0..PROPERTY_CASES {
            let positions = random_positions(&mut rng, 1..12, 50.0);
            let p = line_instance(&positions, 50.0);
            let exact = ExactMatcher::default().solve(&p).total_cost(&p);
            let greedy_m = GreedyMatcher::new().solve(&p);
            assert!(greedy_m.is_complete());
            assert!(greedy_m.total_cost(&p) >= exact - 1e-9);
        }
    }
}
