//! Exact minimum-weight matching by bitmask dynamic programming.

use crate::{MatchTarget, Matcher, Matching, MatchingProblem};

/// Exact minimum-weight matcher.
///
/// The matcher enumerates assignments with a bitmask dynamic program over
/// subsets of nodes: `dp[mask]` is the minimum cost of matching the nodes in
/// `mask` among themselves and the boundary.  Complexity is `O(2ⁿ · n)`,
/// practical up to `n ≈ 22`.  It plays the role Kolmogorov's Blossom V plays
/// in the paper for small decoding instances, and it is the oracle the
/// approximate matchers are property-tested against.
#[derive(Debug, Clone, Copy)]
pub struct ExactMatcher {
    max_nodes: usize,
}

impl ExactMatcher {
    /// Default node-count limit beyond which [`ExactMatcher::solve`] panics.
    pub const DEFAULT_MAX_NODES: usize = 22;

    /// Creates an exact matcher that accepts at most `max_nodes` nodes.
    pub fn with_max_nodes(max_nodes: usize) -> Self {
        Self { max_nodes }
    }

    /// The configured node-count limit.
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Returns the optimal cost without materialising the matching.
    pub fn optimal_cost(&self, problem: &MatchingProblem) -> f64 {
        let (cost, _) = self.dp(problem);
        cost
    }

    fn dp(&self, problem: &MatchingProblem) -> (f64, Vec<MatchTarget>) {
        let n = problem.num_nodes();
        assert!(
            n <= self.max_nodes,
            "exact matcher limited to {} nodes, got {n}",
            self.max_nodes
        );
        if n == 0 {
            return (0.0, Vec::new());
        }
        let full: usize = (1usize << n) - 1;
        // dp[mask] = min cost to match all nodes present in `mask`.
        let mut dp = vec![f64::INFINITY; full + 1];
        // choice[mask] = the partner chosen for the lowest set bit of `mask`.
        let mut choice: Vec<Option<MatchTarget>> = vec![None; full + 1];
        dp[0] = 0.0;
        for mask in 1..=full {
            let i = mask.trailing_zeros() as usize;
            let rest = mask & !(1 << i);
            // Option 1: match node i to the boundary.
            let boundary_cost = problem.boundary_cost(i);
            if boundary_cost.is_finite() && dp[rest].is_finite() {
                let c = dp[rest] + boundary_cost;
                if c < dp[mask] {
                    dp[mask] = c;
                    choice[mask] = Some(MatchTarget::Boundary);
                }
            }
            // Option 2: match node i with another node j in the mask.
            let mut remaining = rest;
            while remaining != 0 {
                let j = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let pair_cost = problem.pair_cost(i, j);
                let sub = rest & !(1 << j);
                if pair_cost.is_finite() && dp[sub].is_finite() {
                    let c = dp[sub] + pair_cost;
                    if c < dp[mask] {
                        dp[mask] = c;
                        choice[mask] = Some(MatchTarget::Node(j));
                    }
                }
            }
        }
        assert!(
            dp[full].is_finite(),
            "matching problem is infeasible: some node has no finite-cost partner"
        );

        // Reconstruct the assignment.
        let mut assignment = vec![MatchTarget::Boundary; n];
        let mut mask = full;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            match choice[mask].expect("finite dp entry must have a recorded choice") {
                MatchTarget::Boundary => {
                    assignment[i] = MatchTarget::Boundary;
                    mask &= !(1 << i);
                }
                MatchTarget::Node(j) => {
                    assignment[i] = MatchTarget::Node(j);
                    assignment[j] = MatchTarget::Node(i);
                    mask &= !(1 << i);
                    mask &= !(1 << j);
                }
            }
        }
        (dp[full], assignment)
    }
}

impl Default for ExactMatcher {
    fn default() -> Self {
        Self::with_max_nodes(Self::DEFAULT_MAX_NODES)
    }
}

impl Matcher for ExactMatcher {
    /// Solves the problem exactly.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than [`ExactMatcher::max_nodes`] nodes
    /// or if no finite-cost complete matching exists.
    fn solve(&self, problem: &MatchingProblem) -> Matching {
        let (_, assignment) = self.dp(problem);
        Matching::new(assignment)
    }

    fn name(&self) -> &'static str {
        "exact-dp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_problem(n: usize, boundary: f64) -> MatchingProblem {
        MatchingProblem::from_fn(n, |i, j| (i.abs_diff(j)) as f64, |_| boundary)
    }

    #[test]
    fn empty_problem_has_empty_matching() {
        let p = MatchingProblem::new(0);
        let m = ExactMatcher::default().solve(&p);
        assert!(m.is_empty());
        assert_eq!(m.total_cost(&p), 0.0);
    }

    #[test]
    fn single_node_goes_to_boundary() {
        let mut p = MatchingProblem::new(1);
        p.set_boundary_cost(0, 2.0);
        let m = ExactMatcher::default().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Boundary);
        assert_eq!(m.total_cost(&p), 2.0);
    }

    #[test]
    fn prefers_cheap_pairing_over_boundary() {
        let mut p = MatchingProblem::new(2);
        p.set_pair_cost(0, 1, 1.0);
        p.set_boundary_cost(0, 10.0);
        p.set_boundary_cost(1, 10.0);
        let m = ExactMatcher::default().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Node(1));
        assert_eq!(m.total_cost(&p), 1.0);
    }

    #[test]
    fn prefers_boundary_when_pairing_is_expensive() {
        let mut p = MatchingProblem::new(2);
        p.set_pair_cost(0, 1, 10.0);
        p.set_boundary_cost(0, 1.0);
        p.set_boundary_cost(1, 1.0);
        let m = ExactMatcher::default().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Boundary);
        assert_eq!(m.target(1), MatchTarget::Boundary);
        assert_eq!(m.total_cost(&p), 2.0);
    }

    #[test]
    fn mixed_assignment_three_nodes() {
        // nodes 0,1 close together; node 2 near the boundary
        let mut p = MatchingProblem::new(3);
        p.set_pair_cost(0, 1, 1.0);
        p.set_pair_cost(0, 2, 5.0);
        p.set_pair_cost(1, 2, 5.0);
        p.set_boundary_cost(0, 4.0);
        p.set_boundary_cost(1, 4.0);
        p.set_boundary_cost(2, 1.5);
        let m = ExactMatcher::default().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Node(1));
        assert_eq!(m.target(2), MatchTarget::Boundary);
        assert!((m.total_cost(&p) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_trap_is_solved_optimally() {
        // Greedy would match 1–2 (cost 1) and pay 10 + 10 for the rest;
        // optimal is 0–1 and 2–3 for 2 + 2 = 4.
        let mut p = MatchingProblem::new(4);
        p.set_pair_cost(1, 2, 1.0);
        p.set_pair_cost(0, 1, 2.0);
        p.set_pair_cost(2, 3, 2.0);
        p.set_pair_cost(0, 3, 50.0);
        p.set_pair_cost(0, 2, 50.0);
        p.set_pair_cost(1, 3, 50.0);
        for i in 0..4 {
            p.set_boundary_cost(i, 10.0);
        }
        let m = ExactMatcher::default().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Node(1));
        assert_eq!(m.target(2), MatchTarget::Node(3));
        assert!((m.total_cost(&p) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn odd_number_of_nodes_uses_boundary_at_least_once() {
        let p = uniform_problem(5, 0.7);
        let m = ExactMatcher::default().solve(&p);
        assert!(m.is_complete());
        assert!(m.boundary_nodes().count() % 2 == 1);
    }

    #[test]
    fn cost_matches_optimal_cost_helper() {
        let p = uniform_problem(8, 1.3);
        let matcher = ExactMatcher::default();
        let m = matcher.solve(&p);
        assert!((m.total_cost(&p) - matcher.optimal_cost(&p)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_problem_panics() {
        // single node with no boundary option
        let p = MatchingProblem::new(1);
        let _ = ExactMatcher::default().solve(&p);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_many_nodes_panics() {
        let p = MatchingProblem::new(5);
        let _ = ExactMatcher::with_max_nodes(4).solve(&p);
    }
}
