//! The sparse blossom backend: exact MWPM without a dense cost matrix.
//!
//! [`ExactBackend`](crate::ExactBackend) pays `O(k · E log V)` for `k`
//! full-graph Dijkstras before it even starts matching, and its per-cluster
//! bitmask DP is exponential in the cluster size.  This module replaces both
//! halves with the PyMatching-v2-inspired recipe:
//!
//! 1. **Zero-weight pre-pairing** — edges of weight 0 (a Q3DE anomaly at
//!    `p = 0.5` re-weights its whole region to exactly zero) are contracted
//!    with a union-find pass, and defects sharing a zero-weight component are
//!    paired for free.  This is exact: pairing two defects at cost 0 can
//!    never be beaten, and only the per-component defect *parity* matters for
//!    the rest of the problem.  It is also what keeps burst windows fast —
//!    the dense oracle runs a full Dijkstra per anomaly defect, this backend
//!    runs none.
//! 2. **Truncated Dijkstra balls** — each remaining defect grows a ball only
//!    until the heap front exceeds its cheapest boundary attachment `bnd_i`
//!    (the boundary plays the role of a virtual node).  Every vertex with
//!    `dist ≤ bnd_i` is settled, which is exactly the radius needed below.
//! 3. **Meet scan** — for every edge whose endpoints are claimed by two
//!    different balls, `d_i(u) + w + d_j(v)` is a candidate pair cost.  For
//!    any pair with true distance `< bnd_i + bnd_j` the shortest path has a
//!    settled meet edge, so the candidate minimum *is* the exact distance
//!    (take the last path vertex with prefix `≤ bnd_i`; the suffix of its
//!    successor is then `< bnd_j`).
//! 4. **Per-cluster blossom** — clusters are split with the same strict
//!    `pair < bnd_i + bnd_j` criterion as the dense backends, then each
//!    cluster is solved exactly by a Galil-style `O(c³)` primal–dual blossom
//!    matcher ([`BlossomMatcher`]) over the defects plus one boundary slot
//!    per defect.  Pairs whose cost equals the boundary surrogate
//!    `bnd_i + bnd_j` are rewritten into two boundary matches of identical
//!    total weight.
//!
//! The result is differentially pinned against the dense oracle by *total
//! matching weight equality* (`tests/matcher_differential.rs`): both are
//! exact, so they may disagree on tie composition but never on weight.

use crate::sparse::{DefectBoundaryMatch, DefectMatching, DefectPair, SparseEdgeId, SyndromeGraph};
use crate::{DecoderBackend, MatchTarget, Matcher, Matching, MatchingProblem};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Edges at or below this weight are treated as free by the pre-pairing
/// contraction.  `p = 0.5` produces a weight of exactly `0.0`; the epsilon
/// only guards against `-0.0` and round-off from re-weighting arithmetic.
const ZERO_EPS: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Dense maximum-weight perfect matching (primal–dual with blossoms, O(n³)).
// ---------------------------------------------------------------------------

/// A representative edge between two contracted nodes: the concrete vertex
/// pair `(u, v)` realising it and that edge's weight.  `u == 0` marks an
/// unset slot (ids are 1-based; 0 is the null sentinel).
#[derive(Debug, Clone, Copy, Default)]
struct Rep {
    u: usize,
    v: usize,
    w: f64,
}

/// Reusable dense *maximum-weight perfect matching* solver over a complete
/// graph, using the classic `O(n³)` primal–dual scheme: alternating trees
/// grown over tight edges, dual variables on vertices and blossoms, and
/// per-node slack caching.  Ids are 1-based: `1..=n` are vertices,
/// `n+1..=2n` are blossom slots, 0 is "none".
///
/// All buffers are grow-only so a long-lived solver allocates only when a
/// larger instance arrives (the [`crate::DecoderBackend`] scratch contract).
#[derive(Debug, Clone, Default)]
struct DenseBlossom {
    n: usize,
    n_ids: usize,
    n_x: usize,
    /// `n_ids × n_ids` representative-edge matrix.
    g: Vec<Rep>,
    /// Dual variables: vertex labels for ids `≤ n`, blossom duals above.
    lab: Vec<f64>,
    /// Vertex-level partner (0 = unmatched); for a blossom id, the partner
    /// vertex of its base.
    matched: Vec<usize>,
    /// Best outer vertex with a non-tight edge towards this node.
    slack: Vec<usize>,
    /// Outermost node containing each id (`st[x] == x` iff outermost).
    st: Vec<usize>,
    /// For a node in a tree: the vertex in its parent node on the tree edge.
    pa: Vec<usize>,
    /// `flower_from[b][v] = child of b containing vertex v` (0 if absent);
    /// row-major `n_ids × (n + 1)`.
    flower_from: Vec<usize>,
    /// Tree state per node: 0 = outer, 1 = inner, -1 = free.
    state: Vec<i8>,
    /// Timestamps for lowest-common-ancestor walks.
    vis: Vec<u32>,
    vis_epoch: u32,
    /// Blossom cycles, base first.
    flower: Vec<Vec<usize>>,
    q: VecDeque<usize>,
    eps: f64,
}

impl DenseBlossom {
    #[inline]
    fn gi(&self, x: usize, y: usize) -> usize {
        x * self.n_ids + y
    }

    #[inline]
    fn ffi(&self, b: usize, v: usize) -> usize {
        b * (self.n + 1) + v
    }

    #[inline]
    fn e_delta(&self, e: Rep) -> f64 {
        // Doubled-weight convention: slack of edge (u, v) in the dual.
        self.lab[e.u] + self.lab[e.v] - 2.0 * e.w
    }

    fn prepare(&mut self, n: usize) {
        assert!(
            n.is_multiple_of(2),
            "dense blossom needs an even vertex count"
        );
        self.n = n;
        self.n_ids = 2 * n + 1;
        self.n_x = n;
        self.g.clear();
        self.g.resize(self.n_ids * self.n_ids, Rep::default());
        self.lab.clear();
        self.lab.resize(self.n_ids, 0.0);
        self.matched.clear();
        self.matched.resize(self.n_ids, 0);
        self.slack.clear();
        self.slack.resize(self.n_ids, 0);
        self.st.clear();
        self.st.resize(self.n_ids, 0);
        for x in 1..=n {
            self.st[x] = x;
        }
        self.pa.clear();
        self.pa.resize(self.n_ids, 0);
        self.flower_from.clear();
        self.flower_from.resize(self.n_ids * (n + 1), 0);
        for u in 1..=n {
            let slot = self.ffi(u, u);
            self.flower_from[slot] = u;
        }
        self.state.clear();
        self.state.resize(self.n_ids, -1);
        self.vis.clear();
        self.vis.resize(self.n_ids, 0);
        self.vis_epoch = 0;
        if self.flower.len() < self.n_ids {
            self.flower.resize(self.n_ids, Vec::new());
        }
        for f in &mut self.flower {
            f.clear();
        }
        self.q.clear();
    }

    /// Solves maximum-weight perfect matching on the complete graph with
    /// `n` (even) vertices and weights `weight(i, j) ≥ 0` (0-based,
    /// symmetric).  Returns the 0-based partner of every vertex.
    fn solve(&mut self, n: usize, weight: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
        self.prepare(n);
        let mut w_max = 0.0f64;
        for u in 1..=n {
            for v in 1..=n {
                if u != v {
                    let w = weight(u - 1, v - 1);
                    debug_assert!(w >= 0.0, "blossom weights must be non-negative");
                    let slot = self.gi(u, v);
                    self.g[slot] = Rep { u, v, w };
                    w_max = w_max.max(w);
                }
            }
        }
        self.eps = (1.0 + w_max) * 1e-9;
        // Per-vertex dual start: lab[u] = heaviest incident weight.  This is
        // feasible (lab[u] + lab[v] ≥ 2·w(u,v) for every edge) and makes
        // each *mutually heaviest* edge tight, so the greedy pass below can
        // pre-match those pairs without violating complementary slackness.
        // A search phase then only runs per remaining free pair instead of
        // once per vertex pair — on decoder clusters (where most defects
        // are mutually nearest neighbours) this removes almost every phase.
        for u in 1..=n {
            let mut best = 0.0f64;
            for v in 1..=n {
                if v != u {
                    best = best.max(self.g[self.gi(u, v)].w);
                }
            }
            self.lab[u] = best;
        }
        for u in 1..=n {
            if self.matched[u] != 0 {
                continue;
            }
            for v in (u + 1)..=n {
                if self.matched[v] == 0 && self.e_delta(self.g[self.gi(u, v)]) <= self.eps {
                    self.matched[u] = v;
                    self.matched[v] = u;
                    break;
                }
            }
        }
        while (1..=n).any(|u| self.matched[u] == 0) {
            assert!(
                self.matching_phase(),
                "dense blossom: no augmenting path (instance infeasible)"
            );
        }
        let out: Vec<usize> = (1..=n).map(|u| self.matched[u] - 1).collect();
        for (u, &p) in out.iter().enumerate() {
            assert!(out[p] == u, "dense blossom produced a non-involution");
        }
        out
    }

    /// One search phase: grows alternating trees from every unmatched node
    /// until an augmenting path is found.  Returns `false` when every node
    /// is already matched.
    fn matching_phase(&mut self) -> bool {
        for x in 0..=self.n_x {
            self.state[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.matched[x] == 0 {
                self.pa[x] = 0;
                self.state[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        // Safety valve: a phase performs O(n) structural events with a dual
        // update between consecutive ones; anything past this bound is a bug.
        let mut rounds = 60 + 20 * self.n;
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.state[self.st[u]] != 0 {
                    continue;
                }
                for v in 1..=self.n {
                    if v == u || self.st[u] == self.st[v] {
                        continue;
                    }
                    let e = self.g[self.gi(u, v)];
                    if self.e_delta(e) <= self.eps {
                        if self.on_found_edge(e) {
                            return true;
                        }
                    } else {
                        let x = self.st[v];
                        self.update_slack(u, x);
                    }
                }
            }
            // Dual update: the largest step keeping every constraint feasible.
            let mut d = f64::INFINITY;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.state[b] == 1 {
                    d = d.min(self.lab[b] / 2.0);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let sd = self.e_delta(self.g[self.gi(self.slack[x], x)]);
                    match self.state[x] {
                        -1 => d = d.min(sd),
                        0 => d = d.min(sd / 2.0),
                        _ => {}
                    }
                }
            }
            assert!(
                d.is_finite(),
                "dense blossom: unbounded dual (no perfect matching exists)"
            );
            let d = d.max(0.0);
            for u in 1..=self.n {
                match self.state[self.st[u]] {
                    0 => self.lab[u] -= d,
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.state[b] {
                        0 => self.lab[b] += 2.0 * d,
                        1 => self.lab[b] -= 2.0 * d,
                        _ => {}
                    }
                }
            }
            // Newly tight edges: grab free nodes, link outer trees.
            for x in 1..=self.n_x {
                if self.st[x] != x || self.slack[x] == 0 || self.state[x] == 1 {
                    continue;
                }
                let u = self.slack[x];
                if self.st[u] == x {
                    continue;
                }
                let e = self.g[self.gi(u, x)];
                if self.e_delta(e) <= self.eps && self.on_found_edge(e) {
                    return true;
                }
            }
            // Inner blossoms whose dual reached zero dissolve.
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.state[b] == 1 && self.lab[b] <= self.eps {
                    self.expand_blossom(b);
                }
            }
            rounds -= 1;
            assert!(rounds > 0, "dense blossom: phase failed to converge");
        }
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        let cur = self.slack[x];
        if cur == 0 || self.e_delta(self.g[self.gi(u, x)]) < self.e_delta(self.g[self.gi(cur, x)]) {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.st[u] != x && self.state[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    /// Queues every vertex contained in node `x` for tight-edge scanning.
    fn q_push(&mut self, x: usize) {
        let mut stack = vec![x];
        while let Some(x) = stack.pop() {
            if x <= self.n {
                self.q.push_back(x);
            } else {
                stack.extend_from_slice(&self.flower[x]);
            }
        }
    }

    /// Points every id inside node `x` at outermost container `b`.
    fn set_st(&mut self, x: usize, b: usize) {
        let mut stack = vec![x];
        while let Some(x) = stack.pop() {
            self.st[x] = b;
            if x > self.n {
                stack.extend_from_slice(&self.flower[x]);
            }
        }
    }

    /// Position of child `xr` in blossom `b`'s cycle, after re-orienting the
    /// cycle so the base→`xr` path has even length.
    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b]
            .iter()
            .position(|&x| x == xr)
            .expect("blossom child not on its cycle");
        if pr % 2 == 1 {
            let len = self.flower[b].len();
            self.flower[b][1..].reverse();
            len - pr
        } else {
            pr
        }
    }

    /// Matches node `u` outward along the concrete edge `e` (`e.u` inside
    /// `u`, `e.v` inside the node being matched towards), recursively
    /// re-basing blossoms so their internal matching aligns.
    ///
    /// The edge is threaded through the recursion rather than re-read from
    /// `g[child][target]` at each level: with float duals, two
    /// tie-equivalent representative edges can differ by round-off between
    /// the row and column rebuilds of `g`, and re-reading would let the two
    /// sides of an augmentation match along *different* concrete edges (a
    /// matching asymmetry).  Every level must use the one edge the
    /// augmentation actually crossed.
    fn set_match(&mut self, u: usize, e: Rep) {
        self.matched[u] = e.v;
        if u > self.n {
            let xr = self.flower_from[self.ffi(u, e.u)];
            let pr = self.get_pr(u, xr);
            let fl = std::mem::take(&mut self.flower[u]);
            for i in 0..pr {
                let cycle_edge = self.g[self.gi(fl[i], fl[i ^ 1])];
                self.set_match(fl[i], cycle_edge);
            }
            self.set_match(xr, e);
            self.flower[u] = fl;
            self.flower[u].rotate_left(pr);
        }
    }

    /// Flips the matching along the tree path from node `u` up to its root,
    /// starting with the new matched edge `u`–`v`.
    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.matched[u]];
            self.set_match(u, self.g[self.gi(u, v)]);
            if xnv == 0 {
                return;
            }
            let p = self.st[self.pa[xnv]];
            self.set_match(xnv, self.g[self.gi(xnv, p)]);
            u = p;
            v = xnv;
        }
    }

    /// Lowest common ancestor of outer nodes `u` and `v` in the alternating
    /// forest (0 when they lie in different trees).
    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_epoch += 1;
        if self.vis_epoch == u32::MAX {
            self.vis.fill(0);
            self.vis_epoch = 1;
        }
        let t = self.vis_epoch;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.matched[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    /// Handles a tight edge from an outer node: grab a free node into the
    /// tree, or link two outer nodes (augment across trees, blossom within
    /// one).  Returns `true` when the phase augmented.
    fn on_found_edge(&mut self, e: Rep) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.state[v] == -1 {
            self.pa[v] = e.u;
            self.state[v] = 1;
            let nu = self.st[self.matched[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.state[nu] = 0;
            self.q_push(nu);
        } else if self.state[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// Contracts the odd cycle `lca → … → u → v → … → lca` into a new
    /// outer blossom node.
    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        assert!(b < self.n_ids, "dense blossom: id space exhausted");
        self.lab[b] = 0.0;
        self.state[b] = 0;
        self.matched[b] = self.matched[lca];
        self.pa[b] = self.pa[lca];
        let mut fl = std::mem::take(&mut self.flower[b]);
        fl.clear();
        fl.push(lca);
        let mut x = u;
        while x != lca {
            fl.push(x);
            let y = self.st[self.matched[x]];
            fl.push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        fl[1..].reverse();
        let mut x = v;
        while x != lca {
            fl.push(x);
            let y = self.st[self.matched[x]];
            fl.push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b] = fl;
        self.set_st(b, b);
        for x in 0..self.n_ids {
            let slot = self.gi(b, x);
            self.g[slot] = Rep::default();
        }
        for v2 in 1..=self.n {
            let slot = self.ffi(b, v2);
            self.flower_from[slot] = 0;
        }
        let members = self.flower[b].clone();
        for &xs in &members {
            for x in 1..=self.n_x {
                if x == b {
                    continue;
                }
                let cand = self.g[self.gi(xs, x)];
                let cur = self.g[self.gi(b, x)];
                if cand.u != 0 && (cur.u == 0 || self.e_delta(cand) < self.e_delta(cur)) {
                    let fwd = self.gi(b, x);
                    self.g[fwd] = cand;
                    let mirror = self.g[self.gi(x, xs)];
                    let back = self.gi(x, b);
                    self.g[back] = mirror;
                }
            }
            for v2 in 1..=self.n {
                if self.flower_from[self.ffi(xs, v2)] != 0 {
                    let slot = self.ffi(b, v2);
                    self.flower_from[slot] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    /// Dissolves an inner blossom whose dual reached zero: the even path
    /// from the tree-entry child to the base stays in the tree, the rest of
    /// the cycle becomes free.
    fn expand_blossom(&mut self, b: usize) {
        let members = self.flower[b].clone();
        for &s in &members {
            self.set_st(s, s);
        }
        let entry_vertex = self.g[self.gi(b, self.pa[b])].u;
        let xr = self.flower_from[self.ffi(b, entry_vertex)];
        let pr = self.get_pr(b, xr);
        let fl = std::mem::take(&mut self.flower[b]);
        for &s in &fl {
            self.slack[s] = 0;
        }
        // Tree part: positions pr, pr-2, …, 0 are inner; odd ones are outer.
        self.pa[fl[pr]] = self.pa[b];
        self.state[fl[pr]] = 1;
        let mut i = pr;
        while i >= 2 {
            let inner = fl[i - 2];
            let outer = fl[i - 1];
            self.state[outer] = 0;
            self.q_push(outer);
            self.state[inner] = 1;
            self.pa[inner] = self.g[self.gi(fl[i - 1], inner)].u;
            i -= 2;
        }
        // The rest of the cycle is matched internally and leaves the tree.
        for &s in &fl[pr + 1..] {
            self.state[s] = -1;
            self.set_slack(s);
        }
        self.st[b] = 0;
    }
}

// ---------------------------------------------------------------------------
// MatchingProblem reduction.
// ---------------------------------------------------------------------------

/// Solves a [`MatchingProblem`] exactly via the dense blossom core.
///
/// The boundary is modelled with a pool of interchangeable *slots*: slots
/// pair with each other for free and node→slot costs the node's boundary
/// cost, so any number of nodes may take the boundary while the instance
/// stays a perfect matching.  Slots are identical, so the pool starts small
/// and only grows on demand: if the optimum leaves at least one spare
/// slot–slot pair, any improving alternating exchange against the
/// unlimited-slot optimum would change the boundary-match count by −2, 0,
/// or +2 — and +2 is absorbed by the spare pair — so the small instance is
/// provably optimal for the full problem.  A solution that exhausts the
/// pool instead retries with twice the slots (worst case one slot per
/// node, the classic `2n` reduction).  Infinite costs become a finite
/// big-M larger than any feasible matching, and minimisation becomes
/// maximisation by `w = C − cost`.
fn solve_problem(problem: &MatchingProblem, dense: &mut DenseBlossom) -> Matching {
    let n = problem.num_nodes();
    if n == 0 {
        return Matching::new(Vec::new());
    }
    let mut max_finite = 0.0f64;
    for i in 0..n {
        let b = problem.boundary_cost(i);
        if b.is_finite() {
            max_finite = max_finite.max(b);
        }
        for j in (i + 1)..n {
            let c = problem.pair_cost(i, j);
            if c.is_finite() {
                max_finite = max_finite.max(c);
            }
        }
    }
    // One big-M edge outweighs any matching made of finite costs alone.
    let big = (max_finite + 1.0) * (n as f64 + 1.0);
    let ceil = big + 1.0;
    let mut slots = n.min(8.max(n / 8));
    if (n + slots) % 2 == 1 {
        slots += 1;
    }
    let mut doubled = false;
    loop {
        let partner = dense.solve(n + slots, &|a, b| {
            let cost = if a < n && b < n {
                problem.pair_cost(a, b)
            } else if a < n {
                problem.boundary_cost(a)
            } else if b < n {
                problem.boundary_cost(b)
            } else {
                0.0
            };
            ceil - if cost.is_finite() { cost } else { big }
        });
        let used = (0..n).filter(|&i| partner[i] >= n).count();
        if slots < n && slots - used < 2 {
            slots = (slots * 2).min(n);
            if (n + slots) % 2 == 1 {
                slots += 1;
            }
            doubled = true;
            continue;
        }
        // Retry budget exhausted at the full `2n`-reduction cap with no
        // spare slot pair left: correctness no longer rests on the
        // spare-pair exchange argument.  That is expected exactly when the
        // optimum sends (almost) every node to the boundary, but a future
        // refactor that under-grows the pool would surface here too — so
        // say it out loud rather than silently accepting.
        if doubled && slots - used < 2 {
            crate::log!(
                "blossom boundary-slot pool exhausted at the {n}-node cap \
                 ({used}/{slots} slots used): accepting the full-reduction \
                 optimum"
            );
        }
        let mut assignment = vec![MatchTarget::Boundary; n];
        let mut infeasible = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            if partner[i] < n {
                *slot = MatchTarget::Node(partner[i]);
                infeasible |= !problem.pair_cost(i, partner[i]).is_finite();
            } else {
                infeasible |= !problem.boundary_cost(i).is_finite();
            }
        }
        if infeasible {
            crate::log!(
                "blossom big-M fallback realized: some node is matched \
                 through an infinite-cost edge — the instance is infeasible"
            );
        }
        return Matching::new(assignment);
    }
}

/// Exact minimum-weight matching with boundary via the `O(n³)` primal–dual
/// blossom algorithm — polynomial where [`ExactMatcher`](crate::ExactMatcher)
/// is exponential, so it has no node-count ceiling.
///
/// Costs may be infinite (disallowed); they are replaced internally by a
/// finite big-M, so on an infeasible instance the result simply contains a
/// big-M assignment instead of failing.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlossomMatcher;

impl Matcher for BlossomMatcher {
    fn solve(&self, problem: &MatchingProblem) -> Matching {
        solve_problem(problem, &mut DenseBlossom::default())
    }

    fn name(&self) -> &'static str {
        "blossom"
    }
}

// ---------------------------------------------------------------------------
// The sparse decoder backend.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    cost: f64,
    vertex: usize,
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The sparse exact MWPM backend (see the module docs for the pipeline):
/// zero-weight pre-pairing, truncated Dijkstra balls, meet-scan pair costs,
/// and a per-cluster `O(c³)` blossom solve.  Select it with
/// [`crate::MatcherKind::Blossom`].
///
/// Exactness contract: the total matching weight equals the dense exact
/// oracle's on every instance whose clusters the oracle solves exactly;
/// unlike the oracle there is no cluster-size cliff — large burst clusters
/// stay polynomial instead of falling back to a greedy matcher.
#[derive(Debug, Clone, Default)]
pub struct BlossomBackend {
    dense: DenseBlossom,
    // Truncated-Dijkstra scratch (epoch-stamped, reset-free).
    dist: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Entry>,
    /// Per-vertex `(ball, dist)` claims from this decode's ball growth.
    claims: Vec<Vec<(u32, f64)>>,
    /// Vertices holding claims, for cheap clearing next call.
    touched: Vec<u32>,
    /// Union-find over vertices for the zero-weight contraction.
    zero_parent: Vec<u32>,
    /// Per-vertex hop ring for the ring fast path (stamped like `dist`).
    ring: Vec<u32>,
    /// 0-1 BFS deque for the ring fast path.
    deque: std::collections::VecDeque<(u32, u32)>,
    /// `ring_cost[k]` = cost of `k` unit-weight hops, accumulated additively
    /// so it reproduces Dijkstra's floating-point sums bit for bit.
    ring_cost: Vec<f64>,
}

impl BlossomBackend {
    /// Creates the backend with cold scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn dist_get(&self, v: usize) -> f64 {
        if self.stamp[v] == self.epoch {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn dist_set(&mut self, v: usize, d: f64) {
        self.stamp[v] = self.epoch;
        self.dist[v] = d;
    }

    fn begin_search(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    fn zero_find(&mut self, mut x: u32) -> u32 {
        while self.zero_parent[x as usize] != x {
            let g = self.zero_parent[self.zero_parent[x as usize] as usize];
            self.zero_parent[x as usize] = g;
            x = g;
        }
        x
    }

    /// Grows defect ball `ball` from `start` until the heap front exceeds
    /// the best boundary attachment found so far, claiming every settled
    /// vertex.  Boundary ties break towards the smaller edge id, exactly as
    /// in the dense backends.
    fn grow_ball(
        &mut self,
        graph: &SyndromeGraph,
        ball: u32,
        start: usize,
    ) -> Option<(f64, SparseEdgeId)> {
        self.begin_search(graph.num_vertices());
        let mut boundary: Option<(f64, SparseEdgeId)> = None;
        self.dist_set(start, 0.0);
        self.heap.push(Entry {
            cost: 0.0,
            vertex: start,
        });
        while let Some(top) = self.heap.peek() {
            let (cost, vertex) = (top.cost, top.vertex);
            if let Some((bc, _)) = boundary {
                if cost > bc {
                    break;
                }
            }
            self.heap.pop();
            if cost > self.dist_get(vertex) {
                continue;
            }
            // Claims live on zero-component roots only: the root settles at
            // the component's min distance, which is exactly the contracted
            // metric the meet scan prices edges in.
            if self.zero_parent[vertex] as usize == vertex {
                if self.claims[vertex].is_empty() {
                    self.touched.push(vertex as u32);
                }
                self.claims[vertex].push((ball, cost));
            }
            for &eid in graph.incident(vertex) {
                let edge = graph.edge(eid);
                let next_cost = cost + edge.weight;
                match edge.other(vertex) {
                    Some(neighbor) => {
                        if next_cost < self.dist_get(neighbor) {
                            self.dist_set(neighbor, next_cost);
                            self.heap.push(Entry {
                                cost: next_cost,
                                vertex: neighbor,
                            });
                        }
                    }
                    None => {
                        let better = match boundary {
                            None => true,
                            Some((c, e)) => next_cost < c || (next_cost == c && eid < e),
                        };
                        if better {
                            boundary = Some((next_cost, eid));
                        }
                    }
                }
            }
        }
        boundary
    }

    /// [`Self::grow_ball`] specialised to graphs whose non-boundary edges
    /// carry a single weight `w` — plus optionally exact-zero edges, i.e.
    /// the anomaly-blind pass and the Q3DE re-weighted rollback pass.  Every
    /// distance is then `ring_cost[k]` for a hop count `k`, so a 0-1 BFS on
    /// integer rings replaces the heap.  `ring_cost` accumulates `+ w` per
    /// hop, reproducing the heap path's floating-point sums bit for bit.
    fn grow_ball_rings(
        &mut self,
        graph: &SyndromeGraph,
        ball: u32,
        start: usize,
    ) -> Option<(f64, SparseEdgeId)> {
        self.begin_search(graph.num_vertices());
        if self.ring.len() < graph.num_vertices() {
            self.ring.resize(graph.num_vertices(), 0);
        }
        let mut boundary: Option<(f64, SparseEdgeId)> = None;
        let mut deque = std::mem::take(&mut self.deque);
        deque.clear();
        self.stamp[start] = self.epoch;
        self.ring[start] = 0;
        deque.push_back((start as u32, 0));
        while let Some(&(vu, k)) = deque.front() {
            let vertex = vu as usize;
            let cost = self.ring_cost[k as usize];
            if let Some((bc, _)) = boundary {
                if cost > bc {
                    break;
                }
            }
            deque.pop_front();
            if self.ring[vertex] != k {
                continue; // stale entry superseded by a shorter route
            }
            // Root-only claims, as in `grow_ball`: a zero component floods at
            // its entry ring, so the root's ring is the contracted distance.
            if self.zero_parent[vertex] == vu {
                if self.claims[vertex].is_empty() {
                    self.touched.push(vu);
                }
                self.claims[vertex].push((ball, cost));
            }
            for &eid in graph.incident(vertex) {
                let edge = graph.edge(eid);
                match edge.other(vertex) {
                    Some(neighbor) => {
                        let zero = edge.weight <= ZERO_EPS;
                        let nk = k + u32::from(!zero);
                        if self.stamp[neighbor] != self.epoch || nk < self.ring[neighbor] {
                            self.stamp[neighbor] = self.epoch;
                            self.ring[neighbor] = nk;
                            if zero {
                                deque.push_front((neighbor as u32, nk));
                            } else {
                                deque.push_back((neighbor as u32, nk));
                            }
                        }
                    }
                    None => {
                        let next_cost = cost + edge.weight;
                        let better = match boundary {
                            None => true,
                            Some((c, e)) => next_cost < c || (next_cost == c && eid < e),
                        };
                        if better {
                            boundary = Some((next_cost, eid));
                        }
                    }
                }
            }
        }
        self.deque = deque;
        boundary
    }
}

impl DecoderBackend for BlossomBackend {
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        let k = defects.len();
        if k == 0 {
            return DefectMatching::default();
        }
        let n = graph.num_vertices();
        let mut out = DefectMatching::default();
        // 1. Zero-weight contraction + free pre-pairing.
        self.zero_parent.clear();
        self.zero_parent.extend(0..n as u32);
        for edge in graph.edges() {
            if let Some(v) = edge.v {
                if edge.weight <= ZERO_EPS {
                    let (ru, rv) = (self.zero_find(edge.u as u32), self.zero_find(v as u32));
                    if ru != rv {
                        self.zero_parent[ru as usize] = rv;
                    }
                }
            }
        }
        // Flatten the union-find so `zero_parent[v]` *is* the component root
        // for every vertex: the ball growers and the meet scan read it as a
        // plain array on their hot paths.
        for v in 0..n as u32 {
            let root = self.zero_find(v);
            self.zero_parent[v as usize] = root;
        }
        let mut buckets: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &v) in defects.iter().enumerate() {
            assert!(v < n, "defect vertex {v} out of range");
            buckets.entry(self.zero_parent[v]).or_default().push(i);
        }
        let mut residual: Vec<usize> = Vec::new();
        for bucket in buckets.values() {
            for pair in bucket.chunks(2) {
                if let [a, b] = *pair {
                    out.pairs.push(DefectPair { a, b, cost: 0.0 });
                } else {
                    residual.push(pair[0]);
                }
            }
            if bucket.len() >= 2 && bucket.len() % 2 == 0 {
                out.num_clusters += 1;
            }
        }
        residual.sort_unstable();
        let r = residual.len();
        if r == 0 {
            return out;
        }

        // 2. Truncated Dijkstra balls.
        for &v in self.touched.drain(..).as_slice() {
            self.claims[v as usize].clear();
        }
        if self.claims.len() < n {
            self.claims.resize(n, Vec::new());
        }
        // Both decode passes are ring-metric graphs: the anomaly-blind pass
        // has one weight everywhere, the Q3DE re-weighted pass adds
        // exact-zero edges inside detected regions.  Hop rings then replace
        // float distances, and a 0-1 BFS replaces the heap.  (Boundary edge
        // weights stay free — they only terminate growth.)
        let mut ring_w: Option<f64> = None;
        let mut ringable = n < 30_000;
        for edge in graph.edges() {
            if edge.v.is_none() || edge.weight <= ZERO_EPS {
                continue;
            }
            match ring_w {
                None => ring_w = Some(edge.weight),
                Some(w0) if edge.weight == w0 => {}
                Some(_) => {
                    ringable = false;
                    break;
                }
            }
        }
        if ringable {
            let w = ring_w.unwrap_or(0.0);
            self.ring_cost.clear();
            self.ring_cost.reserve(n + 2);
            let mut c = 0.0f64;
            for _ in 0..n + 2 {
                self.ring_cost.push(c);
                c += w;
            }
        }
        let mut bnd: Vec<Option<(f64, SparseEdgeId)>> = Vec::with_capacity(r);
        for (ri, &di) in residual.iter().enumerate() {
            let b = if ringable {
                self.grow_ball_rings(graph, ri as u32, defects[di])
            } else {
                self.grow_ball(graph, ri as u32, defects[di])
            };
            bnd.push(b);
        }
        let bcost = |i: usize| bnd[i].map_or(f64::INFINITY, |(c, _)| c);

        // 3. Meet scan: exact pair distances below the boundary surrogate.
        let mut pair_best = vec![f64::INFINITY; r * r];
        for edge in graph.edges() {
            let Some(v) = edge.v else { continue };
            // Claims sit on component roots, so price each edge between the
            // roots of its endpoints — that is the contracted-graph edge.
            let (cu, cv) = (
                &self.claims[self.zero_parent[edge.u] as usize],
                &self.claims[self.zero_parent[v] as usize],
            );
            if cu.is_empty() || cv.is_empty() {
                continue;
            }
            for &(i, di) in cu {
                let base = di + edge.weight;
                let row = &mut pair_best[i as usize * r..(i as usize + 1) * r];
                for &(j, dj) in cv {
                    if i == j {
                        continue;
                    }
                    let c = base + dj;
                    let slot = &mut row[j as usize];
                    if c < *slot {
                        *slot = c;
                    }
                }
            }
        }
        // The scan fills whichever orientation each edge produced; make
        // the matrix symmetric before clustering reads both triangles.
        for i in 0..r {
            for j in (i + 1)..r {
                let c = pair_best[i * r + j].min(pair_best[j * r + i]);
                pair_best[i * r + j] = c;
                pair_best[j * r + i] = c;
            }
        }

        // 4. Cluster decomposition — same strict criterion as decode_dense.
        let mut parent: Vec<usize> = (0..r).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..r {
            for j in (i + 1)..r {
                if pair_best[i * r + j] < bcost(i) + bcost(j) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..r {
            let root = find(&mut parent, i);
            clusters.entry(root).or_default().push(i);
        }
        out.num_clusters += clusters.len();

        // 5. Exact per-cluster solve, boundary surrogate rewritten back.
        for members in clusters.values() {
            let m = members.len();
            let problem = MatchingProblem::from_fn(
                m,
                |a, b| {
                    let (ga, gb) = (members[a], members[b]);
                    pair_best[ga * r + gb].min(bcost(ga) + bcost(gb))
                },
                |a| bcost(members[a]),
            );
            let matching = solve_problem(&problem, &mut self.dense);
            for (local, target) in matching.iter() {
                let ga = members[local];
                match target {
                    MatchTarget::Node(other_local) => {
                        let gb = members[other_local];
                        if ga >= gb {
                            continue;
                        }
                        let cost = problem.pair_cost(local, other_local);
                        if cost >= bcost(ga) + bcost(gb) {
                            // The pair only tied the boundary surrogate:
                            // realise it as two boundary matches instead.
                            for g in [ga, gb] {
                                let (c, e) =
                                    bnd[g].expect("boundary match requires a reachable boundary");
                                out.boundary.push(DefectBoundaryMatch {
                                    defect: residual[g],
                                    edge: e,
                                    cost: c,
                                });
                            }
                        } else {
                            out.pairs.push(DefectPair {
                                a: residual[ga],
                                b: residual[gb],
                                cost,
                            });
                        }
                    }
                    MatchTarget::Boundary => {
                        let (c, e) = bnd[ga].expect("boundary match requires a reachable boundary");
                        out.boundary.push(DefectBoundaryMatch {
                            defect: residual[ga],
                            edge: e,
                            cost: c,
                        });
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "blossom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExactBackend, ExactMatcher};

    /// Deterministic LCG, same recipe as the union-find test suite.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn pick(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs())),
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn matcher_solves_the_doc_example() {
        let mut problem = MatchingProblem::new(2);
        problem.set_pair_cost(0, 1, 1.0);
        problem.set_boundary_cost(0, 10.0);
        problem.set_boundary_cost(1, 10.0);
        let matching = BlossomMatcher.solve(&problem);
        assert_eq!(matching.target(0), MatchTarget::Node(1));
        assert_close(matching.total_cost(&problem), 1.0, "pair beats boundary");
    }

    #[test]
    fn matcher_sends_everyone_to_a_cheap_boundary() {
        let problem = MatchingProblem::from_fn(4, |_, _| 10.0, |_| 0.5);
        let matching = BlossomMatcher.solve(&problem);
        assert!(matching.is_complete());
        assert_eq!(matching.boundary_nodes().count(), 4);
    }

    /// Regression pin for the boundary-slot pool's parity adjustment: at
    /// n = 11 the initial pool of 8 slots is bumped to 9 to keep n + slots
    /// even, every node wants the boundary so all 9 slots get used, and the
    /// retry-doubling path grows the pool to the 11-slot cap (18 clamped to
    /// n, parity already even at 22 total).  The accepted full-reduction
    /// optimum must still send all 11 nodes to the boundary at exact cost.
    #[test]
    fn all_boundary_odd_instance_survives_the_slot_parity_adjustment() {
        let n = 11;
        let problem = MatchingProblem::from_fn(n, |_, _| 10.0, |_| 1.0);
        let matching = BlossomMatcher.solve(&problem);
        assert!(matching.is_complete());
        assert_eq!(matching.boundary_nodes().count(), n);
        assert_close(matching.total_cost(&problem), n as f64, "all-boundary");
    }

    /// An odd cycle of cheap pair costs forces blossom formation: three
    /// mutually-close nodes, far boundary — one pair plus one boundary.
    #[test]
    fn odd_triangle_forces_a_blossom() {
        let problem = MatchingProblem::from_fn(3, |_, _| 1.0, |_| 4.0);
        let matching = BlossomMatcher.solve(&problem);
        assert!(matching.is_complete());
        let exact = ExactMatcher::default().solve(&problem);
        assert_close(
            matching.total_cost(&problem),
            exact.total_cost(&problem),
            "triangle",
        );
    }

    /// The core differential pin: random tie-heavy instances against the
    /// exponential oracle, asserting optimal-cost equality.
    #[test]
    fn random_problems_match_the_exact_oracle() {
        let mut rng = Lcg(0xB10550);
        for trial in 0..1500 {
            let n = 2 + rng.pick(9);
            let pair: Vec<f64> = (0..n * n).map(|_| rng.pick(9) as f64 * 0.5).collect();
            let bnd: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.pick(8) == 0 && n.is_multiple_of(2) {
                        f64::INFINITY
                    } else {
                        rng.pick(9) as f64 * 0.5
                    }
                })
                .collect();
            let problem = MatchingProblem::from_fn(n, |i, j| pair[i * n + j], |i| bnd[i]);
            let blossom = BlossomMatcher.solve(&problem);
            assert!(blossom.is_complete(), "trial {trial}");
            let exact = ExactMatcher::with_max_nodes(12).solve(&problem);
            assert_close(
                blossom.total_cost(&problem),
                exact.total_cost(&problem),
                &format!("trial {trial} (n = {n})"),
            );
        }
    }

    /// Larger instances where the bitmask oracle cannot follow: sanity-check
    /// optimality against local 2-exchange improvements instead.
    #[test]
    fn large_instances_are_two_opt_stable() {
        let mut rng = Lcg(0x5EED);
        for _ in 0..20 {
            let n = 30 + rng.pick(21);
            let pair: Vec<f64> = (0..n * n).map(|_| rng.pick(17) as f64 * 0.25).collect();
            let bnd: Vec<f64> = (0..n).map(|_| rng.pick(17) as f64 * 0.25).collect();
            let problem = MatchingProblem::from_fn(n, |i, j| pair[i * n + j], |i| bnd[i]);
            let matching = BlossomMatcher.solve(&problem);
            assert!(matching.is_complete());
            let pairs: Vec<(usize, usize)> = matching.pairs().collect();
            let total = matching.total_cost(&problem);
            // No pair swap or pair→boundary rewrite may improve the total.
            for (i, &(a, b)) in pairs.iter().enumerate() {
                assert!(
                    problem.boundary_cost(a) + problem.boundary_cost(b)
                        >= problem.pair_cost(a, b) - 1e-9,
                    "boundary rewrite improves {total}"
                );
                for &(c, d) in &pairs[i + 1..] {
                    let cur = problem.pair_cost(a, b) + problem.pair_cost(c, d);
                    let alt1 = problem.pair_cost(a, c) + problem.pair_cost(b, d);
                    let alt2 = problem.pair_cost(a, d) + problem.pair_cost(b, c);
                    assert!(cur <= alt1.min(alt2) + 1e-9, "2-opt improves {total}");
                }
            }
        }
    }

    #[test]
    fn backend_matches_dense_exact_on_random_lines() {
        let mut rng = Lcg(0xD1FFE);
        for trial in 0..300 {
            let len = 4 + rng.pick(20);
            let weights: Vec<f64> = (0..len).map(|_| rng.pick(7) as f64 * 0.5).collect();
            let graph = SyndromeGraph::line(&weights, 1.0 + rng.pick(5) as f64);
            let mut defects = Vec::new();
            for v in 0..=len {
                if rng.pick(3) == 0 {
                    defects.push(v);
                }
            }
            let blossom = BlossomBackend::new().decode_defects(&graph, &defects);
            let exact = ExactBackend::new(22, 64).decode_defects(&graph, &defects);
            assert!(blossom.is_perfect(defects.len()), "trial {trial}");
            assert_close(
                blossom.total_cost(),
                exact.total_cost(),
                &format!("trial {trial} ({len} edges, {} defects)", defects.len()),
            );
        }
    }

    /// A zero-weight stretch (an anomaly at `p = 0.5`) exercises the
    /// pre-pairing path: many defects inside the free region, exact total
    /// still pinned to the oracle.
    #[test]
    fn zero_weight_regions_pre_pair_and_stay_exact() {
        let mut weights = vec![2.0; 24];
        for w in &mut weights[8..16] {
            *w = 0.0;
        }
        let graph = SyndromeGraph::line(&weights, 6.0);
        let defects = [2usize, 8, 9, 10, 11, 12, 13, 14, 20];
        let blossom = BlossomBackend::new().decode_defects(&graph, &defects);
        let exact = ExactBackend::new(22, 64).decode_defects(&graph, &defects);
        assert!(blossom.is_perfect(defects.len()));
        assert_close(blossom.total_cost(), exact.total_cost(), "zero stretch");
        // The seven free-region defects contribute three zero-cost pairs.
        let zero_pairs = blossom.pairs.iter().filter(|p| p.cost <= ZERO_EPS).count();
        assert!(zero_pairs >= 3, "expected free pre-pairs, got {zero_pairs}");
    }

    /// On a unique-optimum instance the backend reproduces the dense
    /// matching *structurally*, including the boundary-edge tie-break.
    #[test]
    fn single_defect_reproduces_dense_boundary_choice_exactly() {
        let graph = SyndromeGraph::line(&[1.0, 1.0, 1.0, 1.0], 0.5);
        for defect in 0..=4 {
            let blossom = BlossomBackend::new().decode_defects(&graph, &[defect]);
            let exact = ExactBackend::default().decode_defects(&graph, &[defect]);
            assert_eq!(blossom, exact, "defect {defect}");
        }
    }

    #[test]
    fn empty_defect_list_yields_empty_matching() {
        let graph = SyndromeGraph::line(&[1.0], 1.0);
        let m = BlossomBackend::new().decode_defects(&graph, &[]);
        assert!(m.pairs.is_empty() && m.boundary.is_empty());
        assert_eq!(m.num_clusters, 0);
    }

    #[test]
    fn well_separated_defects_form_two_clusters() {
        let graph = SyndromeGraph::line(&[1.0; 12], 1.0);
        let m = BlossomBackend::new().decode_defects(&graph, &[1, 11]);
        assert_eq!(m.num_clusters, 2);
        assert_eq!(m.boundary.len(), 2);
    }

    /// The scratch contract: a reused backend is bit-identical to a fresh
    /// one, across graphs of different sizes and zero-weight layouts.
    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_backends() {
        let big = SyndromeGraph::line(&[1.0; 30], 2.0);
        let mut zero_weights = vec![1.0; 10];
        zero_weights[4] = 0.0;
        zero_weights[5] = 0.0;
        let zeroed = SyndromeGraph::line(&zero_weights, 1.5);
        let small = SyndromeGraph::line(&[0.5, 2.0, 0.5], 1.0);
        let mut reused = BlossomBackend::new();
        for (graph, defects) in [
            (&big, vec![3usize, 4, 20, 27]),
            (&zeroed, vec![3usize, 4, 5, 6]),
            (&small, vec![0usize, 3]),
            (&big, vec![0usize, 1, 2, 3, 4, 5]),
            (&small, vec![2usize]),
        ] {
            let fresh = BlossomBackend::new().decode_defects(graph, &defects);
            assert_eq!(reused.decode_defects(graph, &defects), fresh);
        }
    }

    /// Random dense-ish sparse graphs (double line with rungs) against the
    /// oracle, including zero-weight rungs.
    #[test]
    fn backend_matches_dense_exact_on_random_ladders() {
        let mut rng = Lcg(0x1ADDE5);
        for trial in 0..150 {
            let cols = 4 + rng.pick(6);
            let mut graph = SyndromeGraph::new(2 * cols);
            for row in 0..2 {
                for c in 0..cols - 1 {
                    let w = rng.pick(6) as f64 * 0.5;
                    graph.add_edge(row * cols + c, row * cols + c + 1, w);
                }
            }
            for c in 0..cols {
                let w = if rng.pick(4) == 0 {
                    0.0
                } else {
                    rng.pick(6) as f64 * 0.5
                };
                graph.add_edge(c, cols + c, w);
            }
            graph.add_boundary_edge(0, 1.0 + rng.pick(4) as f64);
            graph.add_boundary_edge(cols - 1, 1.0 + rng.pick(4) as f64);
            graph.add_boundary_edge(cols, 1.0 + rng.pick(4) as f64);
            graph.add_boundary_edge(2 * cols - 1, 1.0 + rng.pick(4) as f64);
            let mut defects = Vec::new();
            for v in 0..2 * cols {
                if rng.pick(3) == 0 {
                    defects.push(v);
                }
            }
            let blossom = BlossomBackend::new().decode_defects(&graph, &defects);
            let exact = ExactBackend::new(22, 64).decode_defects(&graph, &defects);
            assert!(blossom.is_perfect(defects.len()), "trial {trial}");
            assert_close(
                blossom.total_cost(),
                exact.total_cost(),
                &format!("trial {trial} (cols = {cols}, {} defects)", defects.len()),
            );
        }
    }
}
