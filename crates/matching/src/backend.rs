//! Dense decoder backends: shortest-path cost extraction followed by exact
//! or greedy matching on the resulting [`MatchingProblem`].
//!
//! These backends reproduce the classic MWPM decoding flow: run Dijkstra
//! from every defect over the sparse [`SyndromeGraph`], decompose the
//! defects into independent clusters, and solve each cluster with a dense
//! matcher.  The cost is `O(k · E log V)` for the searches plus the dense
//! solve — the cubic-ish bottleneck the union-find backend
//! ([`crate::UnionFindDecoder`]) exists to avoid.
//!
//! Both backends honour the [`crate::DecoderBackend`] scratch contract:
//! the Dijkstra distance array, its validity stamps and the search heap
//! live in the backend and are reused across `decode_defects` calls, so a
//! long-lived backend allocates only for the (small) per-cluster dense
//! problems.

use crate::sparse::{DefectBoundaryMatch, DefectMatching, DefectPair, SparseEdgeId, SyndromeGraph};
use crate::{
    DecoderBackend, ExactMatcher, MatchTarget, Matcher, MatchingProblem, RefinedGreedyMatcher,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-defect shortest-path summary: distances to every other defect and the
/// cheapest boundary attachment.
struct DefectCosts {
    /// `to_defect[j]` = minimum path cost to defect `j`.
    to_defect: Vec<f64>,
    /// Cheapest `(cost, boundary edge)` attachment, if any boundary is
    /// reachable.
    boundary: Option<(f64, SparseEdgeId)>,
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    cost: f64,
    vertex: usize,
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra working memory: the distance array is validated per
/// search through an epoch stamp, so "resetting" it costs nothing — stale
/// entries from earlier searches (or earlier decode calls) simply read as
/// unreached.
#[derive(Debug, Clone, Default)]
struct DijkstraScratch {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Entry>,
}

impl DijkstraScratch {
    /// Prepares the scratch for one search over `n` vertices.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The stamp space wrapped: old stamps could alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn get(&self, v: usize) -> f64 {
        if self.stamp[v] == self.epoch {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64) {
        self.stamp[v] = self.epoch;
        self.dist[v] = d;
    }
}

/// Dijkstra from `defects[source]`, reporting distances to all defects and
/// the cheapest boundary edge.  Ties on the boundary are broken towards the
/// smallest edge id so results are deterministic.
fn dijkstra(
    graph: &SyndromeGraph,
    defects: &[usize],
    source: usize,
    scratch: &mut DijkstraScratch,
) -> DefectCosts {
    scratch.begin(graph.num_vertices());
    let mut boundary: Option<(f64, SparseEdgeId)> = None;
    let start = defects[source];
    scratch.set(start, 0.0);
    scratch.heap.push(Entry {
        cost: 0.0,
        vertex: start,
    });
    while let Some(Entry { cost, vertex }) = scratch.heap.pop() {
        if cost > scratch.get(vertex) {
            continue;
        }
        for &eid in graph.incident(vertex) {
            let edge = graph.edge(eid);
            let next_cost = cost + edge.weight;
            match edge.other(vertex) {
                Some(neighbor) => {
                    if next_cost < scratch.get(neighbor) {
                        scratch.set(neighbor, next_cost);
                        scratch.heap.push(Entry {
                            cost: next_cost,
                            vertex: neighbor,
                        });
                    }
                }
                None => {
                    let better = match boundary {
                        None => true,
                        Some((c, e)) => next_cost < c || (next_cost == c && eid < e),
                    };
                    if better {
                        boundary = Some((next_cost, eid));
                    }
                }
            }
        }
    }
    DefectCosts {
        to_defect: defects.iter().map(|&v| scratch.get(v)).collect(),
        boundary,
    }
}

/// Shared dense decoding driver: all-pairs defect costs via Dijkstra,
/// cluster decomposition, then `solve` on each cluster's dense problem.
fn decode_dense(
    graph: &SyndromeGraph,
    defects: &[usize],
    scratch: &mut DijkstraScratch,
    solve: impl Fn(&MatchingProblem) -> crate::Matching,
) -> DefectMatching {
    let k = defects.len();
    if k == 0 {
        return DefectMatching::default();
    }
    let costs: Vec<DefectCosts> = (0..k)
        .map(|i| dijkstra(graph, defects, i, scratch))
        .collect();

    // Symmetrise: Dijkstra costs are symmetric up to floating-point noise,
    // and the dense matchers require exact symmetry.
    let mut pair_cost = vec![f64::INFINITY; k * k];
    for i in 0..k {
        for j in (i + 1)..k {
            let c = costs[i].to_defect[j].min(costs[j].to_defect[i]);
            pair_cost[i * k + j] = c;
            pair_cost[j * k + i] = c;
        }
    }
    let boundary_cost = |i: usize| costs[i].boundary.map_or(f64::INFINITY, |(c, _)| c);

    // Cluster decomposition via union-find: link i and j when pairing them
    // could ever beat sending both to the boundary.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if pair_cost[i * k + j] < boundary_cost(i) + boundary_cost(j) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    // BTreeMap, not HashMap: cluster iteration order decides the order of
    // emitted pairs and float summation order downstream, so it must be
    // deterministic for seeded runs to be reproducible.
    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..k {
        let root = find(&mut parent, i);
        clusters.entry(root).or_default().push(i);
    }

    let mut out = DefectMatching {
        num_clusters: clusters.len(),
        ..DefectMatching::default()
    };
    for members in clusters.values() {
        let m = members.len();
        let problem = MatchingProblem::from_fn(
            m,
            |a, b| pair_cost[members[a] * k + members[b]],
            |a| boundary_cost(members[a]),
        );
        let matching = solve(&problem);
        for (local, target) in matching.iter() {
            let global = members[local];
            match target {
                MatchTarget::Node(other_local) => {
                    let other = members[other_local];
                    if global < other {
                        out.pairs.push(DefectPair {
                            a: global,
                            b: other,
                            cost: pair_cost[global * k + other],
                        });
                    }
                }
                MatchTarget::Boundary => {
                    let (cost, edge) = costs[global]
                        .boundary
                        .expect("boundary match requires a reachable boundary");
                    out.boundary.push(DefectBoundaryMatch {
                        defect: global,
                        edge,
                        cost,
                    });
                }
            }
        }
    }
    out
}

/// The exact MWPM backend: per-cluster bitmask dynamic programming
/// ([`ExactMatcher`]) with a [`RefinedGreedyMatcher`] fallback for clusters
/// too large for the exponential DP.
///
/// This is the test oracle and the default decoding backend; it plays the
/// role Kolmogorov's Blossom V plays in the paper.  Select it with
/// [`crate::MatcherKind::Exact`].
#[derive(Debug, Clone)]
pub struct ExactBackend {
    /// Clusters with at most this many defects are matched exactly; larger
    /// clusters fall back to the refined greedy matcher.
    pub exact_threshold: usize,
    /// Maximum 2-opt improvement sweeps of the fallback matcher.
    pub refine_rounds: usize,
    scratch: DijkstraScratch,
}

impl ExactBackend {
    /// Creates the backend with explicit tuning knobs.
    pub fn new(exact_threshold: usize, refine_rounds: usize) -> Self {
        Self {
            exact_threshold,
            refine_rounds,
            scratch: DijkstraScratch::default(),
        }
    }
}

impl Default for ExactBackend {
    fn default() -> Self {
        Self::new(16, 64)
    }
}

impl DecoderBackend for ExactBackend {
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        let (exact_threshold, refine_rounds) = (self.exact_threshold, self.refine_rounds);
        decode_dense(graph, defects, &mut self.scratch, |problem| {
            if problem.num_nodes() <= exact_threshold {
                ExactMatcher::with_max_nodes(exact_threshold.max(1)).solve(problem)
            } else {
                RefinedGreedyMatcher::with_max_rounds(refine_rounds).solve(problem)
            }
        })
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// The greedy backend: per-cluster radius-sweep greedy matching
/// ([`GreedyMatcher`](crate::GreedyMatcher)) followed by a bounded 2-opt
/// repair pass, the
/// decoding-grade version of the paper's hardware decoder strategy
/// (Sec. VI-B).  The repair pass is what lets the backend correct every
/// sub-`d/2` error chain — the raw sweep strands a chain's far event on the
/// boundary whenever the near event sits closer to a boundary than to its
/// partner.  Select it with [`crate::MatcherKind::Greedy`].
#[derive(Debug, Clone)]
pub struct GreedyBackend {
    /// Maximum 2-opt repair sweeps after the greedy initialisation.
    pub repair_rounds: usize,
    scratch: DijkstraScratch,
}

impl GreedyBackend {
    /// Creates the backend with an explicit repair-sweep bound.
    pub fn new(repair_rounds: usize) -> Self {
        Self {
            repair_rounds,
            scratch: DijkstraScratch::default(),
        }
    }
}

impl Default for GreedyBackend {
    fn default() -> Self {
        Self::new(8)
    }
}

impl DecoderBackend for GreedyBackend {
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        let repair_rounds = self.repair_rounds;
        decode_dense(graph, defects, &mut self.scratch, |problem| {
            RefinedGreedyMatcher::with_max_rounds(repair_rounds).solve(problem)
        })
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two defects one cheap edge apart, boundary far away: they pair.
    #[test]
    fn adjacent_defects_pair_up() {
        let g = SyndromeGraph::line(&[1.0, 1.0, 1.0], 10.0);
        let backends: [Box<dyn DecoderBackend>; 2] = [
            Box::new(ExactBackend::default()),
            Box::new(GreedyBackend::default()),
        ];
        for mut backend in backends {
            let m = backend.decode_defects(&g, &[1, 2]);
            assert!(m.is_perfect(2), "{}", backend.name());
            assert_eq!(m.pairs.len(), 1);
            assert!((m.pairs[0].cost - 1.0).abs() < 1e-12);
            assert!(m.boundary.is_empty());
        }
    }

    /// A defect adjacent to the boundary goes to the boundary.
    #[test]
    fn near_boundary_defect_matches_boundary() {
        let g = SyndromeGraph::line(&[1.0, 1.0, 1.0, 1.0], 0.5);
        let m = ExactBackend::default().decode_defects(&g, &[0]);
        assert!(m.is_perfect(1));
        assert_eq!(m.boundary.len(), 1);
        // boundary edge 4 is at vertex 0 (line adds the low stub first)
        let be = m.boundary[0].edge;
        assert!(g.edge(be).is_boundary());
        assert_eq!(g.edge(be).u, 0);
        assert!((m.boundary[0].cost - 0.5).abs() < 1e-12);
    }

    /// The greedy trap: exact repairs it, greedy does not.
    #[test]
    fn exact_beats_greedy_on_the_trap() {
        // defects at 0, 2, 3, 5 on a line with cheap middle edges
        let g = SyndromeGraph::line(&[2.0, 0.5, 0.5, 0.5, 2.0], 4.0);
        let defects = [0usize, 2, 3, 5];
        let exact = ExactBackend::default().decode_defects(&g, &defects);
        let greedy = GreedyBackend::default().decode_defects(&g, &defects);
        assert!(exact.is_perfect(4));
        assert!(greedy.is_perfect(4));
        assert!(exact.total_cost() <= greedy.total_cost() + 1e-12);
    }

    #[test]
    fn empty_defect_list_yields_empty_matching() {
        let g = SyndromeGraph::line(&[1.0], 1.0);
        let m = GreedyBackend::default().decode_defects(&g, &[]);
        assert!(m.pairs.is_empty() && m.boundary.is_empty());
        assert_eq!(m.num_clusters, 0);
    }

    #[test]
    fn well_separated_defects_form_two_clusters() {
        let g = SyndromeGraph::line(&[1.0; 12], 1.0);
        // defects near opposite ends: both go to their boundary
        let m = ExactBackend::default().decode_defects(&g, &[1, 11]);
        assert_eq!(m.num_clusters, 2);
        assert_eq!(m.boundary.len(), 2);
    }

    #[test]
    fn zero_weight_edges_are_traversed_for_free() {
        let g = SyndromeGraph::line(&[1.0, 0.0, 0.0, 0.0, 1.0], 10.0);
        let m = ExactBackend::default().decode_defects(&g, &[0, 5]);
        assert_eq!(m.pairs.len(), 1);
        assert!((m.pairs[0].cost - 2.0).abs() < 1e-12);
    }

    /// A reused backend must reproduce a fresh backend's matching exactly,
    /// even across graphs of different sizes (the scratch arrays only ever
    /// grow).
    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_backends() {
        let big = SyndromeGraph::line(&[1.0; 30], 2.0);
        let small = SyndromeGraph::line(&[0.5, 2.0, 0.5], 1.0);
        let mut reused_exact = ExactBackend::default();
        let mut reused_greedy = GreedyBackend::default();
        for (graph, defects) in [
            (&big, vec![3usize, 4, 20, 27]),
            (&small, vec![0usize, 3]),
            (&big, vec![0usize, 1, 2, 3, 4, 5]),
            (&small, vec![2usize]),
        ] {
            let fe = ExactBackend::default().decode_defects(graph, &defects);
            let fg = GreedyBackend::default().decode_defects(graph, &defects);
            assert_eq!(reused_exact.decode_defects(graph, &defects), fe);
            assert_eq!(reused_greedy.decode_defects(graph, &defects), fg);
        }
    }
}
