//! The greedy matcher used by the paper's hardware decoder.

use crate::{MatchTarget, Matcher, Matching, MatchingProblem};

/// Greedy minimum-weight matcher.
///
/// The paper's online decoder (borrowed from QECOOL, Sec. VI-B) matches
/// active nodes in a radius sweep: with increasing radius `i = 1 … d`, any
/// two unmatched active nodes closer than `i` are paired.  For arbitrary
/// real-valued costs this is equivalent to scanning all candidate pairs in
/// order of increasing cost and matching both endpoints when they are still
/// free — which is exactly what this implementation does, with
/// node-to-boundary candidates participating in the same sweep.
///
/// The greedy matching is not optimal in general (see the `refine` module
/// for a locally improved variant) but is fast, streaming-friendly and is
/// the algorithm evaluated in hardware in Table IV.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMatcher {
    /// Optional cap on the cost of candidate pairs considered; candidates
    /// above the cap are skipped and the involved nodes fall back to their
    /// boundary match.  `None` considers every finite candidate.
    pub max_cost: Option<f64>,
}

impl GreedyMatcher {
    /// Creates a greedy matcher that considers all finite-cost candidates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a greedy matcher that ignores candidate pairs costlier than
    /// `max_cost` (the radius cap `d` of the paper's radius sweep).
    pub fn with_max_cost(max_cost: f64) -> Self {
        Self {
            max_cost: Some(max_cost),
        }
    }
}

impl Matcher for GreedyMatcher {
    /// Produces a greedy matching.
    ///
    /// # Panics
    ///
    /// Panics if some node ends up with neither a finite-cost partner nor a
    /// finite boundary cost.
    fn solve(&self, problem: &MatchingProblem) -> Matching {
        let n = problem.num_nodes();
        // Candidate list: all node–node pairs and node–boundary options.
        #[derive(Debug)]
        enum Candidate {
            Pair(usize, usize),
            Boundary(usize),
        }
        let mut candidates: Vec<(f64, Candidate)> = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            let bc = problem.boundary_cost(i);
            if bc.is_finite() {
                candidates.push((bc, Candidate::Boundary(i)));
            }
            for j in (i + 1)..n {
                let pc = problem.pair_cost(i, j);
                if pc.is_finite() && self.max_cost.is_none_or(|cap| pc <= cap) {
                    candidates.push((pc, Candidate::Pair(i, j)));
                }
            }
        }
        // Sort by cost, pairs before boundary options on ties: a pair covers
        // two nodes for the same price a boundary match covers one, so at
        // equal cost the pair can never be worse.
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("costs are never NaN")
                .then_with(|| {
                    let rank = |c: &Candidate| matches!(c, Candidate::Boundary(_)) as u8;
                    rank(&a.1).cmp(&rank(&b.1))
                })
        });

        let mut assignment: Vec<Option<MatchTarget>> = vec![None; n];
        for (_, cand) in candidates {
            match cand {
                Candidate::Pair(i, j) => {
                    if assignment[i].is_none() && assignment[j].is_none() {
                        assignment[i] = Some(MatchTarget::Node(j));
                        assignment[j] = Some(MatchTarget::Node(i));
                    }
                }
                Candidate::Boundary(i) => {
                    if assignment[i].is_none() {
                        assignment[i] = Some(MatchTarget::Boundary);
                    }
                }
            }
        }

        let assignment: Vec<MatchTarget> = assignment
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                t.unwrap_or_else(|| {
                    assert!(
                        problem.boundary_cost(i).is_finite(),
                        "node {i} has no finite-cost partner or boundary option"
                    );
                    MatchTarget::Boundary
                })
            })
            .collect();
        Matching::new(assignment)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactMatcher;

    #[test]
    fn matches_obvious_pairs() {
        let mut p = MatchingProblem::new(4);
        p.set_pair_cost(0, 1, 1.0);
        p.set_pair_cost(2, 3, 1.0);
        p.set_pair_cost(0, 2, 9.0);
        p.set_pair_cost(0, 3, 9.0);
        p.set_pair_cost(1, 2, 9.0);
        p.set_pair_cost(1, 3, 9.0);
        for i in 0..4 {
            p.set_boundary_cost(i, 5.0);
        }
        let m = GreedyMatcher::new().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Node(1));
        assert_eq!(m.target(2), MatchTarget::Node(3));
        assert_eq!(m.total_cost(&p), 2.0);
    }

    #[test]
    fn greedy_is_suboptimal_on_the_trap_instance() {
        // Demonstrates (and pins down) the known greedy failure mode that the
        // refined matcher repairs.
        let mut p = MatchingProblem::new(4);
        p.set_pair_cost(1, 2, 1.0);
        p.set_pair_cost(0, 1, 2.0);
        p.set_pair_cost(2, 3, 2.0);
        p.set_pair_cost(0, 3, 50.0);
        p.set_pair_cost(0, 2, 50.0);
        p.set_pair_cost(1, 3, 50.0);
        for i in 0..4 {
            p.set_boundary_cost(i, 10.0);
        }
        let greedy = GreedyMatcher::new().solve(&p);
        let exact = ExactMatcher::default().solve(&p);
        assert!(greedy.total_cost(&p) > exact.total_cost(&p));
        assert_eq!(greedy.total_cost(&p), 21.0); // 1–2 pair + two boundary matches
    }

    #[test]
    fn boundary_wins_when_cheaper() {
        let mut p = MatchingProblem::new(2);
        p.set_pair_cost(0, 1, 3.0);
        p.set_boundary_cost(0, 1.0);
        p.set_boundary_cost(1, 1.0);
        let m = GreedyMatcher::new().solve(&p);
        assert_eq!(m.target(0), MatchTarget::Boundary);
        assert_eq!(m.target(1), MatchTarget::Boundary);
    }

    #[test]
    fn max_cost_cap_forces_boundary_matches() {
        let mut p = MatchingProblem::new(2);
        p.set_pair_cost(0, 1, 8.0);
        p.set_boundary_cost(0, 6.0);
        p.set_boundary_cost(1, 6.0);
        // Without the cap, greedy matches the pair? No: boundary (6) < pair (8),
        // so set boundary dearer to make the cap meaningful.
        let mut p2 = MatchingProblem::new(2);
        p2.set_pair_cost(0, 1, 8.0);
        p2.set_boundary_cost(0, 20.0);
        p2.set_boundary_cost(1, 20.0);
        let uncapped = GreedyMatcher::new().solve(&p2);
        assert_eq!(uncapped.target(0), MatchTarget::Node(1));
        let capped = GreedyMatcher::with_max_cost(5.0).solve(&p2);
        assert_eq!(capped.target(0), MatchTarget::Boundary);
        assert_eq!(capped.target(1), MatchTarget::Boundary);
        let _ = p;
    }

    #[test]
    fn empty_problem() {
        let p = MatchingProblem::new(0);
        let m = GreedyMatcher::new().solve(&p);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "no finite-cost partner")]
    fn infeasible_node_panics() {
        let p = MatchingProblem::new(1);
        let _ = GreedyMatcher::new().solve(&p);
    }

    #[test]
    fn greedy_equals_exact_on_chains_of_adjacent_pairs() {
        // A chain 0-1-2-3 with two well separated tight pairs and a remote
        // boundary: greedy pairs (0,1) and (2,3), which is also optimal.
        let positions = [0.0f64, 1.0, 5.0, 6.0];
        let p = MatchingProblem::from_fn(4, |i, j| (positions[i] - positions[j]).abs(), |_| 10.0);
        let g = GreedyMatcher::new().solve(&p);
        let e = ExactMatcher::default().solve(&p);
        assert_eq!(
            g.pairs().collect::<Vec<_>>(),
            vec![(0, 1), (2, 3)],
            "greedy pairs the two tight clusters"
        );
        assert!((g.total_cost(&p) - e.total_cost(&p)).abs() < 1e-12);
    }
}
