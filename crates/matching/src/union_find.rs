//! The union-find decoder (Delfosse–Nickerson style).
//!
//! Instead of materialising all-pairs shortest-path costs and solving a
//! dense minimum-weight matching — cubic-ish in the number of defects — the
//! union-find decoder works directly on the sparse [`SyndromeGraph`] in two
//! almost-linear stages:
//!
//! 1. **cluster growth** — every odd (defect-carrying) cluster grows a
//!    half-edge frontier outwards in integer growth units; clusters merge in
//!    a weighted-union/path-compression forest when a fully-grown edge joins
//!    them, and a cluster *freezes* once it has even defect parity or has
//!    absorbed a boundary edge;
//! 2. **peeling** — within each frozen cluster a spanning forest of
//!    fully-grown edges is peeled from the leaves inward, moving defect
//!    tokens towards the root; colliding tokens annihilate into
//!    defect–defect pairs and a token left at the root of a
//!    boundary-connected cluster exits through the boundary edge.
//!
//! Edge weights are consumed as *integer growth rates*: the decoder
//! quantises the (possibly anomaly-re-weighted) `f64` edge costs so that the
//! cheapest positive weight maps to at least one growth unit and `0`-weight
//! edges (a `p = 0.5` anomalous region) are grown instantly.  This is how
//! the re-weighting of Q3DE's rollback path reaches the union-find backend:
//! re-weighted edges simply grow faster.
//!
//! Per the [`crate::DecoderBackend`] scratch contract the forest, growth
//! counters, frontier lists and peeling buffers all live in the decoder and
//! are re-initialised in place on every call, so a long-lived
//! `UnionFindDecoder` decodes window after window without reallocating.

use crate::sparse::{DefectBoundaryMatch, DefectMatching, DefectPair, SyndromeGraph};
use crate::DecoderBackend;

/// The union-find decoder backend.  Select it with
/// [`crate::MatcherKind::UnionFind`].
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    /// Quantisation resolution: the largest edge weight maps to at most this
    /// many integer growth units.  Larger values track the re-weighted costs
    /// more faithfully at the price of more growth rounds.
    pub max_growth: u32,
    scratch: Scratch,
}

impl UnionFindDecoder {
    /// Creates the decoder with an explicit quantisation resolution.
    pub fn new(max_growth: u32) -> Self {
        Self {
            max_growth,
            scratch: Scratch::default(),
        }
    }
}

impl Default for UnionFindDecoder {
    fn default() -> Self {
        Self::new(16)
    }
}

/// The weighted-union/path-compression cluster forest, re-initialised in
/// place by [`Forest::reset`] between decode calls.
#[derive(Debug, Clone, Default)]
struct Forest {
    parent: Vec<usize>,
    size: Vec<usize>,
    /// Root-indexed: whether the cluster holds an odd number of defects.
    odd: Vec<bool>,
    /// Root-indexed: the first fully-grown boundary edge, if any.
    boundary: Vec<Option<usize>>,
    /// Root-indexed: candidate frontier edges (lazily filtered).
    frontier: Vec<Vec<usize>>,
}

impl Forest {
    /// Re-initialises the forest for `graph`: every vertex a singleton whose
    /// frontier is its incident edge list.  Reuses all allocations.
    fn reset(&mut self, graph: &SyndromeGraph) {
        let n = graph.num_vertices();
        self.parent.clear();
        self.parent.extend(0..n);
        self.size.clear();
        self.size.resize(n, 1);
        self.odd.clear();
        self.odd.resize(n, false);
        self.boundary.clear();
        self.boundary.resize(n, None);
        if self.frontier.len() < n {
            self.frontier.resize_with(n, Vec::new);
        }
        for (v, frontier) in self.frontier.iter_mut().enumerate().take(n) {
            frontier.clear();
            frontier.extend_from_slice(graph.incident(v));
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// Unions the clusters of `a` and `b` (weighted by size) and returns the
    /// surviving root.  No-op if they already share a root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.odd[big] ^= self.odd[small];
        if self.boundary[big].is_none() {
            self.boundary[big] = self.boundary[small];
        }
        let moved = std::mem::take(&mut self.frontier[small]);
        self.frontier[big].extend(moved);
        big
    }

    /// Whether the cluster rooted at `r` still needs to grow.
    fn is_active(&self, r: usize) -> bool {
        self.odd[r] && self.boundary[r].is_none()
    }

    /// Collects the sorted, deduplicated roots of the still-active defect
    /// clusters into `out`.
    fn active_roots_into(&mut self, defects: &[usize], out: &mut Vec<usize>) {
        out.clear();
        for &v in defects {
            let r = self.find(v);
            if self.is_active(r) {
                out.push(r);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// All reusable working memory of the decoder: growth state, the cluster
/// forest, and the peeling buffers.
#[derive(Debug, Clone, Default)]
struct Scratch {
    forest: Forest,
    capacity: Vec<u32>,
    growth: Vec<u32>,
    grown: Vec<bool>,
    /// `seen[e] == round` marks edges already collected in growth round
    /// `round`; the round counter is monotonic *across* decode calls so the
    /// array never needs clearing.
    seen: Vec<u32>,
    round: u32,
    active: Vec<usize>,
    round_edges: Vec<usize>,
    // Peeling buffers.
    adj: Vec<Vec<(usize, usize)>>,
    token: Vec<Option<(usize, f64)>>,
    visited: Vec<bool>,
    order: Vec<usize>,
    tree_parent: Vec<(usize, usize)>,
    cluster_roots: Vec<usize>,
}

impl UnionFindDecoder {
    /// Quantises the graph's `f64` edge weights into integer growth
    /// capacities.  Each edge gets capacity `2 · round(w / unit)` — growth
    /// proceeds in half-edge units so two clusters approaching one another
    /// meet in the middle — where `unit` maps the cheapest positive weight
    /// to one growth unit, capped so the dearest edge costs at most
    /// [`UnionFindDecoder::max_growth`] units.
    fn capacities(max_growth: u32, graph: &SyndromeGraph, out: &mut Vec<u32>) {
        out.clear();
        let mut min_pos = f64::INFINITY;
        let mut max_w = 0.0f64;
        for e in graph.edges() {
            if e.weight > 0.0 {
                min_pos = min_pos.min(e.weight);
            }
            max_w = max_w.max(e.weight);
        }
        if !min_pos.is_finite() {
            // all edges are free
            out.resize(graph.num_edges(), 0);
            return;
        }
        let unit = min_pos.max(max_w / max_growth.max(1) as f64);
        out.extend(graph.edges().iter().map(|e| {
            let units = (e.weight / unit).round() as u32;
            // a positive weight never quantises to a free edge
            let units = if e.weight > 0.0 { units.max(1) } else { 0 };
            2 * units
        }));
    }

    /// Stage 1: grows odd clusters until every cluster is even or
    /// boundary-connected.  Leaves the forest and the grown-edge flags in
    /// the scratch.
    fn grow(scratch: &mut Scratch, graph: &SyndromeGraph, defects: &[usize]) {
        let Scratch {
            forest,
            capacity,
            growth,
            grown,
            seen,
            round,
            active,
            round_edges,
            ..
        } = scratch;
        forest.reset(graph);
        for &v in defects {
            assert!(v < graph.num_vertices(), "defect vertex {v} out of range");
            assert!(!forest.odd[v], "duplicate defect vertex {v}");
            forest.odd[v] = true;
        }
        growth.clear();
        growth.resize(graph.num_edges(), 0);
        grown.clear();
        grown.resize(graph.num_edges(), false);
        if seen.len() < graph.num_edges() {
            seen.resize(graph.num_edges(), 0);
        }

        // Edges with zero capacity (p = 0.5 regions) are grown from the
        // start: merge their endpoints before the first round.
        for (eid, &cap) in capacity.iter().enumerate() {
            if cap == 0 {
                grown[eid] = true;
                let edge = graph.edge(eid);
                match edge.v {
                    Some(v) => {
                        forest.union(edge.u, v);
                    }
                    None => {
                        let r = forest.find(edge.u);
                        if forest.boundary[r].is_none() {
                            forest.boundary[r] = Some(eid);
                        }
                    }
                }
            }
        }

        forest.active_roots_into(defects, active);

        while !active.is_empty() {
            if *round == u32::MAX {
                // The monotonic round counter wrapped: stale `seen` marks
                // could alias, so clear them once and restart the counter.
                seen.fill(0);
                *round = 0;
            }
            *round += 1;
            // Phase a: collect this round's candidate frontier edges from
            // every active cluster, pruning edges that are already grown.
            round_edges.clear();
            for &seed_root in active.iter() {
                let root = forest.find(seed_root);
                if !forest.is_active(root) {
                    continue; // merged or frozen earlier this round
                }
                let frontier = &mut forest.frontier[root];
                frontier.retain(|&eid| {
                    if grown[eid] {
                        return false; // interior edge, drop from the frontier
                    }
                    if seen[eid] != *round {
                        seen[eid] = *round;
                        round_edges.push(eid);
                    }
                    true
                });
                assert!(
                    !frontier.is_empty(),
                    "union-find growth stalled: an odd cluster exhausted its frontier \
                     without touching a boundary (infeasible decoding graph)"
                );
            }
            // Phase b: grow each candidate by one unit per *currently
            // active* endpoint cluster — two approaching clusters meet in
            // the middle — and merge across edges that reach full capacity.
            let mut progressed = false;
            for &eid in round_edges.iter() {
                if grown[eid] {
                    continue;
                }
                let edge = graph.edge(eid);
                let ru = forest.find(edge.u);
                let mut increment = u32::from(forest.is_active(ru));
                if let Some(v) = edge.v {
                    let rv = forest.find(v);
                    if rv != ru && forest.is_active(rv) {
                        increment += 1;
                    }
                }
                if increment == 0 {
                    continue;
                }
                growth[eid] += increment;
                progressed = true;
                if growth[eid] < capacity[eid] {
                    continue;
                }
                grown[eid] = true;
                match edge.v {
                    Some(v) => {
                        forest.union(edge.u, v);
                    }
                    None => {
                        let r = forest.find(edge.u);
                        if forest.boundary[r].is_none() {
                            forest.boundary[r] = Some(eid);
                        }
                    }
                }
            }
            // Re-derive the active roots; merged clusters collapse here.
            forest.active_roots_into(defects, active);
            assert!(
                progressed || active.is_empty(),
                "union-find growth stalled: some defect cluster has an empty frontier \
                 and no boundary (infeasible decoding graph)"
            );
        }
    }

    /// Stage 2: peels the spanning forest of each defect-carrying cluster,
    /// pairing defect tokens as they collide on their way to the root.
    fn peel(scratch: &mut Scratch, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        let Scratch {
            forest,
            grown,
            adj,
            token,
            visited,
            order,
            tree_parent,
            cluster_roots,
            ..
        } = scratch;
        let n = graph.num_vertices();

        // Adjacency over fully-grown non-boundary edges, in edge-id order
        // (deterministic).
        if adj.len() < n {
            adj.resize_with(n, Vec::new);
        }
        for list in adj.iter_mut().take(n) {
            list.clear();
        }
        for (eid, &g) in grown.iter().enumerate() {
            if !g {
                continue;
            }
            let edge = graph.edge(eid);
            if let Some(v) = edge.v {
                adj[edge.u].push((v, eid));
                adj[v].push((edge.u, eid));
            }
        }

        // Defect tokens: (defect-list index, accumulated path cost).
        token.clear();
        token.resize(n, None);
        for (idx, &v) in defects.iter().enumerate() {
            token[v] = Some((idx, 0.0));
        }

        let mut out = DefectMatching::default();
        visited.clear();
        visited.resize(n, false);
        cluster_roots.clear();
        for &v in defects {
            let r = forest.find(v);
            if !cluster_roots.contains(&r) {
                cluster_roots.push(r);
            }
        }
        out.num_clusters = cluster_roots.len();

        for &cluster in cluster_roots.iter() {
            // Root the spanning tree at the boundary attachment when the
            // cluster touches a boundary, else at the cluster's smallest
            // defect vertex (any vertex works; this one is deterministic).
            let boundary_edge = forest.boundary[cluster];
            let root = match boundary_edge {
                Some(be) => graph.edge(be).u,
                None => *defects
                    .iter()
                    .filter(|&&v| forest.find(v) == cluster)
                    .min()
                    .expect("cluster contains a defect"),
            };

            // BFS spanning tree over grown edges.
            order.clear();
            order.push(root);
            tree_parent.clear();
            tree_parent.push((usize::MAX, usize::MAX));
            visited[root] = true;
            let mut head = 0;
            while head < order.len() {
                let u = order[head];
                for &(v, eid) in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        order.push(v);
                        tree_parent.push((u, eid));
                    }
                }
                head += 1;
            }

            // Peel leaves-first: tokens ride towards the root, annihilating
            // in pairs when they collide.
            for i in (1..order.len()).rev() {
                let v = order[i];
                let (p, eid) = tree_parent[i];
                if let Some((idx, cost)) = token[v].take() {
                    let cost = cost + graph.edge(eid).weight;
                    match token[p].take() {
                        Some((other, other_cost)) => out.pairs.push(DefectPair {
                            a: other,
                            b: idx,
                            cost: other_cost + cost,
                        }),
                        None => token[p] = Some((idx, cost)),
                    }
                }
            }
            if let Some((idx, cost)) = token[root].take() {
                let be = boundary_edge.expect(
                    "odd cluster finished growth without touching a boundary (decoder bug)",
                );
                out.boundary.push(DefectBoundaryMatch {
                    defect: idx,
                    edge: be,
                    cost: cost + graph.edge(be).weight,
                });
            }
        }
        out
    }
}

impl DecoderBackend for UnionFindDecoder {
    /// Decodes `defects` on `graph` in two almost-linear passes (growth and
    /// peeling), reusing the forest and all working buffers from earlier
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if a defect vertex is out of range or duplicated, or if some
    /// defect can reach neither another defect nor a boundary.
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching {
        if defects.is_empty() {
            return DefectMatching::default();
        }
        Self::capacities(self.max_growth, graph, &mut self.scratch.capacity);
        Self::grow(&mut self.scratch, graph, defects);
        Self::peel(&mut self.scratch, graph, defects)
    }

    fn name(&self) -> &'static str {
        "union-find"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactBackend;

    fn uf() -> UnionFindDecoder {
        UnionFindDecoder::default()
    }

    #[test]
    fn empty_defects_decode_trivially() {
        let g = SyndromeGraph::line(&[1.0, 1.0], 1.0);
        let m = uf().decode_defects(&g, &[]);
        assert!(m.pairs.is_empty() && m.boundary.is_empty());
        assert_eq!(m.num_clusters, 0);
    }

    #[test]
    fn adjacent_pair_is_matched() {
        let g = SyndromeGraph::line(&[1.0; 6], 10.0);
        let m = uf().decode_defects(&g, &[2, 3]);
        assert!(m.is_perfect(2));
        assert_eq!(m.pairs.len(), 1);
        assert!((m.pairs[0].cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lone_defect_reaches_the_nearest_boundary() {
        let g = SyndromeGraph::line(&[1.0; 6], 1.0);
        let m = uf().decode_defects(&g, &[1]);
        assert!(m.is_perfect(1));
        assert_eq!(m.boundary.len(), 1);
        // nearest boundary stub sits at vertex 0
        assert_eq!(g.edge(m.boundary[0].edge).u, 0);
        assert!((m.boundary[0].cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn far_apart_defects_each_take_their_boundary() {
        let g = SyndromeGraph::line(&[1.0; 10], 1.0);
        let m = uf().decode_defects(&g, &[1, 9]);
        assert!(m.is_perfect(2));
        assert_eq!(m.boundary.len(), 2);
        assert_eq!(m.num_clusters, 2);
    }

    #[test]
    fn three_defects_pair_two_and_boundary_one() {
        // defects at 1, 2 (adjacent) and 9 (near the high boundary)
        let g = SyndromeGraph::line(&[1.0; 10], 1.0);
        let m = uf().decode_defects(&g, &[1, 2, 9]);
        assert!(m.is_perfect(3));
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.boundary.len(), 1);
        let pair = &m.pairs[0];
        let paired: [usize; 2] = [pair.a.min(pair.b), pair.a.max(pair.b)];
        assert_eq!(paired, [0, 1], "defects 1 and 2 must pair up");
        assert_eq!(m.boundary[0].defect, 2);
    }

    #[test]
    fn zero_weight_region_is_absorbed_instantly() {
        // free middle section: the two defects pair across it at the cost of
        // the two flanking unit edges
        let g = SyndromeGraph::line(&[1.0, 0.0, 0.0, 0.0, 1.0], 10.0);
        let m = uf().decode_defects(&g, &[0, 5]);
        assert!(m.is_perfect(2));
        assert_eq!(m.pairs.len(), 1);
        assert!((m.pairs[0].cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_growth_prefers_the_cheap_side() {
        // defect at 2: boundary at 0 costs 1 + 1 + 1 = 3 hops of weight 1,
        // boundary at 5 costs edges of weight 5 each — the cheap side wins.
        let mut g = SyndromeGraph::new(6);
        for i in 0..2 {
            g.add_edge(i, i + 1, 1.0);
        }
        for i in 2..5 {
            g.add_edge(i, i + 1, 5.0);
        }
        let low = g.add_boundary_edge(0, 1.0);
        g.add_boundary_edge(5, 5.0);
        let m = uf().decode_defects(&g, &[2]);
        assert_eq!(m.boundary.len(), 1);
        assert_eq!(m.boundary[0].edge, low);
    }

    #[test]
    fn agrees_with_exact_on_line_instances() {
        // Seeded pseudo-random defect subsets on a unit line: union-find
        // matches the exact backend's pairing cost within 2x (it is not
        // optimal, but on 1D instances it is usually exact).
        let g = SyndromeGraph::line(&[1.0; 20], 2.0);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut reused = uf();
        for _ in 0..50 {
            let mut defects = Vec::new();
            for v in 0..21usize {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33).is_multiple_of(4) {
                    defects.push(v);
                }
            }
            let exact = ExactBackend::default().decode_defects(&g, &defects);
            let ufm = reused.decode_defects(&g, &defects);
            assert!(ufm.is_perfect(defects.len()), "defects {defects:?}");
            assert!(exact.is_perfect(defects.len()));
            assert!(
                ufm.total_cost() <= 2.0 * exact.total_cost() + 1e-9,
                "uf {} vs exact {} on {defects:?}",
                ufm.total_cost(),
                exact.total_cost()
            );
            // The reused decoder must match a fresh one bit for bit.
            assert_eq!(uf().decode_defects(&g, &defects), ufm);
        }
    }

    #[test]
    fn grid_cluster_peels_into_a_perfect_matching() {
        // 4x4 grid, boundary stubs on the left/right columns, defects in a
        // 2x2 block: all four pair up internally.
        let n = 16usize;
        let mut g = SyndromeGraph::new(n);
        let at = |r: usize, c: usize| r * 4 + c;
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    g.add_edge(at(r, c), at(r, c + 1), 1.0);
                }
                if r + 1 < 4 {
                    g.add_edge(at(r, c), at(r + 1, c), 1.0);
                }
            }
        }
        for r in 0..4 {
            g.add_boundary_edge(at(r, 0), 1.0);
            g.add_boundary_edge(at(r, 3), 1.0);
        }
        let defects = [at(1, 1), at(1, 2), at(2, 1), at(2, 2)];
        let m = uf().decode_defects(&g, &defects);
        assert!(m.is_perfect(4));
        assert_eq!(m.pairs.len(), 2, "interior block pairs internally: {m:?}");
    }

    #[test]
    #[should_panic(expected = "duplicate defect")]
    fn duplicate_defects_are_rejected() {
        let g = SyndromeGraph::line(&[1.0], 1.0);
        let _ = uf().decode_defects(&g, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn infeasible_graph_panics() {
        // a lone defect with no edges at all
        let g = SyndromeGraph::new(1);
        let _ = uf().decode_defects(&g, &[0]);
    }
}
