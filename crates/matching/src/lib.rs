//! Matching engines for surface-code decoding.
//!
//! Surface-code error decoding reduces to *minimum-weight matching with a
//! boundary*: every active detector node must be paired either with another
//! active node or with the lattice boundary so that the total cost (negative
//! log-likelihood of the implied physical error chains) is minimised.
//!
//! The paper estimates recovery operations with Kolmogorov's Blossom V for
//! its Monte-Carlo experiments (Figs. 3 and 8) and with the QECOOL-style
//! greedy matcher for its hardware decoder (Table IV).  Blossom V is not
//! redistributable, so this crate provides (see DESIGN.md §2):
//!
//! * [`ExactMatcher`] — exact minimum-weight matching by bitmask dynamic
//!   programming, usable up to ~20 active nodes; it serves both as the
//!   decoder for small instances and as the test oracle,
//! * [`GreedyMatcher`] — the radius-sweep greedy strategy of the paper's
//!   hardware decoder (Sec. VI-B), generalised to arbitrary edge costs,
//! * [`RefinedGreedyMatcher`] — greedy initialisation followed by 2-opt
//!   local improvement; this is the workhorse used for large instances and
//!   plays the role of Blossom V in the reproduction,
//! * [`AutoMatcher`] — picks [`ExactMatcher`] when the instance is small
//!   enough and [`RefinedGreedyMatcher`] otherwise.
//!
//! All matchers implement the [`Matcher`] trait and operate on a
//! [`MatchingProblem`], which is independent of lattice geometry: the decoder
//! crate converts syndrome data into pairwise path costs.
//!
//! # Example
//!
//! ```
//! use q3de_matching::{Matcher, MatchingProblem, ExactMatcher, MatchTarget};
//!
//! // Two active nodes close to each other and far from the boundary.
//! let mut problem = MatchingProblem::new(2);
//! problem.set_pair_cost(0, 1, 1.0);
//! problem.set_boundary_cost(0, 10.0);
//! problem.set_boundary_cost(1, 10.0);
//! let matching = ExactMatcher::default().solve(&problem);
//! assert_eq!(matching.target(0), MatchTarget::Node(1));
//! assert!((matching.total_cost(&problem) - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

/// Crate-internal diagnostic log: the matching backends sit deep inside the
/// decode hot path and must not panic on recoverable anomalies, but silent
/// fallbacks mask bugs in future refactors — `log!` routes a one-line
/// warning to stderr instead (the workspace carries no logging dependency).
macro_rules! log {
    ($($arg:tt)*) => {
        eprintln!("[q3de_matching] {}", format_args!($($arg)*))
    };
}
pub(crate) use log;

mod alt_tree;
mod backend;
mod blossom;
mod exact;
mod greedy;
mod problem;
mod refine;
mod sparse;
mod union_find;

pub use alt_tree::AltTreeBackend;
pub use backend::{ExactBackend, GreedyBackend};
pub use blossom::{BlossomBackend, BlossomMatcher};
pub use exact::ExactMatcher;
pub use greedy::GreedyMatcher;
pub use problem::{MatchTarget, Matching, MatchingProblem};
pub use refine::{AutoMatcher, RefinedGreedyMatcher};
pub use sparse::{
    DefectBoundaryMatch, DefectMatching, DefectPair, SparseEdge, SparseEdgeId, SyndromeGraph,
};
pub use union_find::UnionFindDecoder;

/// A strategy for solving a [`MatchingProblem`].
pub trait Matcher {
    /// Produces a complete matching: every node is paired with another node
    /// or with the boundary.
    fn solve(&self, problem: &MatchingProblem) -> Matching;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// A full decoding backend: given the sparse (space-time) [`SyndromeGraph`]
/// and the list of defect vertices, produce a perfect matching of the
/// defects among themselves and the boundary.
///
/// This is the seam the decoding pipeline is built around.  The dense
/// backends ([`ExactBackend`], [`GreedyBackend`]) extract pairwise defect
/// costs with Dijkstra and hand a [`MatchingProblem`] to a [`Matcher`]; the
/// [`UnionFindDecoder`] skips the dense construction entirely and runs
/// almost-linear cluster growth + peeling on the sparse graph.  All three
/// consume the same re-weighted edge costs, so Q3DE's anomaly-aware
/// rollback re-decoding works identically across backends.
///
/// # The `&mut` scratch contract
///
/// `decode_defects` takes `&mut self` so a backend can keep its working
/// memory — Dijkstra distance/heap buffers, the union-find forest, visited
/// and parity arrays — alive between calls instead of reallocating on
/// every syndrome window.  Implementations must be *stateless up to
/// scratch*: the returned matching depends only on `(graph, defects)` and
/// the backend's configuration, never on what earlier calls decoded, so a
/// reused backend is bit-identical to a freshly constructed one (the root
/// test `tests/decoder_reuse.rs` pins this for all shipped backends).
pub trait DecoderBackend {
    /// Decodes `defects` (vertex ids of the active syndrome nodes) over
    /// `graph`, returning a perfect [`DefectMatching`].
    ///
    /// # Panics
    ///
    /// Implementations panic when the instance is infeasible — some defect
    /// can reach neither another defect nor a boundary — or when a defect
    /// vertex is out of range.
    fn decode_defects(&mut self, graph: &SyndromeGraph, defects: &[usize]) -> DefectMatching;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Selects which [`DecoderBackend`] the decoding pipeline uses.
///
/// | kind | backend | complexity | when to use |
/// |---|---|---|---|
/// | `Exact` | [`ExactBackend`] | `O(k·E log V + 2ᶜ)` per window | accuracy baseline, test oracle |
/// | `Greedy` | [`GreedyBackend`] | `O(k·E log V + k² log k)` | the paper's hardware decoder model |
/// | `UnionFind` | [`UnionFindDecoder`] | `~O(E α(E))` | large distances / high-throughput sweeps |
/// | `Blossom` | [`BlossomBackend`] | `O(k·B log B + c³)` per window | exact decoding at large d / threshold studies |
/// | `Tree` | [`AltTreeBackend`] | near-linear in explored graph per window | exact decoding everywhere; fastest exact backend |
///
/// (`k` = defects, `V`/`E` = space-time graph size, `c` = largest cluster,
/// `B` = truncated-ball size ≪ `E`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatcherKind {
    /// Exact minimum-weight matching per cluster (refined-greedy fallback
    /// above the cluster-size threshold).  The default; [`Tree`](Self::Tree)
    /// is equally exact and much faster at large distances.
    #[default]
    Exact,
    /// The QECOOL-style greedy radius sweep of the paper's hardware decoder.
    Greedy,
    /// The almost-linear union-find decoder.
    UnionFind,
    /// The sparse blossom backend: exact MWPM without a dense cost matrix
    /// (truncated Dijkstra balls + per-cluster `O(c³)` primal–dual blossom).
    Blossom,
    /// The simultaneous alternating-tree backend: exact MWPM grown directly
    /// on the sparse graph — per-defect regions with dual variables, a
    /// global next-tight event queue, and lazy blossoms; no per-cluster
    /// dense solves at all.
    Tree,
}

impl MatcherKind {
    /// All selectable kinds, in documentation order.
    pub const ALL: [MatcherKind; 5] = [
        MatcherKind::Exact,
        MatcherKind::Greedy,
        MatcherKind::UnionFind,
        MatcherKind::Blossom,
        MatcherKind::Tree,
    ];

    /// The backend's CLI / report name (`exact`, `greedy`, `union-find`,
    /// `blossom`, `tree`).
    ///
    /// The backends themselves are constructed by the decoder crate's
    /// `DecoderConfig::backend()`, which threads its tuning knobs into them
    /// — this enum only names the choice.
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Exact => "exact",
            MatcherKind::Greedy => "greedy",
            MatcherKind::UnionFind => "union-find",
            MatcherKind::Blossom => "blossom",
            MatcherKind::Tree => "tree",
        }
    }

    /// Parses a CLI name as produced by [`MatcherKind::name`] (also accepts
    /// `uf` and `union_find` for the union-find backend, and `alt-tree` for
    /// the alternating-tree backend).
    pub fn parse(s: &str) -> Option<MatcherKind> {
        match s {
            "exact" => Some(MatcherKind::Exact),
            "greedy" => Some(MatcherKind::Greedy),
            "union-find" | "union_find" | "uf" => Some(MatcherKind::UnionFind),
            "blossom" => Some(MatcherKind::Blossom),
            "tree" | "alt-tree" | "alt_tree" => Some(MatcherKind::Tree),
            _ => None,
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn matchers_are_object_safe() {
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(ExactMatcher::default()),
            Box::new(GreedyMatcher::default()),
            Box::new(RefinedGreedyMatcher::default()),
            Box::new(AutoMatcher::default()),
        ];
        let mut problem = MatchingProblem::new(2);
        problem.set_pair_cost(0, 1, 1.0);
        problem.set_boundary_cost(0, 3.0);
        problem.set_boundary_cost(1, 3.0);
        for m in &matchers {
            let sol = m.solve(&problem);
            assert!(sol.is_complete());
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn every_backend_solves_through_the_trait_and_kinds_round_trip() {
        let graph = SyndromeGraph::line(&[1.0, 1.0, 1.0], 5.0);
        let backends: [Box<dyn DecoderBackend>; 5] = [
            Box::new(ExactBackend::default()),
            Box::new(GreedyBackend::default()),
            Box::new(UnionFindDecoder::default()),
            Box::new(BlossomBackend::default()),
            Box::new(AltTreeBackend::default()),
        ];
        for (kind, mut backend) in MatcherKind::ALL.into_iter().zip(backends) {
            let matching = backend.decode_defects(&graph, &[1, 2]);
            assert!(matching.is_perfect(2), "{}", backend.name());
            assert_eq!(backend.name(), kind.name());
            assert_eq!(MatcherKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MatcherKind::parse("uf"), Some(MatcherKind::UnionFind));
        assert_eq!(MatcherKind::parse("blossom"), Some(MatcherKind::Blossom));
        assert_eq!(MatcherKind::parse("alt-tree"), Some(MatcherKind::Tree));
        assert_eq!(MatcherKind::default(), MatcherKind::Exact);
    }
}
