//! Matching engines for surface-code decoding.
//!
//! Surface-code error decoding reduces to *minimum-weight matching with a
//! boundary*: every active detector node must be paired either with another
//! active node or with the lattice boundary so that the total cost (negative
//! log-likelihood of the implied physical error chains) is minimised.
//!
//! The paper estimates recovery operations with Kolmogorov's Blossom V for
//! its Monte-Carlo experiments (Figs. 3 and 8) and with the QECOOL-style
//! greedy matcher for its hardware decoder (Table IV).  Blossom V is not
//! redistributable, so this crate provides (see DESIGN.md §2):
//!
//! * [`ExactMatcher`] — exact minimum-weight matching by bitmask dynamic
//!   programming, usable up to ~20 active nodes; it serves both as the
//!   decoder for small instances and as the test oracle,
//! * [`GreedyMatcher`] — the radius-sweep greedy strategy of the paper's
//!   hardware decoder (Sec. VI-B), generalised to arbitrary edge costs,
//! * [`RefinedGreedyMatcher`] — greedy initialisation followed by 2-opt
//!   local improvement; this is the workhorse used for large instances and
//!   plays the role of Blossom V in the reproduction,
//! * [`AutoMatcher`] — picks [`ExactMatcher`] when the instance is small
//!   enough and [`RefinedGreedyMatcher`] otherwise.
//!
//! All matchers implement the [`Matcher`] trait and operate on a
//! [`MatchingProblem`], which is independent of lattice geometry: the decoder
//! crate converts syndrome data into pairwise path costs.
//!
//! # Example
//!
//! ```
//! use q3de_matching::{Matcher, MatchingProblem, ExactMatcher, MatchTarget};
//!
//! // Two active nodes close to each other and far from the boundary.
//! let mut problem = MatchingProblem::new(2);
//! problem.set_pair_cost(0, 1, 1.0);
//! problem.set_boundary_cost(0, 10.0);
//! problem.set_boundary_cost(1, 10.0);
//! let matching = ExactMatcher::default().solve(&problem);
//! assert_eq!(matching.target(0), MatchTarget::Node(1));
//! assert!((matching.total_cost(&problem) - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

mod exact;
mod greedy;
mod problem;
mod refine;

pub use exact::ExactMatcher;
pub use greedy::GreedyMatcher;
pub use problem::{MatchTarget, Matching, MatchingProblem};
pub use refine::{AutoMatcher, RefinedGreedyMatcher};

/// A strategy for solving a [`MatchingProblem`].
pub trait Matcher {
    /// Produces a complete matching: every node is paired with another node
    /// or with the boundary.
    fn solve(&self, problem: &MatchingProblem) -> Matching;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn matchers_are_object_safe() {
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(ExactMatcher::default()),
            Box::new(GreedyMatcher::default()),
            Box::new(RefinedGreedyMatcher::default()),
            Box::new(AutoMatcher::default()),
        ];
        let mut problem = MatchingProblem::new(2);
        problem.set_pair_cost(0, 1, 1.0);
        problem.set_boundary_cost(0, 3.0);
        problem.set_boundary_cost(1, 3.0);
        for m in &matchers {
            let sol = m.solve(&problem);
            assert!(sol.is_complete());
            assert!(!m.name().is_empty());
        }
    }
}
