//! The abstract matching problem and its solutions.

use std::fmt;

/// A dense minimum-weight matching problem with a boundary.
///
/// There are `n` nodes.  Every unordered pair `{i, j}` has a finite or
/// infinite pairing cost, and every node has a (possibly infinite) cost of
/// being matched to the boundary.  A solution pairs every node with exactly
/// one partner (another node or the boundary); boundary matches are
/// unlimited.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingProblem {
    num_nodes: usize,
    /// Row-major `n × n` symmetric cost matrix; the diagonal is unused.
    pair_costs: Vec<f64>,
    boundary_costs: Vec<f64>,
}

impl MatchingProblem {
    /// Creates a problem with `num_nodes` nodes, all pairwise and boundary
    /// costs initialised to `+∞` (i.e. disallowed).
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            pair_costs: vec![f64::INFINITY; num_nodes * num_nodes],
            boundary_costs: vec![f64::INFINITY; num_nodes],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Sets the cost of pairing nodes `i` and `j` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`, if either index is out of range, or if `cost` is
    /// negative or NaN.
    pub fn set_pair_cost(&mut self, i: usize, j: usize, cost: f64) {
        assert!(i != j, "cannot pair node {i} with itself");
        assert!(
            i < self.num_nodes && j < self.num_nodes,
            "node index out of range"
        );
        assert!(
            cost >= 0.0,
            "matching costs must be non-negative, got {cost}"
        );
        self.pair_costs[i * self.num_nodes + j] = cost;
        self.pair_costs[j * self.num_nodes + i] = cost;
    }

    /// Sets the cost of matching node `i` to the boundary.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `cost` is negative or NaN.
    pub fn set_boundary_cost(&mut self, i: usize, cost: f64) {
        assert!(i < self.num_nodes, "node index out of range");
        assert!(
            cost >= 0.0,
            "matching costs must be non-negative, got {cost}"
        );
        self.boundary_costs[i] = cost;
    }

    /// The cost of pairing nodes `i` and `j` (`+∞` if never set).
    pub fn pair_cost(&self, i: usize, j: usize) -> f64 {
        self.pair_costs[i * self.num_nodes + j]
    }

    /// The cost of matching node `i` to the boundary (`+∞` if never set).
    pub fn boundary_cost(&self, i: usize) -> f64 {
        self.boundary_costs[i]
    }

    /// Builds a problem by evaluating cost closures for every pair and node.
    pub fn from_fn<P, B>(num_nodes: usize, mut pair: P, mut boundary: B) -> Self
    where
        P: FnMut(usize, usize) -> f64,
        B: FnMut(usize) -> f64,
    {
        let mut problem = Self::new(num_nodes);
        for i in 0..num_nodes {
            problem.set_boundary_cost(i, boundary(i));
            for j in (i + 1)..num_nodes {
                problem.set_pair_cost(i, j, pair(i, j));
            }
        }
        problem
    }

    /// The cost of a candidate assignment of node `i` to `target`.
    pub fn cost_of(&self, i: usize, target: MatchTarget) -> f64 {
        match target {
            MatchTarget::Node(j) => self.pair_cost(i, j),
            MatchTarget::Boundary => self.boundary_cost(i),
        }
    }
}

/// The partner a node is matched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchTarget {
    /// Matched with another active node.
    Node(usize),
    /// Matched with the lattice boundary.
    Boundary,
}

/// A complete matching: every node is assigned a [`MatchTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    assignment: Vec<MatchTarget>,
}

impl Matching {
    /// Builds a matching from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not an involution, i.e. if some node `i`
    /// is matched to `j` but `j` is not matched back to `i`.
    pub fn new(assignment: Vec<MatchTarget>) -> Self {
        for (i, &t) in assignment.iter().enumerate() {
            if let MatchTarget::Node(j) = t {
                assert!(
                    matches!(assignment.get(j), Some(&MatchTarget::Node(k)) if k == i),
                    "node {i} is matched to {j} but not vice versa"
                );
            }
        }
        Self { assignment }
    }

    /// An all-boundary matching over `n` nodes (useful as a starting point).
    pub fn all_boundary(n: usize) -> Self {
        Self {
            assignment: vec![MatchTarget::Boundary; n],
        }
    }

    /// Number of nodes in the matching.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the matching covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The target node `i` is matched to.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn target(&self, i: usize) -> MatchTarget {
        self.assignment[i]
    }

    /// Iterates over all `(node, target)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (usize, MatchTarget)> + '_ {
        self.assignment.iter().copied().enumerate()
    }

    /// Iterates over the node–node pairs, each reported once with `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| match t {
                MatchTarget::Node(j) if i < j => Some((i, j)),
                _ => None,
            })
    }

    /// Iterates over the nodes matched to the boundary.
    pub fn boundary_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.assignment.iter().enumerate().filter_map(|(i, &t)| {
            if t == MatchTarget::Boundary {
                Some(i)
            } else {
                None
            }
        })
    }

    /// Whether every node has a partner and the assignment is an involution.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().enumerate().all(|(i, &t)| match t {
            MatchTarget::Boundary => true,
            MatchTarget::Node(j) => {
                j < self.assignment.len() && j != i && self.assignment[j] == MatchTarget::Node(i)
            }
        })
    }

    /// Total cost of the matching under `problem` (each pair counted once).
    pub fn total_cost(&self, problem: &MatchingProblem) -> f64 {
        let mut cost = 0.0;
        for (i, j) in self.pairs() {
            cost += problem.pair_cost(i, j);
        }
        for i in self.boundary_nodes() {
            cost += problem.boundary_cost(i);
        }
        cost
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (i, j) in self.pairs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}–{j}")?;
            first = false;
        }
        for i in self.boundary_nodes() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}–∂")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_default_to_infinity() {
        let p = MatchingProblem::new(3);
        assert!(p.pair_cost(0, 1).is_infinite());
        assert!(p.boundary_cost(2).is_infinite());
        assert_eq!(p.num_nodes(), 3);
    }

    #[test]
    fn pair_cost_is_symmetric() {
        let mut p = MatchingProblem::new(3);
        p.set_pair_cost(0, 2, 1.5);
        assert_eq!(p.pair_cost(0, 2), 1.5);
        assert_eq!(p.pair_cost(2, 0), 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot pair node 1 with itself")]
    fn self_pairing_is_rejected() {
        let mut p = MatchingProblem::new(3);
        p.set_pair_cost(1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_is_rejected() {
        let mut p = MatchingProblem::new(2);
        p.set_pair_cost(0, 1, -1.0);
    }

    #[test]
    fn from_fn_populates_all_entries() {
        let p = MatchingProblem::from_fn(4, |i, j| (i + j) as f64, |i| 10.0 + i as f64);
        assert_eq!(p.pair_cost(1, 3), 4.0);
        assert_eq!(p.pair_cost(3, 1), 4.0);
        assert_eq!(p.boundary_cost(2), 12.0);
        assert_eq!(p.cost_of(2, MatchTarget::Boundary), 12.0);
        assert_eq!(p.cost_of(1, MatchTarget::Node(0)), 1.0);
    }

    #[test]
    fn matching_involution_is_enforced() {
        let m = Matching::new(vec![
            MatchTarget::Node(1),
            MatchTarget::Node(0),
            MatchTarget::Boundary,
        ]);
        assert!(m.is_complete());
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(m.boundary_nodes().collect::<Vec<_>>(), vec![2]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "not vice versa")]
    fn asymmetric_matching_is_rejected() {
        let _ = Matching::new(vec![MatchTarget::Node(1), MatchTarget::Boundary]);
    }

    #[test]
    fn total_cost_counts_each_pair_once() {
        let mut p = MatchingProblem::new(4);
        p.set_pair_cost(0, 1, 2.0);
        p.set_pair_cost(2, 3, 3.0);
        for i in 0..4 {
            p.set_boundary_cost(i, 100.0);
        }
        let m = Matching::new(vec![
            MatchTarget::Node(1),
            MatchTarget::Node(0),
            MatchTarget::Node(3),
            MatchTarget::Node(2),
        ]);
        assert_eq!(m.total_cost(&p), 5.0);
    }

    #[test]
    fn all_boundary_matching_cost() {
        let mut p = MatchingProblem::new(2);
        p.set_boundary_cost(0, 1.0);
        p.set_boundary_cost(1, 2.5);
        let m = Matching::all_boundary(2);
        assert!(m.is_complete());
        assert_eq!(m.total_cost(&p), 3.5);
    }

    #[test]
    fn display_lists_pairs_and_boundary() {
        let m = Matching::new(vec![
            MatchTarget::Node(1),
            MatchTarget::Node(0),
            MatchTarget::Boundary,
        ]);
        let s = format!("{m}");
        assert!(s.contains("0–1"));
        assert!(s.contains("2–∂"));
    }
}
