//! Scalability and overhead models (Sec. VIII of the paper).
//!
//! * [`qubit_density`] — the Fig. 9 model: the chip area and qubit density
//!   (relative to Sycamore) needed to reach a target logical error rate,
//!   with and without Q3DE, as anomaly size / frequency / duration vary.
//! * [`memory_overhead`] — the Table III formulas for the extra buffer
//!   memory Q3DE adds to the decoding pipeline.
//! * [`decoder_hw`] — the Table IV resource/throughput model of the
//!   greedy-matching decoder unit (our substitution for the paper's Vitis
//!   HLS synthesis; see DESIGN.md).
//! * [`effective`] — the Eq. (1) effective logical error rate and the
//!   Eq. (4) effective code-distance reduction.
//! * [`stats`] — Wilson-score confidence-interval helpers used by the
//!   adaptive Monte-Carlo experiment engine.

#![deny(missing_docs)]

pub mod decoder_hw;
pub mod effective;
pub mod memory_overhead;
pub mod qubit_density;
pub mod stats;

pub use decoder_hw::{DecoderHardwareModel, DecoderResources, DecoderVariant};
pub use effective::{effective_distance_reduction, effective_logical_error_rate};
pub use memory_overhead::MemoryOverheadModel;
pub use qubit_density::{ScalabilityConfig, ScalabilityModel, ScalabilityPoint};
pub use stats::{relative_half_width, wilson_center, wilson_half_width, wilson_interval, Z_95};
