//! Effective error-rate and effective-distance formulas.

/// The effective logical error rate per cycle of Eq. (1):
/// `(1 − f·τ)·p_L + f·τ·p_L,ano`, where `f` is the MBBE frequency in Hz and
/// `τ` the MBBE duration in seconds.
///
/// ```
/// use q3de_scaling::effective_logical_error_rate;
/// // 1 Hz strikes lasting 25 ms that raise p_L by 1000× lift the effective
/// // rate by roughly 26×.
/// let eff = effective_logical_error_rate(1e-9, 1e-6, 1.0, 25e-3);
/// assert!(eff > 2e-8 && eff < 3e-8);
/// ```
pub fn effective_logical_error_rate(
    p_l: f64,
    p_l_ano: f64,
    frequency_hz: f64,
    duration_s: f64,
) -> f64 {
    let duty = (frequency_hz * duration_s).clamp(0.0, 1.0);
    (1.0 - duty) * p_l + duty * p_l_ano
}

/// The effective code-distance reduction of Eq. (4):
///
/// ```text
/// d − d_eff = round( ln(p_L,ano / p_L) / ( ½ · ln(p_L(d−2) / p_L(d)) ) )
/// ```
///
/// `p_l_ano` is the logical error rate with the MBBE, `p_l_d` without it at
/// distance `d`, and `p_l_d_minus_2` without it at distance `d − 2`.
/// Returns `None` when the rates do not allow a meaningful estimate (zero or
/// non-decreasing rates).
///
/// ```
/// use q3de_scaling::effective_distance_reduction;
/// // If removing the MBBE lowers p_L by the same factor as going from d−2 to
/// // d twice, the effective reduction is 4.
/// let per_step = 0.1_f64; // p_L(d) = 0.1 · p_L(d−2)
/// let reduction = effective_distance_reduction(1e-4 / per_step.powi(2), 1e-4, 1e-3).unwrap();
/// assert_eq!(reduction, 4.0);
/// ```
pub fn effective_distance_reduction(p_l_ano: f64, p_l_d: f64, p_l_d_minus_2: f64) -> Option<f64> {
    if p_l_ano <= 0.0 || p_l_d <= 0.0 || p_l_d_minus_2 <= 0.0 {
        return None;
    }
    if p_l_ano < p_l_d || p_l_d_minus_2 <= p_l_d {
        return None;
    }
    let numerator = (p_l_ano / p_l_d).ln();
    let denominator = 0.5 * (p_l_d_minus_2 / p_l_d).ln();
    if denominator <= 0.0 {
        return None;
    }
    Some((numerator / denominator).round())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_reduces_to_p_l_without_strikes() {
        assert_eq!(effective_logical_error_rate(1e-9, 1e-3, 0.0, 25e-3), 1e-9);
    }

    #[test]
    fn effective_rate_is_dominated_by_bursts_when_duty_is_high() {
        let eff = effective_logical_error_rate(1e-9, 1e-3, 40.0, 25e-3);
        assert_eq!(eff, 1e-3);
    }

    #[test]
    fn mcewen_parameters_give_two_orders_of_magnitude_increase() {
        // Sec. III-A: with f·τ = 2.5 % and p_L,ano/p_L ≈ 4000 (typical for
        // d = 15 at p = 1e-3), the effective rate increases ~100×.
        let p_l = 1e-8;
        let p_l_ano = 4e-5;
        let eff = effective_logical_error_rate(p_l, p_l_ano, 1.0, 25e-3);
        let ratio = eff / p_l;
        assert!(ratio > 50.0 && ratio < 200.0, "increase ratio {ratio}");
    }

    #[test]
    fn distance_reduction_matches_first_order_expectations() {
        // without rollback the reduction should converge to 2·d_ano
        let per_step = 0.05_f64;
        let p_l_d = 1e-6;
        let p_l_dm2 = p_l_d / per_step;
        // MBBE costs 2·d_ano = 8 → p_L,ano = p_L(d) / per_step⁴
        let p_l_ano = p_l_d / per_step.powi(4);
        assert_eq!(
            effective_distance_reduction(p_l_ano, p_l_d, p_l_dm2),
            Some(8.0)
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(effective_distance_reduction(0.0, 1e-6, 1e-5), None);
        assert_eq!(effective_distance_reduction(1e-4, 1e-6, 1e-7), None);
        assert_eq!(effective_distance_reduction(1e-7, 1e-6, 1e-5), None);
    }
}
