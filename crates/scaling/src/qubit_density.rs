//! The Fig. 9 scalability model: required chip area and qubit density.

/// Configuration of the scalability model (the paper's Sec. VIII-A setup).
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityConfig {
    /// Target logical error rate per cycle (10⁻¹⁰ in Fig. 9).
    pub target_logical_error_rate: f64,
    /// Physical error probability over the threshold value, `p / p_th` (0.1).
    pub p_over_pth: f64,
    /// Code-cycle duration in seconds (1 µs).
    pub code_cycle_s: f64,
    /// Anomaly size `d_ano` at density ratio 1 (4).
    pub base_anomaly_size: f64,
    /// Cosmic-ray frequency at area ratio 1, in Hz (0.1).
    pub base_frequency_hz: f64,
    /// MBBE duration `τ_ano` in seconds (25 ms).
    pub duration_s: f64,
    /// Anomaly-detection latency `c_lat` in code cycles (30): with Q3DE the
    /// logical qubit is exposed to the burst only for this long before the
    /// code expansion protects it.
    pub detection_latency_cycles: f64,
    /// Code distance corresponding to area ratio 1 × density ratio 1.  The
    /// Sycamore-sized reference patch holds roughly `2·5²` qubits, i.e.
    /// distance 5.
    pub base_distance: f64,
    /// Exponent with which the anomaly size grows with the qubit density.
    /// The quasi-particle diffusion radius is a fixed physical length, so the
    /// number of data-qubit columns it spans grows with the *linear* qubit
    /// density, i.e. with the square root of the areal density (0.5).
    pub anomaly_size_density_exponent: f64,
    /// Whether the strike frequency grows linearly with the chip area (the
    /// paper's sweep assumption).
    pub frequency_scales_with_area: bool,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        Self {
            target_logical_error_rate: 1e-10,
            p_over_pth: 0.1,
            code_cycle_s: 1e-6,
            base_anomaly_size: 4.0,
            base_frequency_hz: 0.1,
            duration_s: 25e-3,
            detection_latency_cycles: 30.0,
            base_distance: 5.0,
            anomaly_size_density_exponent: 0.5,
            frequency_scales_with_area: true,
        }
    }
}

/// One point of the Fig. 9 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Chip area per logical qubit, relative to the Sycamore reference.
    pub chip_area_ratio: f64,
    /// Qubit density, relative to the Sycamore reference.
    pub qubit_density_ratio: f64,
    /// The code distance afforded by that area × density budget.
    pub code_distance: usize,
    /// The time-averaged logical error rate at that operating point.
    pub average_logical_error_rate: f64,
}

/// The analytic scalability model behind Fig. 9.
///
/// The paper simulates 10⁸ cycles of Poisson cosmic-ray arrivals; because
/// strikes are rare and never overlap at the evaluated rates, the
/// time-average it measures equals the closed-form expectation used here:
/// a fraction `f·τ` of the time (baseline) or `f·c_lat·τ_cyc` (Q3DE) the
/// effective distance is reduced by `2·d_ano` (baseline) or `d_ano` (Q3DE,
/// thanks to decoder re-execution), and the logical error rate follows
/// `p_L(d) = 0.1 · (p/p_th)^⌊(d_eff+1)/2⌋`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalabilityModel {
    config: ScalabilityConfig,
}

impl ScalabilityModel {
    /// Creates the model.
    pub fn new(config: ScalabilityConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScalabilityConfig {
        &self.config
    }

    /// The logical error rate of an MBBE-free patch of (possibly effective)
    /// distance `d_eff`: `0.1 · (p/p_th)^⌊(d_eff+1)/2⌋`, saturating at 0.5
    /// when the distance is exhausted.
    pub fn logical_error_rate(&self, d_eff: f64) -> f64 {
        if d_eff < 1.0 {
            return 0.5;
        }
        let exponent = ((d_eff + 1.0) / 2.0).floor();
        (0.1 * self.config.p_over_pth.powf(exponent)).min(0.5)
    }

    /// The code distance afforded by a given area × density budget: the
    /// number of physical qubits per logical qubit scales as the product of
    /// the two ratios and the distance as its square root.
    pub fn code_distance(&self, chip_area_ratio: f64, qubit_density_ratio: f64) -> usize {
        (self.config.base_distance * (chip_area_ratio * qubit_density_ratio).sqrt()).floor()
            as usize
    }

    /// The time-averaged logical error rate of one operating point.
    pub fn average_rate(
        &self,
        chip_area_ratio: f64,
        qubit_density_ratio: f64,
        use_q3de: bool,
    ) -> ScalabilityPoint {
        let cfg = &self.config;
        let d = self.code_distance(chip_area_ratio, qubit_density_ratio) as f64;
        let anomaly_size =
            cfg.base_anomaly_size * qubit_density_ratio.powf(cfg.anomaly_size_density_exponent);
        let frequency = if cfg.frequency_scales_with_area {
            cfg.base_frequency_hz * chip_area_ratio
        } else {
            cfg.base_frequency_hz
        };
        let (exposure_s, distance_loss) = if use_q3de {
            (
                cfg.detection_latency_cycles * cfg.code_cycle_s,
                anomaly_size,
            )
        } else {
            (cfg.duration_s, 2.0 * anomaly_size)
        };
        let duty = (frequency * exposure_s).clamp(0.0, 1.0);
        let healthy = self.logical_error_rate(d);
        let exposed = self.logical_error_rate(d - distance_loss);
        ScalabilityPoint {
            chip_area_ratio,
            qubit_density_ratio,
            code_distance: d as usize,
            average_logical_error_rate: (1.0 - duty) * healthy + duty * exposed,
        }
    }

    /// The smallest qubit-density ratio among `candidates` that reaches the
    /// target logical error rate for the given chip area, or `None` when
    /// even the largest candidate is insufficient.
    pub fn required_density(
        &self,
        chip_area_ratio: f64,
        use_q3de: bool,
        candidates: &[f64],
    ) -> Option<ScalabilityPoint> {
        candidates
            .iter()
            .map(|&density| self.average_rate(chip_area_ratio, density, use_q3de))
            .find(|p| p.average_logical_error_rate <= self.config.target_logical_error_rate)
    }

    /// Sweeps chip-area ratios and returns the required density for each
    /// (the Fig. 9 curves).
    pub fn sweep(
        &self,
        area_ratios: &[f64],
        density_candidates: &[f64],
        use_q3de: bool,
    ) -> Vec<(f64, Option<ScalabilityPoint>)> {
        area_ratios
            .iter()
            .map(|&a| (a, self.required_density(a, use_q3de, density_candidates)))
            .collect()
    }
}

/// A logarithmically spaced grid of candidate ratios from `min` to `max`.
pub fn log_grid(min: f64, max: f64, points: usize) -> Vec<f64> {
    assert!(
        points >= 2 && min > 0.0 && max > min,
        "invalid log grid parameters"
    );
    let step = (max / min).powf(1.0 / (points - 1) as f64);
    (0..points).map(|i| min * step.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScalabilityModel {
        ScalabilityModel::new(ScalabilityConfig::default())
    }

    #[test]
    fn logical_error_rate_follows_the_exponential_law() {
        let m = model();
        assert!((m.logical_error_rate(11.0) - 0.1_f64 * 0.1_f64.powi(6)).abs() < 1e-18);
        assert!(m.logical_error_rate(13.0) < m.logical_error_rate(11.0));
        assert_eq!(m.logical_error_rate(0.0), 0.5);
        assert_eq!(m.logical_error_rate(-3.0), 0.5);
    }

    #[test]
    fn code_distance_scales_with_the_qubit_budget() {
        let m = model();
        assert_eq!(m.code_distance(1.0, 1.0), 5);
        assert_eq!(m.code_distance(4.0, 1.0), 10);
        assert_eq!(m.code_distance(1.0, 9.0), 15);
    }

    #[test]
    fn q3de_needs_no_more_density_than_the_baseline() {
        let m = model();
        let densities = log_grid(1.0, 1000.0, 60);
        for &area in &[1.0, 3.0, 10.0, 30.0, 100.0] {
            let q3de = m.required_density(area, true, &densities);
            let baseline = m.required_density(area, false, &densities);
            match (q3de, baseline) {
                (Some(q), Some(b)) => assert!(
                    q.qubit_density_ratio <= b.qubit_density_ratio + 1e-9,
                    "area {area}: Q3DE {} vs baseline {}",
                    q.qubit_density_ratio,
                    b.qubit_density_ratio
                ),
                (Some(_), None) => {} // Q3DE reaches the target, baseline never does
                (None, Some(_)) => panic!("baseline reached the target but Q3DE did not"),
                (None, None) => {}
            }
        }
    }

    #[test]
    fn q3de_saves_about_an_order_of_magnitude_at_moderate_density() {
        // Fig. 9: "when the qubit density ratio is about ten, the reduction
        // of qubit count is up to about ten times".
        let m = model();
        let densities = log_grid(1.0, 5000.0, 400);
        let area = 4.0;
        let q3de = m
            .required_density(area, true, &densities)
            .expect("Q3DE feasible");
        let baseline = m
            .required_density(area, false, &densities)
            .expect("baseline feasible");
        let ratio = baseline.qubit_density_ratio / q3de.qubit_density_ratio;
        assert!(ratio > 3.0, "density saving {ratio} should be substantial");
        assert!(q3de.qubit_density_ratio >= 1.0);
    }

    #[test]
    fn without_cosmic_rays_density_is_inverse_to_area() {
        let cfg = ScalabilityConfig {
            base_frequency_hz: 0.0,
            ..ScalabilityConfig::default()
        };
        let m = ScalabilityModel::new(cfg);
        let densities = log_grid(0.05, 100.0, 400);
        let a1 = m.required_density(1.0, false, &densities).unwrap();
        let a4 = m.required_density(4.0, false, &densities).unwrap();
        let product1 = a1.qubit_density_ratio * 1.0;
        let product4 = a4.qubit_density_ratio * 4.0;
        assert!(
            (product1 / product4 - 1.0).abs() < 0.25,
            "area×density should be constant without MBBEs: {product1} vs {product4}"
        );
    }

    #[test]
    fn average_rate_degrades_with_larger_anomalies() {
        let m = model();
        let small = m.average_rate(20.0, 4.0, false);
        let cfg = ScalabilityConfig {
            base_anomaly_size: 8.0,
            ..ScalabilityConfig::default()
        };
        let worse = ScalabilityModel::new(cfg).average_rate(20.0, 4.0, false);
        assert!(worse.average_logical_error_rate >= small.average_logical_error_rate);
        assert_eq!(small.code_distance, worse.code_distance);
    }

    #[test]
    fn log_grid_is_geometric() {
        let g = log_grid(1.0, 100.0, 3);
        assert_eq!(g.len(), 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid log grid")]
    fn bad_log_grid_panics() {
        let _ = log_grid(10.0, 1.0, 5);
    }
}
