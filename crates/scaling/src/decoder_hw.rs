//! Table IV: resource and throughput model of the greedy decoder unit.
//!
//! The paper synthesises the QECOOL-style greedy matcher with Vitis HLS for
//! a Zynq UltraScale+ FPGA.  We cannot run HLS here, so this module provides
//! an analytic resource model whose coefficients are calibrated against the
//! four published design points (40/80-entry active-node queues, with and
//! without the Q3DE modification).  The model preserves the paper's
//! conclusions: the MBBE-aware matching costs roughly 40 % more LUTs
//! (wider 16-bit path arithmetic and extra candidate paths) while losing
//! less than 10 % throughput.

/// Which matching datapath is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderVariant {
    /// The anomaly-blind baseline decoder (8-bit path lengths).
    Base,
    /// The Q3DE decoder with anomaly-aware path selection (16-bit path
    /// lengths, six candidate paths per pair).
    Q3de,
}

/// Estimated FPGA resources and throughput of one decoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderResources {
    /// Active-node-queue entry count.
    pub anq_entries: usize,
    /// The modelled variant.
    pub variant: DecoderVariant,
    /// Estimated flip-flop count.
    pub flip_flops: f64,
    /// Estimated LUT count.
    pub luts: f64,
    /// Estimated matching throughput in matches per microsecond at 400 MHz.
    pub matches_per_us: f64,
}

/// The calibrated decoder-hardware model.
#[derive(Debug, Clone, Copy)]
pub struct DecoderHardwareModel {
    /// Clock frequency in MHz (400 in the paper).
    pub clock_mhz: f64,
}

impl Default for DecoderHardwareModel {
    fn default() -> Self {
        Self { clock_mhz: 400.0 }
    }
}

impl DecoderHardwareModel {
    /// Creates the model at the paper's 400 MHz operating point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-entry and fixed flip-flop costs: position, distance and pipeline
    /// registers per ANQ entry, plus the controller.
    fn ff_coefficients(variant: DecoderVariant) -> (f64, f64) {
        match variant {
            // (per-entry FFs, fixed FFs) calibrated on the 40/80-entry points
            DecoderVariant::Base => (105.5, 4771.0),
            DecoderVariant::Q3de => (222.4, 4959.0),
        }
    }

    /// Quadratic LUT model: the all-to-all path evaluation and comparison
    /// tree grows with the square of the entry count.
    fn lut_coefficients(variant: DecoderVariant) -> (f64, f64) {
        match variant {
            DecoderVariant::Base => (4.581, 7349.0),
            DecoderVariant::Q3de => (7.158, 8826.0),
        }
    }

    /// Cycles needed per committed match: pair evaluation is pipelined but
    /// the selection latency grows super-linearly with the entry count; the
    /// Q3DE path comparison adds a small constant factor.
    fn cycles_per_match(variant: DecoderVariant, entries: usize) -> f64 {
        let base = 0.487 * (entries as f64).powf(1.4);
        match variant {
            DecoderVariant::Base => base,
            DecoderVariant::Q3de => base * 1.08,
        }
    }

    /// Estimates the resources of one configuration.
    pub fn estimate(&self, entries: usize, variant: DecoderVariant) -> DecoderResources {
        let (ff_slope, ff_base) = Self::ff_coefficients(variant);
        let (lut_quad, lut_base) = Self::lut_coefficients(variant);
        let n = entries as f64;
        DecoderResources {
            anq_entries: entries,
            variant,
            flip_flops: ff_slope * n + ff_base,
            luts: lut_quad * n * n + lut_base,
            matches_per_us: self.clock_mhz / Self::cycles_per_match(variant, entries),
        }
    }

    /// Reproduces the four rows of Table IV.
    pub fn table4(&self) -> Vec<DecoderResources> {
        [
            (40, DecoderVariant::Base),
            (40, DecoderVariant::Q3de),
            (80, DecoderVariant::Base),
            (80, DecoderVariant::Q3de),
        ]
        .into_iter()
        .map(|(entries, variant)| self.estimate(entries, variant))
        .collect()
    }

    /// The ANQ entry count needed so that queue overflow is rarer than the
    /// target logical error rate (Sec. VIII-D quotes 30 entries for
    /// `p = 10⁻⁴, d = 15, p_L = 10⁻¹⁵` and 70 entries for
    /// `p = 10⁻³, d = 31, p_L = 10⁻¹⁵`).
    ///
    /// The number of active nodes produced per code cycle in both sectors is
    /// approximately Poisson with mean `λ ≈ 2·d²·3p`; the queue must be deep
    /// enough that the Poisson tail beyond its size is below
    /// `target_overflow`, with a ×2 engineering margin for the processing
    /// backlog.
    pub fn required_anq_entries(
        physical_error_rate: f64,
        distance: usize,
        target_overflow: f64,
    ) -> usize {
        let lambda = 2.0 * (distance as f64).powi(2) * 3.0 * physical_error_rate;
        // smallest n with P[Poisson(λ) > n] < target_overflow
        let mut term = (-lambda).exp();
        let mut cdf = term;
        let mut n = 0usize;
        while 1.0 - cdf >= target_overflow && n < 10_000 {
            n += 1;
            term *= lambda / n as f64;
            cdf += term;
        }
        (2 * n).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUBLISHED: [(usize, DecoderVariant, f64, f64, f64); 4] = [
        (40, DecoderVariant::Base, 8_991.0, 14_679.0, 4.66),
        (40, DecoderVariant::Q3de, 13_855.0, 20_279.0, 4.25),
        (80, DecoderVariant::Base, 13_211.0, 36_668.0, 1.81),
        (80, DecoderVariant::Q3de, 22_751.0, 54_638.0, 1.79),
    ];

    #[test]
    fn model_reproduces_table_four_within_tolerance() {
        let model = DecoderHardwareModel::new();
        for (entries, variant, ff, lut, throughput) in PUBLISHED {
            let est = model.estimate(entries, variant);
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(
                rel(est.flip_flops, ff) < 0.12,
                "FF {entries:?} {variant:?}: {}",
                est.flip_flops
            );
            assert!(
                rel(est.luts, lut) < 0.12,
                "LUT {entries:?} {variant:?}: {}",
                est.luts
            );
            assert!(
                rel(est.matches_per_us, throughput) < 0.15,
                "throughput {entries:?} {variant:?}: {}",
                est.matches_per_us
            );
        }
    }

    #[test]
    fn q3de_lut_overhead_is_roughly_forty_percent() {
        let model = DecoderHardwareModel::new();
        for entries in [40, 80] {
            let base = model.estimate(entries, DecoderVariant::Base);
            let q3de = model.estimate(entries, DecoderVariant::Q3de);
            let overhead = q3de.luts / base.luts - 1.0;
            assert!(
                (0.25..=0.60).contains(&overhead),
                "LUT overhead at {entries} entries is {overhead:.2}"
            );
            let slowdown = 1.0 - q3de.matches_per_us / base.matches_per_us;
            assert!(
                slowdown < 0.10,
                "throughput slow-down {slowdown:.2} too large"
            );
        }
    }

    #[test]
    fn table4_lists_four_configurations() {
        let rows = DecoderHardwareModel::new().table4();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].anq_entries, 40);
        assert_eq!(rows[3].variant, DecoderVariant::Q3de);
    }

    #[test]
    fn required_entries_grow_with_error_rate_and_distance() {
        let small = DecoderHardwareModel::required_anq_entries(1e-4, 15, 1e-15);
        let large = DecoderHardwareModel::required_anq_entries(1e-3, 31, 1e-15);
        assert!(small < large);
        assert!(small >= 1);
        // Sec. VIII-D quotes 30 and 70 entries for these two design points;
        // our Poisson occupancy model lands in the same regime.
        assert!((10..=60).contains(&small), "small design point {small}");
        assert!((40..=160).contains(&large), "large design point {large}");
    }
}
