//! Binomial confidence-interval helpers (Wilson score).
//!
//! The Monte-Carlo sweeps estimate failure probabilities from
//! `failures / shots` tallies.  The adaptive experiment engine
//! (`q3de_sim::engine`) stops sampling a parameter point once the *Wilson
//! score interval* of its tally is narrow enough relative to the estimate;
//! the Wilson interval is preferred over the normal (Wald) interval because
//! it stays well-behaved in exactly the regime cosmic-ray sweeps live in:
//! very small failure counts, including zero.

/// The two-sided 95 % normal quantile, `z = Φ⁻¹(0.975)`.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// The Wilson score interval `(low, high)` for a binomial proportion
/// estimated from `failures` successes in `shots` trials at confidence
/// parameter `z` (e.g. [`Z_95`]).
///
/// Returns `(0.0, 1.0)` when `shots == 0` (no information).
///
/// ```
/// use q3de_scaling::{wilson_interval, Z_95};
/// let (low, high) = wilson_interval(10, 100, Z_95);
/// assert!((low - 0.0552).abs() < 1e-3);
/// assert!((high - 0.1744).abs() < 1e-3);
/// ```
pub fn wilson_interval(failures: usize, shots: usize, z: f64) -> (f64, f64) {
    if shots == 0 {
        return (0.0, 1.0);
    }
    let center = wilson_center(failures, shots, z);
    let half = wilson_half_width(failures, shots, z);
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The centre of the Wilson score interval,
/// `(p̂ + z²/2n) / (1 + z²/n)`.
///
/// Returns `0.0` when `shots == 0`.
pub fn wilson_center(failures: usize, shots: usize, z: f64) -> f64 {
    if shots == 0 {
        return 0.0;
    }
    let n = shots as f64;
    let p = failures as f64 / n;
    let zz = z * z;
    (p + zz / (2.0 * n)) / (1.0 + zz / n)
}

/// The half-width of the Wilson score interval,
/// `z/(1 + z²/n) · √(p̂(1−p̂)/n + z²/4n²)`.
///
/// Returns `1.0` when `shots == 0` (the vacuous `[0, 1]` interval).
pub fn wilson_half_width(failures: usize, shots: usize, z: f64) -> f64 {
    if shots == 0 {
        return 1.0;
    }
    let n = shots as f64;
    let p = failures as f64 / n;
    let zz = z * z;
    z / (1.0 + zz / n) * (p * (1.0 - p) / n + zz / (4.0 * n * n)).sqrt()
}

/// The Wilson half-width relative to the interval centre — the "relative
/// standard error" the adaptive engine drives below a target.
///
/// Returns [`f64::INFINITY`] when `failures == 0` (or `shots == 0`): a
/// zero-failure tally carries no meaningful relative precision, so
/// rare-event points keep sampling until their shot ceiling instead of
/// stopping on a spuriously "converged" empty tally.
///
/// ```
/// use q3de_scaling::{relative_half_width, Z_95};
/// assert!(relative_half_width(0, 10_000, Z_95).is_infinite());
/// let rse = relative_half_width(400, 10_000, Z_95);
/// assert!(rse > 0.0 && rse < 0.11);
/// ```
pub fn relative_half_width(failures: usize, shots: usize, z: f64) -> f64 {
    if failures == 0 || shots == 0 {
        return f64::INFINITY;
    }
    wilson_half_width(failures, shots, z) / wilson_center(failures, shots, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_textbook_value() {
        // 10/100 at 95 %: the classic worked example.
        let (low, high) = wilson_interval(10, 100, Z_95);
        assert!((low - 0.05522).abs() < 5e-4, "low {low}");
        assert!((high - 0.17436).abs() < 5e-4, "high {high}");
    }

    #[test]
    fn interval_brackets_the_point_estimate() {
        for &(f, n) in &[(1usize, 50usize), (7, 200), (199, 200), (100, 100)] {
            let (low, high) = wilson_interval(f, n, Z_95);
            let p = f as f64 / n as f64;
            assert!(low <= p && p <= high, "{f}/{n}: [{low}, {high}] vs {p}");
            assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
        }
    }

    #[test]
    fn interval_narrows_with_more_shots() {
        let w_small = wilson_half_width(10, 100, Z_95);
        let w_large = wilson_half_width(100, 1000, Z_95);
        assert!(w_large < w_small);
    }

    #[test]
    fn zero_failures_yield_infinite_relative_error() {
        assert!(relative_half_width(0, 1_000_000, Z_95).is_infinite());
        assert!(relative_half_width(5, 0, Z_95).is_infinite());
        // ... but the absolute interval still shrinks towards zero (the low
        // end is 0 up to floating-point residue).
        let (low, high) = wilson_interval(0, 1_000_000, Z_95);
        assert!((0.0..1e-12).contains(&low), "low {low}");
        assert!(high < 1e-4);
    }

    #[test]
    fn no_information_gives_the_unit_interval() {
        assert_eq!(wilson_interval(0, 0, Z_95), (0.0, 1.0));
        assert_eq!(wilson_half_width(0, 0, Z_95), 1.0);
        assert_eq!(wilson_center(0, 0, Z_95), 0.0);
    }

    #[test]
    fn relative_error_decreases_monotonically_along_a_growing_tally() {
        // Fix the true rate at 4 % and grow the tally: the relative error
        // must fall below 10 % well before 10⁵ shots.
        let mut previous = f64::INFINITY;
        for &n in &[100usize, 1_000, 10_000, 100_000] {
            let rse = relative_half_width(n / 25, n, Z_95);
            assert!(rse < previous, "rse {rse} at n={n}");
            previous = rse;
        }
        assert!(previous < 0.1);
    }
}
