//! Table III: the additional buffer memory required by decoder re-execution.

/// The memory-overhead model of Table III, parameterised by the code
/// distance `d` and the detection window `c_win`.
///
/// All sizes are per logical qubit, in bits.  The factor 2 accounts for the
/// two decoding sectors (`X` and `Z`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryOverheadModel {
    /// Code distance `d`.
    pub distance: usize,
    /// Detection window `c_win` in code cycles.
    pub window: usize,
}

impl MemoryOverheadModel {
    /// Creates the model (the paper evaluates `d = 31`, `c_win = 300`).
    pub fn new(distance: usize, window: usize) -> Self {
        Self { distance, window }
    }

    /// The paper's Table III operating point.
    pub fn table3() -> Self {
        Self::new(31, 300)
    }

    /// Syndrome-queue size: `2·d²·(c_win + √(2·c_win))` bits.
    pub fn syndrome_queue_bits(&self) -> f64 {
        let d2 = (self.distance * self.distance) as f64;
        let cwin = self.window as f64;
        2.0 * d2 * (cwin + (2.0 * cwin).sqrt())
    }

    /// Active-node-counter size: `2·d²·log₂(c_win)` bits.
    pub fn active_node_counter_bits(&self) -> f64 {
        let d2 = (self.distance * self.distance) as f64;
        2.0 * d2 * (self.window as f64).log2()
    }

    /// Matching-queue size: `2·d²·√(c_win/2)` bits.
    pub fn matching_queue_bits(&self) -> f64 {
        let d2 = (self.distance * self.distance) as f64;
        2.0 * d2 * (self.window as f64 / 2.0).sqrt()
    }

    /// Syndrome-queue size of an architecture *without* MBBE support, which
    /// only needs to retain `d` layers: `2·d³` bits.
    pub fn baseline_syndrome_queue_bits(&self) -> f64 {
        2.0 * (self.distance as f64).powi(3)
    }

    /// Total additional memory (syndrome queue + counters + matching queue).
    pub fn total_bits(&self) -> f64 {
        self.syndrome_queue_bits() + self.active_node_counter_bits() + self.matching_queue_bits()
    }

    /// Ratio of the enlarged syndrome queue to the MBBE-free queue
    /// ("about ten times larger" in Sec. VIII-C).
    pub fn syndrome_queue_overhead_ratio(&self) -> f64 {
        self.syndrome_queue_bits() / self.baseline_syndrome_queue_bits()
    }

    /// Helper: bits → kibibits, matching the units of Table III.
    pub fn to_kbit(bits: f64) -> f64 {
        bits / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_match_the_paper() {
        // Table III: syndrome queue 623 kbit, counters 16 kbit, matching
        // queue 24 kbit for d = 31, c_win = 300.
        let m = MemoryOverheadModel::table3();
        let syndrome = MemoryOverheadModel::to_kbit(m.syndrome_queue_bits());
        let counters = MemoryOverheadModel::to_kbit(m.active_node_counter_bits());
        let matching = MemoryOverheadModel::to_kbit(m.matching_queue_bits());
        assert!(
            (syndrome - 623.0).abs() < 15.0,
            "syndrome queue {syndrome} kbit"
        );
        assert!(
            (counters - 16.0).abs() < 1.0,
            "active node counter {counters} kbit"
        );
        assert!(
            (matching - 24.0).abs() < 1.0,
            "matching queue {matching} kbit"
        );
    }

    #[test]
    fn baseline_queue_is_roughly_ten_times_smaller() {
        let m = MemoryOverheadModel::table3();
        // 2·d³ ≈ 58 kbit (Sec. VIII-C) and the ratio is about ten.
        let baseline = MemoryOverheadModel::to_kbit(m.baseline_syndrome_queue_bits());
        assert!((baseline - 59.6).abs() < 2.0, "baseline {baseline} kbit");
        let ratio = m.syndrome_queue_overhead_ratio();
        assert!(ratio > 8.0 && ratio < 12.0, "overhead ratio {ratio}");
    }

    #[test]
    fn total_is_the_sum_of_components() {
        let m = MemoryOverheadModel::new(21, 200);
        let total = m.total_bits();
        let sum = m.syndrome_queue_bits() + m.active_node_counter_bits() + m.matching_queue_bits();
        assert!((total - sum).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn overhead_shrinks_when_window_approaches_distance() {
        // Sec. VIII-C: if c_win is comparable to d the overhead is almost
        // negligible.
        let large_window = MemoryOverheadModel::new(31, 300);
        let small_window = MemoryOverheadModel::new(31, 31);
        assert!(
            small_window.syndrome_queue_overhead_ratio()
                < large_window.syndrome_queue_overhead_ratio() / 5.0
        );
    }
}
