//! Space-time surface-code decoders with anomaly-aware weighting and
//! decoder re-execution.
//!
//! The decoding pipeline mirrors Sec. II-A and Sec. VI of the paper:
//!
//! 1. each code cycle produces one layer of syndrome values
//!    ([`SyndromeHistory`]),
//! 2. consecutive layers are XORed into *detection events*
//!    ([`DetectionEvent`]) that live on a 3D space-time lattice,
//! 3. the decoder pairs every detection event with another event or with a
//!    lattice boundary at minimum total weight, where the weight of an edge
//!    is the negative log-likelihood of the corresponding physical error
//!    ([`WeightModel`]),
//! 4. the parity of corrections crossing the homological cut, combined with
//!    the parity of actual errors on the cut, decides whether a logical
//!    error survived ([`DecodeOutcome`]).
//!
//! The *optimized error DEcoding* of Q3DE enters through
//! [`WeightModel::AnomalyAware`]: when the anomaly-detection unit has
//! localised an MBBE, the decoder is re-executed on the rolled-back syndrome
//! window with the edges inside the anomalous region re-weighted to
//! `−log(p_ano / (1 − p_ano))` (≈ 0 for `p_ano = 0.5`), which recovers the
//! `d − d_ano` effective distance of the paper's Case 3 analysis.
//! [`ReExecutingDecoder`] packages the two-pass flow.
//!
//! # Persistent decoder state
//!
//! Decoding must keep up with the syndrome stream even while a burst
//! inflates the defect density, so the hot path never rebuilds what it can
//! reuse.  All decoding runs through a [`DecoderContext`], which caches the
//! space-time graph keyed by *(error kind, layer-graph shape, window
//! depth)* and treats the [`WeightModel`] as a weight epoch:
//!
//! * same window shape, same model → the cached graph is reused untouched;
//! * model changed (anomaly re-weighting, the rollback's second pass) →
//!   the cached graph is re-weighted **in place**, touching only the edges
//!   whose error rate actually changed;
//! * window depth or graph structure changed (code expansion/shrink) →
//!   the graph is rebuilt, which is the only time the cache allocates.
//!
//! The matching backends live inside the context and keep their scratch
//! (Dijkstra buffers, union-find forest, visited/parity arrays) across
//! calls — the [`q3de_matching::DecoderBackend`] trait takes `&mut self`
//! for exactly this reason.  Reuse is *bit-identical* to fresh-per-call
//! decoding (pinned by the root `tests/decoder_reuse.rs`); debug builds
//! additionally cross-check every cached edge weight against the active
//! model so stale-cache bugs trip assertions instead of skewing results.
//! [`SurfaceDecoder`] and [`ReExecutingDecoder`] own one context each;
//! Monte-Carlo kernels that decode from `&self` closures share contexts
//! through a [`ContextPool`] (one warm context per concurrently decoding
//! worker).
//!
//! # Example
//!
//! ```
//! use q3de_lattice::{ErrorKind, SurfaceCode};
//! use q3de_decoder::{SurfaceDecoder, SyndromeHistory, WeightModel};
//!
//! let code = SurfaceCode::new(3)?;
//! let graph = code.matching_graph(ErrorKind::X);
//! // A trivial (error-free) history: three noisy rounds plus the final
//! // perfect readout, all syndromes quiet.
//! let mut history = SyndromeHistory::new(graph.num_nodes());
//! for _ in 0..4 {
//!     history.push_layer(&vec![false; graph.num_nodes()]);
//! }
//! let mut decoder = SurfaceDecoder::new(&graph);
//! let outcome = decoder.decode(&history, &WeightModel::uniform(1e-3));
//! assert!(!outcome.correction_crosses_cut());
//! # Ok::<(), q3de_lattice::LatticeError>(())
//! ```

#![deny(missing_docs)]

mod context;
mod decode;
mod rollback;
mod spacetime;
mod syndrome;
mod weights;

pub use context::{graph_key, ContextPool, DecoderContext, GraphKey};
pub use decode::{DecodeOutcome, DecoderConfig, MatchedPair, SurfaceDecoder};
pub use rollback::{ReExecutingDecoder, ReExecutionOutcome};
pub use spacetime::{BoundarySide, SpaceTimeCosts, SpaceTimeGraph};
pub use syndrome::{DetectionEvent, SyndromeBatch, SyndromeHistory};
pub use weights::WeightModel;

// The backend-selection surface is part of this crate's decoding API:
// re-export it so downstream crates can configure decoders without a direct
// `q3de_matching` dependency.
pub use q3de_matching::{DecoderBackend, MatcherKind};
