//! Edge-weight models for the space-time decoding graph.

use q3de_lattice::Coord;
use q3de_noise::{AnomalousRegion, NoiseModel};

/// How the decoder weighs physical error mechanisms.
///
/// Edge weights follow the standard log-likelihood prescription: an error
/// mechanism of probability `q` gets weight `−log(q / (1 − q))` (Sec. VI-B).
///
/// `PartialEq` compares models structurally (rates, regions, window
/// anchor); the decoder's context cache uses it as the *weight epoch*: a
/// cached space-time graph stays valid while the model compares equal and
/// is re-weighted in place when it does not.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightModel {
    /// All qubits share the same error rate; this is what a decoder that is
    /// unaware of MBBEs uses.
    Uniform {
        /// The physical error rate `p` per code cycle.
        error_rate: f64,
    },
    /// The decoder knows about one or more anomalous regions (the Q3DE
    /// re-execution path).  Edges whose qubit lies in an active region at the
    /// corresponding cycle are weighted with the anomalous rate.
    AnomalyAware {
        /// The base physical error rate `p`.
        base_rate: f64,
        /// The detected anomalous regions.
        regions: Vec<AnomalousRegion>,
        /// Absolute code cycle of event layer 0, so that region activity
        /// windows can be evaluated per layer.
        window_start_cycle: u64,
    },
}

impl WeightModel {
    /// Minimum probability used when converting rates to weights, so that
    /// `p = 0` does not produce infinite weights.
    pub const MIN_RATE: f64 = 1e-12;

    /// A uniform weight model at rate `error_rate`.
    pub fn uniform(error_rate: f64) -> Self {
        WeightModel::Uniform { error_rate }
    }

    /// An anomaly-aware weight model whose event layer 0 corresponds to
    /// absolute cycle `window_start_cycle`.
    pub fn anomaly_aware(
        base_rate: f64,
        regions: Vec<AnomalousRegion>,
        window_start_cycle: u64,
    ) -> Self {
        WeightModel::AnomalyAware {
            base_rate,
            regions,
            window_start_cycle,
        }
    }

    /// Builds an anomaly-aware model from a [`NoiseModel`] (taking over its
    /// base rate and regions).
    pub fn from_noise_model(noise: &NoiseModel, window_start_cycle: u64) -> Self {
        WeightModel::AnomalyAware {
            base_rate: noise.base_rate(),
            regions: noise.anomalies().to_vec(),
            window_start_cycle,
        }
    }

    /// The base error rate of the model.
    pub fn base_rate(&self) -> f64 {
        match self {
            WeightModel::Uniform { error_rate } => *error_rate,
            WeightModel::AnomalyAware { base_rate, .. } => *base_rate,
        }
    }

    /// Whether the model carries anomaly information.
    pub fn is_anomaly_aware(&self) -> bool {
        matches!(self, WeightModel::AnomalyAware { .. })
    }

    /// The error rate assigned to the qubit at `coord` during event layer
    /// `layer`.
    pub fn rate_at(&self, coord: Coord, layer: usize) -> f64 {
        match self {
            WeightModel::Uniform { error_rate } => *error_rate,
            WeightModel::AnomalyAware {
                base_rate,
                regions,
                window_start_cycle,
            } => {
                let cycle = window_start_cycle + layer as u64;
                let mut rate = *base_rate;
                for r in regions {
                    if r.affects(coord, cycle) {
                        rate = rate.max(r.anomalous_rate());
                    }
                }
                rate
            }
        }
    }

    /// Converts an error probability into a matching weight,
    /// `−log(q / (1 − q))`, clamped away from zero probability.
    pub fn weight_of_rate(rate: f64) -> f64 {
        let q = rate.clamp(Self::MIN_RATE, 0.5);
        -(q / (1.0 - q)).ln()
    }

    /// The weight of the edge whose qubit sits at `coord` during layer
    /// `layer`.
    pub fn weight_at(&self, coord: Coord, layer: usize) -> f64 {
        Self::weight_of_rate(self.rate_at(coord, layer))
    }

    /// The weight every edge takes under the base rate (the uniform-case
    /// fast path).
    pub fn base_weight(&self) -> f64 {
        Self::weight_of_rate(self.base_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_constant() {
        let m = WeightModel::uniform(1e-3);
        let w = m.weight_at(Coord::new(0, 0), 0);
        assert_eq!(w, m.weight_at(Coord::new(10, 10), 99));
        assert!((w - (999.0f64).ln()).abs() < 1e-9);
        assert!(!m.is_anomaly_aware());
        assert_eq!(m.base_rate(), 1e-3);
    }

    #[test]
    fn anomalous_edges_are_nearly_free_at_half_rate() {
        let region = AnomalousRegion::new(Coord::new(0, 0), 4, 10, 100, 0.5);
        let m = WeightModel::anomaly_aware(1e-3, vec![region], 0);
        // inside the region and window (layer 20 → cycle 20)
        let inside = m.weight_at(Coord::new(1, 1), 20);
        assert!(
            inside.abs() < 1e-12,
            "p_ano = 0.5 gives zero weight, got {inside}"
        );
        // outside the active window the weight reverts to the base weight
        let before = m.weight_at(Coord::new(1, 1), 5);
        assert!((before - m.base_weight()).abs() < 1e-12);
        // outside the region it is the base weight too
        let outside = m.weight_at(Coord::new(50, 50), 20);
        assert!((outside - m.base_weight()).abs() < 1e-12);
        assert!(m.is_anomaly_aware());
    }

    #[test]
    fn window_start_cycle_shifts_layer_mapping() {
        let region = AnomalousRegion::new(Coord::new(0, 0), 2, 100, 10, 0.3);
        let m = WeightModel::anomaly_aware(1e-3, vec![region], 95);
        // layer 5 → cycle 100: active
        assert_eq!(m.rate_at(Coord::new(0, 0), 5), 0.3);
        // layer 0 → cycle 95: not yet active
        assert_eq!(m.rate_at(Coord::new(0, 0), 0), 1e-3);
    }

    #[test]
    fn zero_rate_is_clamped() {
        let w = WeightModel::weight_of_rate(0.0);
        assert!(w.is_finite());
        assert!(w > 0.0);
        // monotonically decreasing in the rate
        assert!(WeightModel::weight_of_rate(1e-3) > WeightModel::weight_of_rate(1e-2));
        assert_eq!(WeightModel::weight_of_rate(0.5), 0.0);
    }

    #[test]
    fn from_noise_model_copies_regions() {
        let noise = q3de_noise::NoiseModel::uniform(1e-2).with_anomaly(AnomalousRegion::new(
            Coord::new(2, 2),
            2,
            0,
            50,
            0.4,
        ));
        let m = WeightModel::from_noise_model(&noise, 0);
        assert!(m.is_anomaly_aware());
        assert_eq!(m.base_rate(), 1e-2);
        assert_eq!(m.rate_at(Coord::new(3, 3), 10), 0.4);
    }
}
