//! Decoder re-execution (rollback) — the "optimized error DEcoding" of Q3DE.
//!
//! The rollback flow is *backend-generic*: both passes run through whichever
//! [`q3de_matching::DecoderBackend`] the [`DecoderConfig`] selects, and the
//! anomaly-aware re-weighting is applied when the space-time graph is built,
//! before any backend sees it.  The union-find backend consumes the
//! re-weighted costs as integer growth rates, the dense backends as
//! shortest-path edge weights.

use crate::{DecodeOutcome, DecoderConfig, DecoderContext, MatcherKind, SyndromeHistory};
use q3de_lattice::MatchingGraph;
use q3de_noise::AnomalousRegion;

/// The result of a (possibly re-executed) decoding pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReExecutionOutcome {
    /// The first, anomaly-blind decoding pass.
    pub first_pass: DecodeOutcome,
    /// The second pass with anomaly-aware weights, present only when an
    /// anomaly was reported and the window was rolled back.
    pub second_pass: Option<DecodeOutcome>,
}

impl ReExecutionOutcome {
    /// The outcome that is ultimately committed to the Pauli frame: the
    /// re-executed pass when it exists, the first pass otherwise.
    pub fn final_outcome(&self) -> &DecodeOutcome {
        self.second_pass.as_ref().unwrap_or(&self.first_pass)
    }

    /// Whether the window was rolled back and re-decoded.
    pub fn was_rolled_back(&self) -> bool {
        self.second_pass.is_some()
    }

    /// Whether re-execution changed the logical-correction parity — the
    /// situations in which the rollback actually mattered.
    pub fn reexecution_changed_parity(&self) -> bool {
        match &self.second_pass {
            Some(second) => {
                second.correction_crosses_cut() != self.first_pass.correction_crosses_cut()
            }
            None => false,
        }
    }
}

/// A decoder wrapper implementing the two-pass rollback flow of Sec. VI-C:
///
/// 1. the window is decoded with uniform (anomaly-blind) weights, exactly as
///    a conventional architecture would;
/// 2. when the anomaly-detection unit reports MBBE regions, the state of the
///    syndrome queue and decoding unit is rolled back and the same window is
///    re-decoded with [`crate::WeightModel::AnomalyAware`] weights.
///
/// The queue bookkeeping that makes the rollback cheap in hardware (enlarged
/// syndrome queue, matching queue batches, instruction history buffer) is
/// modelled in the `q3de-control` crate; this type captures the decoding
/// semantics.
///
/// The decoder owns a persistent [`DecoderContext`], so both passes of
/// every window share one cached space-time graph: the blind pass reuses it
/// untouched and the re-executed pass only re-weights the edges inside the
/// detected regions.  Decoding therefore takes `&mut self`; a long-lived
/// `ReExecutingDecoder` is the intended usage (one per logical qubit in the
/// pipeline, rebuilt only when the patch itself changes shape).
#[derive(Debug)]
pub struct ReExecutingDecoder<'g> {
    graph: &'g MatchingGraph,
    context: DecoderContext,
    base_rate: f64,
}

impl<'g> ReExecutingDecoder<'g> {
    /// Creates a re-executing decoder over `graph` with base physical error
    /// rate `base_rate`.
    ///
    /// Defaults to the [`MatcherKind::Tree`] backend — exact matching is
    /// what makes the rollback pass worth paying for, and the alternating-
    /// tree matcher is the fastest exact backend (~12x the dense oracle on
    /// the d = 11 rollback kernel).  Use [`Self::with_matcher`] or
    /// [`Self::with_config`] to pick a different backend.
    pub fn new(graph: &'g MatchingGraph, base_rate: f64) -> Self {
        Self::with_config(
            graph,
            base_rate,
            DecoderConfig::default().with_matcher(MatcherKind::Tree),
        )
    }

    /// Creates a re-executing decoder with an explicit decoder configuration.
    pub fn with_config(graph: &'g MatchingGraph, base_rate: f64, config: DecoderConfig) -> Self {
        Self {
            graph,
            context: DecoderContext::new(config),
            base_rate,
        }
    }

    /// Creates a re-executing decoder using the given matching backend with
    /// otherwise default configuration.
    pub fn with_matcher(graph: &'g MatchingGraph, base_rate: f64, matcher: MatcherKind) -> Self {
        Self::with_config(
            graph,
            base_rate,
            DecoderConfig::default().with_matcher(matcher),
        )
    }

    /// The layer graph both passes decode over.
    pub fn graph(&self) -> &MatchingGraph {
        self.graph
    }

    /// The decoder configuration.
    pub fn config(&self) -> DecoderConfig {
        self.context.config()
    }

    /// The persistent decoding state shared by both passes.
    pub fn context(&self) -> &DecoderContext {
        &self.context
    }

    /// The base physical error rate used for the blind pass.
    pub fn base_rate(&self) -> f64 {
        self.base_rate
    }

    /// Decodes `history`.  `detected_regions` are the anomalous regions
    /// reported by the anomaly-detection unit (empty slice or `None` means
    /// no MBBE was detected, so no rollback happens);
    /// `window_start_cycle` maps event layer 0 to an absolute code cycle so
    /// the regions' activity windows line up.
    pub fn decode(
        &mut self,
        history: &SyndromeHistory,
        detected_regions: Option<&[AnomalousRegion]>,
        window_start_cycle: u64,
    ) -> ReExecutionOutcome {
        self.context.decode_with_rollback(
            self.graph,
            self.base_rate,
            history,
            detected_regions,
            window_start_cycle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_lattice::{Coord, ErrorKind, Pauli, PauliString, StabilizerKind, SurfaceCode};

    fn burst_setup() -> (SurfaceCode, PauliString, AnomalousRegion) {
        let code = SurfaceCode::new(5).unwrap();
        let region = AnomalousRegion::new(Coord::new(0, 2), 4, 0, 100, 0.5);
        let error: PauliString = [
            (Coord::new(0, 2), Pauli::X),
            (Coord::new(0, 4), Pauli::X),
            (Coord::new(0, 6), Pauli::X),
        ]
        .into_iter()
        .collect();
        (code, error, region)
    }

    fn history_of(code: &SurfaceCode, error: &PauliString, rounds: usize) -> SyndromeHistory {
        let graph = code.matching_graph(ErrorKind::X);
        let syndrome = code.syndrome(StabilizerKind::Z, error);
        let mut h = SyndromeHistory::new(graph.num_nodes());
        for _ in 0..rounds {
            h.push_layer(&syndrome);
        }
        h
    }

    #[test]
    fn no_detection_means_no_rollback() {
        let (code, error, _) = burst_setup();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = ReExecutingDecoder::new(&graph, 1e-3);
        let history = history_of(&code, &error, 3);
        let outcome = decoder.decode(&history, None, 0);
        assert!(!outcome.was_rolled_back());
        assert!(outcome.second_pass.is_none());
        assert!(!outcome.reexecution_changed_parity());
        let outcome2 = decoder.decode(&history, Some(&[]), 0);
        assert!(!outcome2.was_rolled_back());
    }

    #[test]
    fn rollback_reexecutes_and_fixes_the_burst() {
        let (code, error, region) = burst_setup();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = ReExecutingDecoder::new(&graph, 1e-3);
        let history = history_of(&code, &error, 3);
        let error_parity = code
            .logical_z_support()
            .iter()
            .filter(|&&q| error.get(q).has_x_component())
            .count()
            % 2
            == 1;

        let outcome = decoder.decode(&history, Some(&[region]), 0);
        assert!(outcome.was_rolled_back());
        assert!(outcome.first_pass.is_logical_failure(error_parity));
        assert!(!outcome.final_outcome().is_logical_failure(error_parity));
        assert!(outcome.reexecution_changed_parity());
    }

    #[test]
    fn rollback_is_backend_generic() {
        // Every matching backend must support the two-pass rollback flow and
        // fix the burst after re-weighting.
        let (code, error, region) = burst_setup();
        let graph = code.matching_graph(ErrorKind::X);
        let history = history_of(&code, &error, 3);
        let error_parity = code
            .logical_z_support()
            .iter()
            .filter(|&&q| error.get(q).has_x_component())
            .count()
            % 2
            == 1;
        for kind in MatcherKind::ALL {
            let mut decoder = ReExecutingDecoder::with_matcher(&graph, 1e-3, kind);
            let outcome = decoder.decode(&history, Some(&[region]), 0);
            assert!(outcome.was_rolled_back(), "{kind:?}");
            assert!(
                !outcome.final_outcome().is_logical_failure(error_parity),
                "{kind:?}: re-executed pass must fix the burst"
            );
        }
    }

    #[test]
    fn final_outcome_prefers_second_pass() {
        let (code, error, region) = burst_setup();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = ReExecutingDecoder::new(&graph, 1e-3);
        let history = history_of(&code, &error, 3);
        let outcome = decoder.decode(&history, Some(&[region]), 0);
        let second = outcome.second_pass.as_ref().unwrap();
        assert_eq!(
            outcome.final_outcome().correction_crosses_cut(),
            second.correction_crosses_cut()
        );
        assert_eq!(decoder.base_rate(), 1e-3);
    }
}
