//! Long-lived decoder state: the persistent [`DecoderContext`] and the
//! thread-safe [`ContextPool`] the simulation kernels draw from.
//!
//! Building the space-time decoding graph is the most allocation-heavy step
//! of a decode call — one vertex per `(stabilizer, layer)` state, adjacency
//! lists, boundary-side tags — yet its *topology* depends only on the layer
//! graph and the window depth, and its *weights* only on the
//! [`WeightModel`].  A `DecoderContext` therefore caches the built
//! [`SpaceTimeGraph`] keyed by `(error kind, node count, edge count,
//! window layers)` and treats the weight model as an epoch: decoding with
//! the same model reuses the graph untouched, decoding with a different
//! model re-weights it in place (only the edges whose rate actually
//! changed), and only a *structural* change — code expansion/shrink, a
//! different window depth — rebuilds the graph.  The matching backend
//! lives in the context too, so its scratch (Dijkstra buffers, union-find
//! forest) persists across windows and shots.

use crate::{
    DecodeOutcome, DecoderConfig, DetectionEvent, MatchedPair, ReExecutionOutcome, SpaceTimeGraph,
    SyndromeHistory, WeightModel,
};
use q3de_lattice::{ErrorKind, MatchingGraph};
use q3de_matching::DecoderBackend;
use q3de_noise::AnomalousRegion;
use std::fmt;
use std::sync::Mutex;

/// The structural identity of a cached space-time graph: error kind, layer
/// graph shape (node and edge counts), and window depth.  A decode call
/// whose key differs from the cache's rebuilds the graph (this is what
/// happens on code expansion/shrink or a change in window depth).
///
/// Exposed so multi-tenant schedulers can route work to a context whose
/// cache already holds the right structure (see
/// [`ContextPool::with_affinity`]); build one with [`graph_key`].
pub type GraphKey = (ErrorKind, usize, usize, usize);

/// The [`GraphKey`] a decode of `num_layers` layers over `graph` caches
/// under — the affinity key for [`ContextPool::with_affinity`].
pub fn graph_key(graph: &MatchingGraph, num_layers: usize) -> GraphKey {
    (
        graph.kind(),
        graph.num_nodes(),
        graph.num_edges(),
        num_layers.max(1),
    )
}

struct GraphCache {
    key: GraphKey,
    spacetime: SpaceTimeGraph,
    /// The model whose weights are currently installed in `spacetime` —
    /// the cache's *weight epoch*.
    model: WeightModel,
}

/// Reusable decoding state for one worker: the configured matching backend
/// (with its scratch buffers) plus the cached, re-weightable space-time
/// graph of the last-seen window shape.
///
/// A context is *not* tied to one layer graph: every [`DecoderContext::decode`]
/// call passes the graph explicitly, and the cache invalidates itself
/// whenever the graph's structure or the window depth changes.  Reused
/// contexts are bit-identical to fresh ones (pinned by
/// `tests/decoder_reuse.rs`); the only observable difference is speed.
///
/// # Invalidation rules
///
/// | change | action |
/// |---|---|
/// | same graph, same layers, same weight model | full reuse, zero rebuild |
/// | weight model changed (anomaly re-weighting, rollback pass) | in-place re-weight of the affected edges |
/// | window depth changed | rebuild |
/// | graph structure changed (expansion/shrink, other error kind) | rebuild |
pub struct DecoderContext {
    config: DecoderConfig,
    backend: Box<dyn DecoderBackend + Send>,
    cache: Option<GraphCache>,
    defects: Vec<usize>,
    graph_builds: u64,
    reweights: u64,
}

impl fmt::Debug for DecoderContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecoderContext")
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .field("warm", &self.cache.is_some())
            .field("graph_builds", &self.graph_builds)
            .field("reweights", &self.reweights)
            .finish()
    }
}

impl DecoderContext {
    /// Creates a cold context for the given decoder configuration.
    pub fn new(config: DecoderConfig) -> Self {
        Self {
            backend: config.backend(),
            config,
            cache: None,
            defects: Vec::new(),
            graph_builds: 0,
            reweights: 0,
        }
    }

    /// The decoder configuration the context was built with.
    pub fn config(&self) -> DecoderConfig {
        self.config
    }

    /// The name of the matching backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Whether a space-time graph is currently cached.
    pub fn is_warm(&self) -> bool {
        self.cache.is_some()
    }

    /// The structural key of the cached space-time graph, if any — what a
    /// decode must match to reuse the cache without a rebuild.  Schedulers
    /// that multiplex heterogeneous workloads over a shared pool compare
    /// this against [`graph_key`] of the next window to route work onto an
    /// already-warm context (see [`ContextPool::with_affinity`]).
    pub fn cached_structure(&self) -> Option<GraphKey> {
        self.cache.as_ref().map(|cache| cache.key)
    }

    /// How many times the context has built a space-time graph from
    /// scratch — the number a cold per-call decoder would multiply by its
    /// decode count.  Exposed so reuse tests can assert the cache worked.
    pub fn graph_builds(&self) -> u64 {
        self.graph_builds
    }

    /// How many times the cached graph was re-weighted in place (the weight
    /// epoch advanced without a rebuild).
    pub fn reweights(&self) -> u64 {
        self.reweights
    }

    /// Drops the cached space-time graph.  Decoding works identically
    /// afterwards; the next call simply rebuilds.  Callers that deform the
    /// lattice (code expansion/shrink) may invalidate eagerly, though the
    /// structural cache key catches such changes on its own.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Decodes a syndrome window under the given weight model — the
    /// persistent-state equivalent of building a fresh
    /// [`crate::SurfaceDecoder`] per window.
    ///
    /// # Panics
    ///
    /// Panics if the history's node count does not match the layer graph.
    pub fn decode(
        &mut self,
        graph: &MatchingGraph,
        history: &SyndromeHistory,
        model: &WeightModel,
    ) -> DecodeOutcome {
        assert_eq!(
            history.num_nodes(),
            graph.num_nodes(),
            "syndrome history and matching graph disagree on the node count"
        );
        self.decode_events(
            graph,
            history.num_layers(),
            history.detection_events(),
            model,
        )
    }

    /// Decodes an explicit detection-event list over a `num_layers`-deep
    /// window — the entry point for callers that extract events themselves,
    /// such as the packed batch kernel, which never materialises a scalar
    /// [`SyndromeHistory`] per lane.  [`DecoderContext::decode`] is exactly
    /// this applied to `history.detection_events()`.
    ///
    /// Events must be sorted in `(layer, node)` order with every layer below
    /// `num_layers.max(1)` and every node in the layer graph.  An empty list
    /// decodes to the default (no-correction) outcome.
    pub fn decode_events(
        &mut self,
        graph: &MatchingGraph,
        num_layers: usize,
        events: Vec<DetectionEvent>,
        model: &WeightModel,
    ) -> DecodeOutcome {
        if events.is_empty() {
            return DecodeOutcome::default();
        }
        let num_layers = num_layers.max(1);
        let key: GraphKey = graph_key(graph, num_layers);
        match &mut self.cache {
            Some(cache) if cache.key == key => {
                if cache.model != *model {
                    cache.spacetime.reweight(graph, Some(&cache.model), model);
                    cache.model = model.clone();
                    self.reweights += 1;
                }
            }
            _ => {
                self.cache = Some(GraphCache {
                    key,
                    spacetime: SpaceTimeGraph::build(graph, num_layers, model),
                    model: model.clone(),
                });
                self.graph_builds += 1;
            }
        }
        let Self {
            backend,
            cache,
            defects,
            ..
        } = self;
        let spacetime = &cache.as_ref().expect("cache installed above").spacetime;
        defects.clear();
        defects.extend(events.iter().map(|&e| spacetime.vertex_of(e)));

        let matching = backend.decode_defects(spacetime.graph(), defects);
        debug_assert!(
            matching.is_perfect(defects.len()),
            "backend {} returned an imperfect matching",
            backend.name()
        );

        let mut outcome = DecodeOutcome {
            num_clusters: matching.num_clusters,
            ..DecodeOutcome::default()
        };
        for pair in &matching.pairs {
            let (a, b) = if defects[pair.a] <= defects[pair.b] {
                (pair.a, pair.b)
            } else {
                (pair.b, pair.a)
            };
            outcome.pairs.push(MatchedPair {
                a: events[a],
                b: events[b],
                cost: pair.cost,
            });
            outcome.total_weight += pair.cost;
        }
        for bm in &matching.boundary {
            let side = spacetime
                .side_of(bm.edge)
                .expect("boundary match must reference a boundary edge");
            outcome
                .boundary_matches
                .push((events[bm.defect], side, bm.cost));
            outcome.total_weight += bm.cost;
        }
        outcome.events = events;
        outcome
    }

    /// The two-pass Q3DE rollback flow on persistent state: a blind pass
    /// under `WeightModel::uniform(base_rate)`, then — when
    /// `detected_regions` is non-empty — a re-executed pass under
    /// anomaly-aware weights for the same window.  Both passes share the
    /// cached graph; the second pass only re-weights the region edges.
    pub fn decode_with_rollback(
        &mut self,
        graph: &MatchingGraph,
        base_rate: f64,
        history: &SyndromeHistory,
        detected_regions: Option<&[AnomalousRegion]>,
        window_start_cycle: u64,
    ) -> ReExecutionOutcome {
        let first_pass = self.decode(graph, history, &WeightModel::uniform(base_rate));
        let second_pass = match detected_regions {
            Some(regions) if !regions.is_empty() => {
                let model =
                    WeightModel::anomaly_aware(base_rate, regions.to_vec(), window_start_cycle);
                Some(self.decode(graph, history, &model))
            }
            _ => None,
        };
        ReExecutionOutcome {
            first_pass,
            second_pass,
        }
    }
}

/// A thread-safe pool of [`DecoderContext`]s sharing one configuration.
///
/// The Monte-Carlo kernels run shots from many worker threads through
/// `&self` closures, so they cannot hold a `&mut DecoderContext` each.  The
/// pool bridges that: [`ContextPool::with`] checks a context out (creating
/// one only when every pooled context is busy), runs the closure, and
/// returns it warm.  Steady state is one context per concurrently decoding
/// worker — decoders are constructed once per worker, not once per shot.
pub struct ContextPool {
    config: DecoderConfig,
    pool: Mutex<Vec<DecoderContext>>,
}

impl ContextPool {
    /// Creates an empty pool handing out contexts of the given
    /// configuration.
    pub fn new(config: DecoderConfig) -> Self {
        Self {
            config,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The configuration of every context the pool hands out.
    pub fn config(&self) -> DecoderConfig {
        self.config
    }

    /// Number of idle (checked-in) contexts currently pooled.
    pub fn idle_contexts(&self) -> usize {
        self.pool.lock().expect("context pool poisoned").len()
    }

    /// Checks a context out of the pool, creating a cold one when every
    /// pooled context is busy.  Pair with [`ContextPool::checkin`]; the
    /// closure-style [`ContextPool::with`]/[`ContextPool::with_affinity`]
    /// wrappers do that automatically and should be preferred unless the
    /// checkout must outlive a closure (e.g. a long-running service worker
    /// holding a context across a blocking decode).
    pub fn checkout(&self) -> DecoderContext {
        self.pool
            .lock()
            .expect("context pool poisoned")
            .pop()
            .unwrap_or_else(|| DecoderContext::new(self.config))
    }

    /// Checks a context out of the pool, preferring one whose cached
    /// space-time graph already matches `key` (see [`graph_key`]), then a
    /// context with no cached graph at all, and only then a cold new one.
    /// A warm context cached for a *different* structure is never
    /// repurposed — evicting it would ping-pong rebuilds whenever fewer
    /// workers than window structures share the pool.  This is what keeps
    /// a heterogeneous multi-tenant shard rebuild-free: each distinct
    /// structure gravitates onto its own warm context, and the pool grows
    /// to at most one idle context per distinct structure plus one per
    /// concurrent checkout.
    pub fn checkout_for(&self, key: GraphKey) -> DecoderContext {
        let mut pool = self.pool.lock().expect("context pool poisoned");
        if let Some(index) = pool
            .iter()
            .position(|context| context.cached_structure() == Some(key))
        {
            return pool.swap_remove(index);
        }
        if let Some(index) = pool
            .iter()
            .position(|context| context.cached_structure().is_none())
        {
            return pool.swap_remove(index);
        }
        DecoderContext::new(self.config)
    }

    /// Returns a context to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the context's configuration differs from the pool's — a
    /// foreign context would silently decode later checkouts with the
    /// wrong backend.
    pub fn checkin(&self, context: DecoderContext) {
        assert_eq!(
            context.config(),
            self.config,
            "checked-in context does not match the pool configuration"
        );
        self.pool
            .lock()
            .expect("context pool poisoned")
            .push(context);
    }

    /// Runs `f` with a pooled context, checking it back in afterwards.  If
    /// `f` panics the context is dropped, never returned to the pool.
    pub fn with<T>(&self, f: impl FnOnce(&mut DecoderContext) -> T) -> T {
        let mut context = self.checkout();
        let result = f(&mut context);
        self.checkin(context);
        result
    }

    /// Runs `f` with a pooled context that prefers the structure `key`
    /// (see [`ContextPool::checkout_for`]), checking it back in afterwards.
    pub fn with_affinity<T>(&self, key: GraphKey, f: impl FnOnce(&mut DecoderContext) -> T) -> T {
        let mut context = self.checkout_for(key);
        let result = f(&mut context);
        self.checkin(context);
        result
    }
}

impl Clone for ContextPool {
    /// Cloning yields an *empty* pool with the same configuration — warm
    /// caches stay with the original.
    fn clone(&self) -> Self {
        Self::new(self.config)
    }
}

impl fmt::Debug for ContextPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextPool")
            .field("config", &self.config)
            .field("idle_contexts", &self.idle_contexts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use q3de_lattice::{Coord, Pauli, PauliString, StabilizerKind, SurfaceCode};

    fn static_history(code: &SurfaceCode, error: &PauliString, rounds: usize) -> SyndromeHistory {
        let graph = code.matching_graph(ErrorKind::X);
        let syndrome = code.syndrome(StabilizerKind::Z, error);
        let mut h = SyndromeHistory::new(graph.num_nodes());
        for _ in 0..rounds {
            h.push_layer(&syndrome);
        }
        h
    }

    #[test]
    fn context_reuses_the_graph_across_identical_windows() {
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let error: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        let history = static_history(&code, &error, 3);
        let model = WeightModel::uniform(1e-3);
        let mut context = DecoderContext::new(DecoderConfig::default());
        assert!(!context.is_warm());
        let first = context.decode(&graph, &history, &model);
        for _ in 0..5 {
            assert_eq!(context.decode(&graph, &history, &model), first);
        }
        assert_eq!(context.graph_builds(), 1, "one build, five reuses");
        assert_eq!(context.reweights(), 0);
        assert!(context.is_warm());
        context.invalidate();
        assert!(!context.is_warm());
        assert_eq!(context.decode(&graph, &history, &model), first);
        assert_eq!(context.graph_builds(), 2);
    }

    #[test]
    fn model_changes_reweight_instead_of_rebuilding() {
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let error: PauliString = [(Coord::new(0, 2), Pauli::X), (Coord::new(0, 4), Pauli::X)]
            .into_iter()
            .collect();
        let history = static_history(&code, &error, 3);
        let region = q3de_noise::AnomalousRegion::new(Coord::new(0, 2), 4, 0, 100, 0.5);
        let uniform = WeightModel::uniform(1e-3);
        let aware = WeightModel::anomaly_aware(1e-3, vec![region], 0);
        let mut context = DecoderContext::new(DecoderConfig::default());
        let blind = context.decode(&graph, &history, &uniform);
        let rolled = context.decode(&graph, &history, &aware);
        let blind_again = context.decode(&graph, &history, &uniform);
        assert_eq!(context.graph_builds(), 1, "re-weighting must not rebuild");
        assert_eq!(context.reweights(), 2);
        assert_eq!(blind, blind_again);
        // fresh-per-call reference
        let mut fresh = DecoderContext::new(DecoderConfig::default());
        assert_eq!(fresh.decode(&graph, &history, &aware), rolled);
    }

    #[test]
    fn structural_changes_rebuild_the_cache() {
        let small = SurfaceCode::new(3).unwrap();
        let large = SurfaceCode::new(5).unwrap();
        let gs = small.matching_graph(ErrorKind::X);
        let gl = large.matching_graph(ErrorKind::X);
        let error: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        let model = WeightModel::uniform(1e-3);
        let mut context = DecoderContext::new(DecoderConfig::default());
        let hs = static_history(&small, &error, 3);
        let hl = static_history(&large, &error, 3);
        context.decode(&gs, &hs, &model);
        context.decode(&gl, &hl, &model); // expansion: different graph
        context.decode(&gl, &static_history(&large, &error, 5), &model); // deeper window
        assert_eq!(context.graph_builds(), 3);
        // results still match fresh decoding after all that churn
        let mut fresh = DecoderContext::new(DecoderConfig::default());
        assert_eq!(
            context.decode(&gs, &hs, &model),
            fresh.decode(&gs, &hs, &model)
        );
    }

    #[test]
    fn rollback_on_context_matches_the_reexecuting_decoder() {
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let region = q3de_noise::AnomalousRegion::new(Coord::new(0, 2), 4, 0, 100, 0.5);
        let error: PauliString = [
            (Coord::new(0, 2), Pauli::X),
            (Coord::new(0, 4), Pauli::X),
            (Coord::new(0, 6), Pauli::X),
        ]
        .into_iter()
        .collect();
        let history = static_history(&code, &error, 3);
        // same config on both sides: ReExecutingDecoder::new defaults to the
        // alternating-tree backend, so build the context from its config
        let mut decoder = crate::ReExecutingDecoder::new(&graph, 1e-3);
        let mut context = DecoderContext::new(decoder.config());
        let outcome = context.decode_with_rollback(&graph, 1e-3, &history, Some(&[region]), 0);
        assert!(outcome.was_rolled_back());
        let reference = decoder.decode(&history, Some(&[region]), 0);
        assert_eq!(outcome, reference);
        // no detection → no second pass, still cached
        let quiet = context.decode_with_rollback(&graph, 1e-3, &history, None, 0);
        assert!(!quiet.was_rolled_back());
        assert_eq!(context.graph_builds(), 1);
    }

    #[test]
    fn pool_hands_out_warm_contexts() {
        let pool = ContextPool::new(DecoderConfig::default().with_matcher(MatcherKind::UnionFind));
        assert_eq!(pool.idle_contexts(), 0);
        let code = SurfaceCode::new(3).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let error: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        let history = static_history(&code, &error, 2);
        let model = WeightModel::uniform(1e-3);
        let first = pool.with(|context| context.decode(&graph, &history, &model));
        assert_eq!(pool.idle_contexts(), 1);
        let (second, builds) = pool.with(|context| {
            (
                context.decode(&graph, &history, &model),
                context.graph_builds(),
            )
        });
        assert_eq!(first, second);
        assert_eq!(builds, 1, "the second call got the warm context back");
        assert_eq!(pool.config().matcher, MatcherKind::UnionFind);
        // a clone starts cold
        assert_eq!(pool.clone().idle_contexts(), 0);
    }

    #[test]
    fn affinity_checkout_routes_structures_to_their_warm_contexts() {
        let pool = ContextPool::new(DecoderConfig::default());
        let small = SurfaceCode::new(3).unwrap();
        let large = SurfaceCode::new(5).unwrap();
        let gs = small.matching_graph(ErrorKind::X);
        let gl = large.matching_graph(ErrorKind::X);
        let error: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        let hs = static_history(&small, &error, 3);
        let hl = static_history(&large, &error, 3);
        let model = WeightModel::uniform(1e-3);
        let ks = graph_key(&gs, hs.num_layers());
        let kl = graph_key(&gl, hl.num_layers());
        assert_ne!(ks, kl);

        // Warm one context per structure (checked out simultaneously so
        // the pool is forced to create two).
        let mut a = pool.checkout_for(ks);
        let mut b = pool.checkout_for(kl);
        a.decode(&gs, &hs, &model);
        b.decode(&gl, &hl, &model);
        assert_eq!(a.cached_structure(), Some(ks));
        assert_eq!(b.cached_structure(), Some(kl));
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.idle_contexts(), 2);

        // Interleaved heterogeneous decodes: affinity must find the
        // matching warm context every time, so no structure ever rebuilds.
        for _ in 0..4 {
            pool.with_affinity(ks, |context| {
                context.decode(&gs, &hs, &model);
                assert_eq!(context.graph_builds(), 1, "small context stays warm");
            });
            pool.with_affinity(kl, |context| {
                context.decode(&gl, &hl, &model);
                assert_eq!(context.graph_builds(), 1, "large context stays warm");
            });
        }
        // Plain `with` (no affinity) on the same pool would have rebuilt:
        // it pops in LIFO order, which alternates structures here.
        let total_builds: u64 = {
            let a = pool.checkout();
            let b = pool.checkout();
            let builds = a.graph_builds() + b.graph_builds();
            pool.checkin(a);
            pool.checkin(b);
            builds
        };
        assert_eq!(total_builds, 2, "one build per structure, ever");
    }

    #[test]
    #[should_panic(expected = "does not match the pool configuration")]
    fn foreign_contexts_are_rejected_at_checkin() {
        let pool = ContextPool::new(DecoderConfig::default().with_matcher(MatcherKind::UnionFind));
        pool.checkin(DecoderContext::new(DecoderConfig::default()));
    }
}
