//! Shortest-path costs on the space-time decoding graph, and the sparse
//! space-time graph handed to [`q3de_matching::DecoderBackend`]s.

use crate::{DetectionEvent, WeightModel};
use q3de_lattice::{ErrorKind, GraphEdge, MatchingGraph};
use q3de_matching::{SparseEdgeId, SyndromeGraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which lattice boundary a chain terminates on.
///
/// `Low` is the boundary adjacent to the homological cut (left for `X`-error
/// graphs, top for `Z`-error graphs); a chain ending there crosses the cut an
/// odd number of times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundarySide {
    /// The cut-adjacent boundary.
    Low,
    /// The opposite boundary.
    High,
}

/// The boundary side a boundary edge of a `kind` layer graph terminates on.
///
/// This is the single source of truth for the side convention: the dense
/// cost oracle ([`SpaceTimeCosts::boundary_side`]) and the sparse
/// [`SpaceTimeGraph`] both classify through it, so the homological-cut
/// parity cannot diverge between the two decoding paths.
fn boundary_side_of(kind: ErrorKind, edge: &GraphEdge) -> BoundarySide {
    debug_assert!(edge.is_boundary());
    let low = match kind {
        ErrorKind::X => edge.qubit.col == 0,
        ErrorKind::Z => edge.qubit.row == 0,
    };
    if low {
        BoundarySide::Low
    } else {
        BoundarySide::High
    }
}

/// The sparse 3D space-time decoding graph in the geometry-agnostic
/// [`SyndromeGraph`] representation consumed by
/// [`q3de_matching::DecoderBackend`]s.
///
/// One vertex per `(event layer, stabilizer node)` state.  Space edges
/// within a layer carry data-qubit error weights, time edges between
/// consecutive layers carry measurement (ancilla) error weights, and
/// boundary edges record which [`BoundarySide`] they terminate on so the
/// decoder can recover the homological-cut parity from a backend's
/// boundary matches.  Anomaly-aware [`WeightModel`]s re-weight edges per
/// layer exactly as in [`SpaceTimeCosts`], which is how Q3DE's rollback
/// re-weighting reaches every backend.
#[derive(Debug, Clone)]
pub struct SpaceTimeGraph {
    graph: SyndromeGraph,
    sides: Vec<Option<BoundarySide>>,
    num_nodes: usize,
    num_layers: usize,
}

impl SpaceTimeGraph {
    /// Builds the space-time graph for `num_layers` event layers over the
    /// 2D `layer_graph`, weighted by `model`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn build(layer_graph: &MatchingGraph, num_layers: usize, model: &WeightModel) -> Self {
        assert!(num_layers > 0, "at least one event layer is required");
        let n = layer_graph.num_nodes();
        let mut graph = SyndromeGraph::new(n * num_layers);
        let mut sides: Vec<Option<BoundarySide>> = Vec::new();
        for layer in 0..num_layers {
            let base = layer * n;
            // Space edges: data-qubit errors at this layer's cycle.
            for edge in layer_graph.edges() {
                let w = model.weight_at(edge.qubit, layer);
                match edge.b {
                    Some(b) => {
                        graph.add_edge(base + edge.a, base + b, w);
                        sides.push(None);
                    }
                    None => {
                        graph.add_boundary_edge(base + edge.a, w);
                        sides.push(Some(boundary_side_of(layer_graph.kind(), edge)));
                    }
                }
            }
            // Time edges: measurement errors on each node's ancilla.
            if layer + 1 < num_layers {
                for node in 0..n {
                    let w = model.weight_at(layer_graph.node(node), layer);
                    graph.add_edge(base + node, base + n + node, w);
                    sides.push(None);
                }
            }
        }
        Self {
            graph,
            sides,
            num_nodes: n,
            num_layers,
        }
    }

    /// Re-weights the graph's edges in place for a new [`WeightModel`],
    /// leaving the topology (vertices, adjacency, boundary sides) untouched.
    ///
    /// With `previous` — the model whose weights are currently installed —
    /// only the edges whose error rate actually changed between the two
    /// models are rewritten: switching a uniform graph to an anomaly-aware
    /// one (or back, or between two region sets) costs one rate comparison
    /// per edge plus one log-likelihood evaluation per *affected* edge.
    /// With `previous = None` every weight is recomputed from scratch.
    ///
    /// This is the primitive behind the decoder's persistent
    /// [`crate::DecoderContext`]: rollback re-execution re-derives only the
    /// edge costs inside the detected anomalous regions instead of
    /// rebuilding the space-time graph per pass.
    ///
    /// # Panics
    ///
    /// Panics if `layer_graph` is not the graph this space-time graph was
    /// built from (node or edge count mismatch).  Debug builds additionally
    /// verify every installed weight against `model`, so a stale cache
    /// (wrong `previous`) fails loudly under `debug_assertions`.
    pub fn reweight(
        &mut self,
        layer_graph: &MatchingGraph,
        previous: Option<&WeightModel>,
        model: &WeightModel,
    ) {
        assert_eq!(
            layer_graph.num_nodes(),
            self.num_nodes,
            "layer graph does not match the cached space-time graph"
        );
        let n = self.num_nodes;
        let mut eid = 0usize;
        let mut reweight_edge = |graph: &mut SyndromeGraph, coord, layer: usize| {
            let changed = match previous {
                Some(prev) => prev.rate_at(coord, layer) != model.rate_at(coord, layer),
                None => true,
            };
            if changed {
                graph.set_weight(eid, model.weight_at(coord, layer));
            }
            eid += 1;
        };
        for layer in 0..self.num_layers {
            for edge in layer_graph.edges() {
                reweight_edge(&mut self.graph, edge.qubit, layer);
            }
            if layer + 1 < self.num_layers {
                for node in 0..n {
                    reweight_edge(&mut self.graph, layer_graph.node(node), layer);
                }
            }
        }
        assert_eq!(
            eid,
            self.graph.num_edges(),
            "layer graph does not match the cached space-time graph"
        );
        #[cfg(debug_assertions)]
        self.debug_assert_weights(layer_graph, model);
    }

    /// Verifies that every installed edge weight matches `model` — the
    /// stale-cache tripwire behind [`SpaceTimeGraph::reweight`]'s selective
    /// update (debug builds only).
    #[cfg(debug_assertions)]
    fn debug_assert_weights(&self, layer_graph: &MatchingGraph, model: &WeightModel) {
        let n = self.num_nodes;
        let mut eid = 0usize;
        let mut check = |coord, layer: usize| {
            let expected = model.weight_at(coord, layer);
            let actual = self.graph.edge(eid).weight;
            debug_assert!(
                actual == expected,
                "stale cached weight on edge {eid} (qubit {coord}, layer {layer}): \
                 installed {actual}, model says {expected}"
            );
            eid += 1;
        };
        for layer in 0..self.num_layers {
            for edge in layer_graph.edges() {
                check(edge.qubit, layer);
            }
            if layer + 1 < self.num_layers {
                for node in 0..n {
                    check(layer_graph.node(node), layer);
                }
            }
        }
    }

    /// The sparse graph representation.
    pub fn graph(&self) -> &SyndromeGraph {
        &self.graph
    }

    /// Number of event layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// The sparse-graph vertex of a detection event.
    ///
    /// # Panics
    ///
    /// Panics if the event lies outside the graph.
    pub fn vertex_of(&self, event: DetectionEvent) -> usize {
        assert!(
            event.layer < self.num_layers && event.node < self.num_nodes,
            "detection event {event} outside the {} x {} space-time graph",
            self.num_layers,
            self.num_nodes
        );
        event.layer * self.num_nodes + event.node
    }

    /// The boundary side a sparse edge terminates on (`None` for interior
    /// edges).
    pub fn side_of(&self, edge: SparseEdgeId) -> Option<BoundarySide> {
        self.sides[edge]
    }
}

/// Computes minimum path costs between detection events (and to the two
/// boundaries) on the 3D space-time lattice.
///
/// * Space edges within an event layer correspond to data-qubit errors at
///   that cycle and are weighted by [`WeightModel::weight_at`] of the data
///   qubit.
/// * Time edges between consecutive layers correspond to measurement errors
///   on the stabilizer's ancilla and are weighted by the ancilla's rate.
///
/// Uniform models use the closed-form Manhattan metric; anomaly-aware models
/// run Dijkstra from each queried source.
#[derive(Debug, Clone)]
pub struct SpaceTimeCosts<'g> {
    graph: &'g MatchingGraph,
    num_layers: usize,
    model: WeightModel,
}

impl<'g> SpaceTimeCosts<'g> {
    /// Creates the cost oracle for `num_layers` event layers over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(graph: &'g MatchingGraph, num_layers: usize, model: WeightModel) -> Self {
        assert!(num_layers > 0, "at least one event layer is required");
        Self {
            graph,
            num_layers,
            model,
        }
    }

    /// The layer graph this oracle operates on.
    pub fn graph(&self) -> &MatchingGraph {
        self.graph
    }

    /// Number of event layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// The weight model in use.
    pub fn model(&self) -> &WeightModel {
        &self.model
    }

    /// The boundary side a boundary edge terminates on.
    pub fn boundary_side(&self, edge: &GraphEdge) -> BoundarySide {
        boundary_side_of(self.graph.kind(), edge)
    }

    /// Minimum path cost between two detection events.
    pub fn cost_between(&self, a: DetectionEvent, b: DetectionEvent) -> f64 {
        match &self.model {
            WeightModel::Uniform { .. } => {
                let w = self.model.base_weight();
                let space = self.graph.space_distance(a.node, b.node) as f64;
                let time = a.layer.abs_diff(b.layer) as f64;
                w * (space + time)
            }
            WeightModel::AnomalyAware { .. } => {
                let (costs, _) = self.costs_from(a, &[b]);
                costs[0]
            }
        }
    }

    /// Minimum path costs from a detection event to the `(low, high)`
    /// boundaries.
    pub fn boundary_costs(&self, a: DetectionEvent) -> (f64, f64) {
        match &self.model {
            WeightModel::Uniform { .. } => {
                let w = self.model.base_weight();
                let (low, high) = self.graph.boundary_distances(a.node);
                (w * low as f64, w * high as f64)
            }
            WeightModel::AnomalyAware { .. } => {
                let (_, boundary) = self.costs_from(a, &[]);
                boundary
            }
        }
    }

    /// Minimum path costs from `source` to each of `targets`, plus the costs
    /// to the `(low, high)` boundaries, in a single traversal.
    pub fn costs_from(
        &self,
        source: DetectionEvent,
        targets: &[DetectionEvent],
    ) -> (Vec<f64>, (f64, f64)) {
        match &self.model {
            WeightModel::Uniform { .. } => {
                let costs = targets
                    .iter()
                    .map(|&t| self.cost_between(source, t))
                    .collect();
                (costs, self.boundary_costs(source))
            }
            WeightModel::AnomalyAware { .. } => self.dijkstra(source, targets),
        }
    }

    fn state_index(&self, node: usize, layer: usize) -> usize {
        layer * self.graph.num_nodes() + node
    }

    fn dijkstra(
        &self,
        source: DetectionEvent,
        targets: &[DetectionEvent],
    ) -> (Vec<f64>, (f64, f64)) {
        #[derive(PartialEq)]
        struct HeapEntry {
            cost: f64,
            state: usize,
        }
        impl Eq for HeapEntry {}
        impl Ord for HeapEntry {
            fn cmp(&self, other: &Self) -> Ordering {
                // reversed: BinaryHeap is a max-heap
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for HeapEntry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let num_nodes = self.graph.num_nodes();
        let num_states = num_nodes * self.num_layers;
        let mut dist = vec![f64::INFINITY; num_states];
        let mut best_low = f64::INFINITY;
        let mut best_high = f64::INFINITY;

        let start = self.state_index(source.node, source.layer);
        dist[start] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: 0.0,
            state: start,
        });

        while let Some(HeapEntry { cost, state }) = heap.pop() {
            if cost > dist[state] {
                continue;
            }
            let layer = state / num_nodes;
            let node = state % num_nodes;

            // Space edges (data-qubit errors at this layer's cycle).
            for &edge_index in self.graph.incident_edges(node) {
                let edge = self.graph.edge(edge_index);
                let w = self.model.weight_at(edge.qubit, layer);
                match edge.other(node) {
                    Some(neighbor) => {
                        let next = self.state_index(neighbor, layer);
                        if cost + w < dist[next] {
                            dist[next] = cost + w;
                            heap.push(HeapEntry {
                                cost: cost + w,
                                state: next,
                            });
                        }
                    }
                    None => match self.boundary_side(edge) {
                        BoundarySide::Low => best_low = best_low.min(cost + w),
                        BoundarySide::High => best_high = best_high.min(cost + w),
                    },
                }
            }

            // Time edges (measurement errors on this node's ancilla).
            let ancilla = self.graph.node(node);
            if layer + 1 < self.num_layers {
                let w = self.model.weight_at(ancilla, layer);
                let next = self.state_index(node, layer + 1);
                if cost + w < dist[next] {
                    dist[next] = cost + w;
                    heap.push(HeapEntry {
                        cost: cost + w,
                        state: next,
                    });
                }
            }
            if layer > 0 {
                let w = self.model.weight_at(ancilla, layer - 1);
                let next = self.state_index(node, layer - 1);
                if cost + w < dist[next] {
                    dist[next] = cost + w;
                    heap.push(HeapEntry {
                        cost: cost + w,
                        state: next,
                    });
                }
            }
        }

        let costs = targets
            .iter()
            .map(|t| dist[self.state_index(t.node, t.layer)])
            .collect();
        (costs, (best_low, best_high))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_lattice::{Coord, SurfaceCode};
    use q3de_noise::AnomalousRegion;

    fn graph(d: usize) -> MatchingGraph {
        SurfaceCode::new(d).unwrap().matching_graph(ErrorKind::X)
    }

    #[test]
    fn uniform_and_dijkstra_agree_without_anomalies() {
        let g = graph(5);
        let layers = 6;
        let p = 1e-2;
        let uniform = SpaceTimeCosts::new(&g, layers, WeightModel::uniform(p));
        let dijkstra =
            SpaceTimeCosts::new(&g, layers, WeightModel::anomaly_aware(p, Vec::new(), 0));
        let events: Vec<DetectionEvent> = vec![
            DetectionEvent { layer: 0, node: 0 },
            DetectionEvent { layer: 2, node: 7 },
            DetectionEvent {
                layer: 5,
                node: g.num_nodes() - 1,
            },
            DetectionEvent { layer: 3, node: 11 },
        ];
        for &a in &events {
            for &b in &events {
                let cu = uniform.cost_between(a, b);
                let cd = dijkstra.cost_between(a, b);
                assert!(
                    (cu - cd).abs() < 1e-9,
                    "{a} → {b}: uniform {cu} vs dijkstra {cd}"
                );
            }
            let (ul, uh) = uniform.boundary_costs(a);
            let (dl, dh) = dijkstra.boundary_costs(a);
            assert!((ul - dl).abs() < 1e-9, "{a} low boundary: {ul} vs {dl}");
            assert!((uh - dh).abs() < 1e-9, "{a} high boundary: {uh} vs {dh}");
        }
    }

    #[test]
    fn costs_scale_with_distance() {
        let g = graph(5);
        let costs = SpaceTimeCosts::new(&g, 5, WeightModel::uniform(1e-3));
        let a = DetectionEvent { layer: 0, node: 0 };
        let near = DetectionEvent { layer: 0, node: 1 };
        let far = DetectionEvent {
            layer: 4,
            node: g.num_nodes() - 1,
        };
        assert!(costs.cost_between(a, near) < costs.cost_between(a, far));
        assert_eq!(costs.cost_between(a, a), 0.0);
    }

    #[test]
    fn anomalous_region_creates_cheap_paths() {
        let g = graph(5);
        // Anomaly with p_ano = 0.5 covering the whole patch during layers 0..10:
        // every space edge becomes free, so any same-layer pair costs ~0.
        let region = AnomalousRegion::new(Coord::new(0, 0), 5, 0, 10, 0.5);
        let aware = SpaceTimeCosts::new(&g, 5, WeightModel::anomaly_aware(1e-3, vec![region], 0));
        let blind = SpaceTimeCosts::new(&g, 5, WeightModel::uniform(1e-3));
        let a = DetectionEvent { layer: 0, node: 0 };
        let b = DetectionEvent {
            layer: 0,
            node: g.num_nodes() - 1,
        };
        assert!(aware.cost_between(a, b) < 1e-9);
        assert!(blind.cost_between(a, b) > 1.0);
        // boundary costs also collapse
        let (low, high) = aware.boundary_costs(a);
        assert!(low < 1e-9 && high < 1e-9);
    }

    #[test]
    fn partial_anomaly_reroutes_paths_through_the_region() {
        let g = graph(5);
        // Anomaly covering only the middle rows: a path that detours through
        // the free region beats the straight expensive path.
        let region = AnomalousRegion::new(Coord::new(2, 0), 5, 0, 10, 0.5);
        let aware = SpaceTimeCosts::new(&g, 3, WeightModel::anomaly_aware(1e-3, vec![region], 0));
        // two nodes in the top row (row 0), far apart horizontally
        let left = g.node_index(Coord::new(0, 1)).unwrap();
        let right = g.node_index(Coord::new(0, 7)).unwrap();
        let a = DetectionEvent {
            layer: 0,
            node: left,
        };
        let b = DetectionEvent {
            layer: 0,
            node: right,
        };
        let straight = 3.0 * WeightModel::weight_of_rate(1e-3);
        let cost = aware.cost_between(a, b);
        // detour: down into the anomaly (row 2 is inside), across for free,
        // back up — 2 normal edges in total instead of 3.
        assert!(cost < straight - 1e-9, "cost {cost} vs straight {straight}");
        assert!(cost > 0.0);
    }

    #[test]
    fn boundary_sides_are_classified_correctly() {
        let g = graph(3);
        let costs = SpaceTimeCosts::new(&g, 2, WeightModel::uniform(1e-3));
        for e in g.edges() {
            if e.is_boundary() {
                let side = costs.boundary_side(e);
                if e.qubit.col == 0 {
                    assert_eq!(side, BoundarySide::Low);
                } else {
                    assert_eq!(side, BoundarySide::High);
                }
            }
        }
    }

    #[test]
    fn time_and_space_edges_both_contribute() {
        let g = graph(3);
        let costs = SpaceTimeCosts::new(&g, 4, WeightModel::uniform(1e-2));
        let w = WeightModel::weight_of_rate(1e-2);
        let a = DetectionEvent { layer: 0, node: 0 };
        let b = DetectionEvent { layer: 3, node: 0 };
        assert!((costs.cost_between(a, b) - 3.0 * w).abs() < 1e-9);
        let c = DetectionEvent { layer: 1, node: 1 };
        let expected = (g.space_distance(0, 1) as f64 + 1.0) * w;
        assert!((costs.cost_between(a, c) - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one event layer")]
    fn zero_layers_is_rejected() {
        let g = graph(3);
        let _ = SpaceTimeCosts::new(&g, 0, WeightModel::uniform(1e-3));
    }

    #[test]
    fn sparse_graph_has_the_expected_shape() {
        let g = graph(5);
        let layers = 4;
        let st = SpaceTimeGraph::build(&g, layers, &WeightModel::uniform(1e-3));
        assert_eq!(st.num_layers(), layers);
        assert_eq!(st.graph().num_vertices(), g.num_nodes() * layers);
        // per layer: every layer-graph edge, plus time edges except after
        // the last layer
        let expected_edges = layers * g.num_edges() + (layers - 1) * g.num_nodes();
        assert_eq!(st.graph().num_edges(), expected_edges);
        // boundary sides are recorded exactly for boundary edges
        let boundary_edges = (0..st.graph().num_edges())
            .filter(|&e| st.graph().edge(e).is_boundary())
            .count();
        let sided = (0..st.graph().num_edges())
            .filter(|&e| st.side_of(e).is_some())
            .count();
        assert_eq!(boundary_edges, sided);
        assert_eq!(boundary_edges, layers * g.boundary_edges().count());
    }

    #[test]
    fn in_place_reweight_matches_a_fresh_build_bit_for_bit() {
        let g = graph(5);
        let layers = 4;
        let uniform = WeightModel::uniform(1e-3);
        let region = AnomalousRegion::new(Coord::new(2, 0), 5, 0, 10, 0.5);
        let aware = WeightModel::anomaly_aware(1e-3, vec![region], 0);
        let mut st = SpaceTimeGraph::build(&g, layers, &uniform);
        // uniform → anomaly-aware: only region edges are rewritten
        st.reweight(&g, Some(&uniform), &aware);
        let fresh = SpaceTimeGraph::build(&g, layers, &aware);
        for e in 0..st.graph().num_edges() {
            assert_eq!(st.graph().edge(e).weight, fresh.graph().edge(e).weight);
        }
        // ... and back again
        st.reweight(&g, Some(&aware), &uniform);
        let back = SpaceTimeGraph::build(&g, layers, &uniform);
        for e in 0..st.graph().num_edges() {
            assert_eq!(st.graph().edge(e).weight, back.graph().edge(e).weight);
        }
        // a full recompute (no previous model) agrees too
        st.reweight(&g, None, &aware);
        for e in 0..st.graph().num_edges() {
            assert_eq!(st.graph().edge(e).weight, fresh.graph().edge(e).weight);
        }
    }

    #[test]
    #[should_panic(expected = "does not match the cached space-time graph")]
    fn reweight_rejects_a_different_layer_graph() {
        let g = graph(5);
        let other = graph(3);
        let mut st = SpaceTimeGraph::build(&g, 2, &WeightModel::uniform(1e-3));
        st.reweight(&other, None, &WeightModel::uniform(1e-3));
    }

    #[test]
    fn sparse_vertices_follow_the_state_indexing() {
        let g = graph(3);
        let st = SpaceTimeGraph::build(&g, 3, &WeightModel::uniform(1e-3));
        let e = DetectionEvent { layer: 2, node: 1 };
        assert_eq!(st.vertex_of(e), 2 * g.num_nodes() + 1);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn sparse_vertex_rejects_out_of_range_events() {
        let g = graph(3);
        let st = SpaceTimeGraph::build(&g, 2, &WeightModel::uniform(1e-3));
        let _ = st.vertex_of(DetectionEvent { layer: 2, node: 0 });
    }

    #[test]
    fn sparse_graph_weights_match_the_cost_oracle() {
        // Shortest paths on the sparse graph must agree with the dense
        // SpaceTimeCosts oracle, uniform and anomaly-aware alike.
        use q3de_matching::{DecoderBackend, ExactBackend};
        let g = graph(5);
        let layers = 3;
        let region = AnomalousRegion::new(Coord::new(2, 0), 5, 0, 10, 0.5);
        for model in [
            WeightModel::uniform(1e-2),
            WeightModel::anomaly_aware(1e-2, vec![region], 0),
        ] {
            let st = SpaceTimeGraph::build(&g, layers, &model);
            let oracle = SpaceTimeCosts::new(&g, layers, model.clone());
            let a = DetectionEvent { layer: 0, node: 0 };
            let b = DetectionEvent {
                layer: 2,
                node: g.num_nodes() - 1,
            };
            let defects = [st.vertex_of(a), st.vertex_of(b)];
            let m = ExactBackend::default().decode_defects(st.graph(), &defects);
            let backend_cost = m.total_cost();
            // the oracle's optimum for the same two events
            let pair = oracle.cost_between(a, b);
            let (al, ah) = oracle.boundary_costs(a);
            let (bl, bh) = oracle.boundary_costs(b);
            let optimum = pair.min(al.min(ah) + bl.min(bh));
            assert!(
                (backend_cost - optimum).abs() < 1e-9,
                "backend {backend_cost} vs oracle {optimum}"
            );
        }
    }
}
