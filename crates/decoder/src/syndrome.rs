//! Syndrome layers and detection events.

use std::fmt;

/// A detection event: an *active node* of the 3D syndrome lattice, i.e. a
/// position/time at which two consecutive syndrome measurements disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DetectionEvent {
    /// Event-layer index (`0` compares the first measured layer against the
    /// deterministic initial reference).
    pub layer: usize,
    /// Node index in the layer [`q3de_lattice::MatchingGraph`].
    pub node: usize,
}

impl fmt::Display for DetectionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(t={}, n={})", self.layer, self.node)
    }
}

/// The sequence of measured syndrome layers for one decoding sector.
///
/// Layer `t` holds the raw syndrome values `s_{i,t}` of every stabilizer
/// node `i` at code cycle `t`, in the node order of the layer
/// [`q3de_lattice::MatchingGraph`].  The final pushed layer is interpreted as
/// the *perfect* readout layer obtained from the destructive data-qubit
/// measurement that ends a memory experiment.
///
/// Layers are stored in one flat, contiguous buffer (`num_nodes` values per
/// layer): pushing a layer is a single `memcpy` into the tail — no
/// per-layer allocation — and [`SyndromeHistory::push_blank_layer`] lets
/// samplers write a layer in place without building a temporary `Vec` at
/// all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeHistory {
    num_nodes: usize,
    num_layers: usize,
    data: Vec<bool>,
}

impl SyndromeHistory {
    /// Creates an empty history over `num_nodes` stabilizer nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            num_layers: 0,
            data: Vec::new(),
        }
    }

    /// Number of stabilizer nodes per layer.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of layers pushed so far.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Whether no layer has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.num_layers == 0
    }

    /// Appends one measured syndrome layer (copied from the borrowed
    /// slice — callers never need to clone a `Vec` to push it).
    ///
    /// # Panics
    ///
    /// Panics if the layer length differs from [`SyndromeHistory::num_nodes`].
    pub fn push_layer(&mut self, layer: &[bool]) {
        assert_eq!(
            layer.len(),
            self.num_nodes,
            "syndrome layer has {} entries, expected {}",
            layer.len(),
            self.num_nodes
        );
        self.data.extend_from_slice(layer);
        self.num_layers += 1;
    }

    /// Appends an all-zero layer and returns it for in-place mutation — the
    /// allocation-free path the shot samplers write their measured
    /// syndromes through.
    pub fn push_blank_layer(&mut self) -> &mut [bool] {
        let start = self.data.len();
        self.data.resize(start + self.num_nodes, false);
        self.num_layers += 1;
        &mut self.data[start..]
    }

    /// The raw syndrome value `s_{node, layer}`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, layer: usize, node: usize) -> bool {
        assert!(layer < self.num_layers && node < self.num_nodes);
        self.data[layer * self.num_nodes + node]
    }

    /// The measured layer at index `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn layer(&self, t: usize) -> &[bool] {
        assert!(t < self.num_layers, "layer {t} out of range");
        &self.data[t * self.num_nodes..(t + 1) * self.num_nodes]
    }

    /// The measured layers in chronological order.
    pub fn layers(&self) -> impl Iterator<Item = &[bool]> + '_ {
        (0..self.num_layers).map(move |t| self.layer(t))
    }

    /// Whether the detection-event lattice node `(layer, node)` is active:
    /// the XOR of the syndrome at `layer` and at `layer − 1` (layer 0 is
    /// compared against the deterministic all-zero reference).
    pub fn is_active(&self, layer: usize, node: usize) -> bool {
        let current = self.value(layer, node);
        if layer == 0 {
            current
        } else {
            current ^ self.value(layer - 1, node)
        }
    }

    /// All detection events, in (layer, node) order.
    pub fn detection_events(&self) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        for layer in 0..self.num_layers {
            for node in 0..self.num_nodes {
                if self.is_active(layer, node) {
                    events.push(DetectionEvent { layer, node });
                }
            }
        }
        events
    }

    /// Number of active nodes in the given layer (used by the anomaly
    /// detection unit).
    pub fn active_count_in_layer(&self, layer: usize) -> usize {
        (0..self.num_nodes)
            .filter(|&n| self.is_active(layer, n))
            .count()
    }

    /// Truncates the history to its first `num_layers` layers, discarding the
    /// rest.  This is the primitive behind the decoder-rollback procedure
    /// (Sec. VI-C): forgetting recent matches amounts to re-decoding a
    /// truncated-then-extended history.
    pub fn truncate(&mut self, num_layers: usize) {
        if num_layers < self.num_layers {
            self.data.truncate(num_layers * self.num_nodes);
            self.num_layers = num_layers;
        }
    }

    /// Returns a sub-history covering layers `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn window(&self, start: usize, end: usize) -> SyndromeHistory {
        assert!(
            start <= end && end <= self.num_layers,
            "invalid window {start}..{end}"
        );
        SyndromeHistory {
            num_nodes: self.num_nodes,
            num_layers: end - start,
            data: self.data[start * self.num_nodes..end * self.num_nodes].to_vec(),
        }
    }

    /// Total number of detection events.
    pub fn num_detection_events(&self) -> usize {
        self.detection_events().len()
    }
}

/// Sixty-four [`SyndromeHistory`]s packed one per bit of a `u64` word.
///
/// The packed Monte-Carlo path simulates 64 independent shots of the same
/// sweep point at once: bit `lane` of the word at `(layer, node)` is the raw
/// syndrome value `s_{node, layer}` of shot `lane`.  Layers are stored in
/// the same flat layer-major layout as [`SyndromeHistory`], so the scalar
/// and packed representations agree on scan order — detector extraction,
/// lane signatures, and [`SyndromeBatch::lane_history`] all enumerate
/// `(layer, node)` identically, which is what lets the packed path share
/// the scalar decoder unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeBatch {
    num_nodes: usize,
    num_layers: usize,
    words: Vec<u64>,
}

impl SyndromeBatch {
    /// Creates an empty batch over `num_nodes` stabilizer nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            num_layers: 0,
            words: Vec::new(),
        }
    }

    /// Number of stabilizer nodes per layer.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of layers pushed so far.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Drops all layers, keeping the word buffer for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.num_layers = 0;
    }

    /// Appends an all-zero layer and returns it for in-place mutation — one
    /// `u64` of 64 lanes per stabilizer node.
    pub fn push_blank_layer(&mut self) -> &mut [u64] {
        let start = self.words.len();
        self.words.resize(start + self.num_nodes, 0);
        self.num_layers += 1;
        &mut self.words[start..]
    }

    /// The packed syndrome words of layer `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn layer(&self, t: usize) -> &[u64] {
        assert!(t < self.num_layers, "layer {t} out of range");
        &self.words[t * self.num_nodes..(t + 1) * self.num_nodes]
    }

    /// The detector word at `(layer, node)`: bit `lane` is set iff lane
    /// `lane` has a detection event there (syndrome XOR against the previous
    /// layer; layer 0 diffs against the all-zero reference).
    pub fn detector_word(&self, layer: usize, node: usize) -> u64 {
        let current = self.words[layer * self.num_nodes + node];
        if layer == 0 {
            current
        } else {
            current ^ self.words[(layer - 1) * self.num_nodes + node]
        }
    }

    /// Writes every detector word into `out` (cleared first) in `(layer,
    /// node)` scan order — one pass over the flat layer buffer, so hot
    /// callers extract all lanes' events from this buffer instead of
    /// re-deriving each word per lane.
    pub fn detector_words(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.num_layers * self.num_nodes);
        out.extend_from_slice(&self.words[..self.num_nodes.min(self.words.len())]);
        for layer in 1..self.num_layers {
            let prev = (layer - 1) * self.num_nodes;
            let cur = layer * self.num_nodes;
            for node in 0..self.num_nodes {
                out.push(self.words[cur + node] ^ self.words[prev + node]);
            }
        }
    }

    /// Bit `lane` is set iff lane `lane` has at least one detection event
    /// anywhere in the window.  Quiet lanes (`bit == 0`) decode to no
    /// correction, so the packed kernel skips the decoder for them.
    pub fn active_mask(&self) -> u64 {
        let mut mask = 0u64;
        for layer in 0..self.num_layers {
            for node in 0..self.num_nodes {
                mask |= self.detector_word(layer, node);
            }
        }
        mask
    }

    /// Appends lane `lane`'s detection events to `out` in `(layer, node)`
    /// order — the exact order [`SyndromeHistory::detection_events`] yields.
    pub fn lane_events(&self, lane: usize, out: &mut Vec<DetectionEvent>) {
        assert!(lane < 64, "lane {lane} out of range");
        for layer in 0..self.num_layers {
            for node in 0..self.num_nodes {
                if (self.detector_word(layer, node) >> lane) & 1 == 1 {
                    out.push(DetectionEvent { layer, node });
                }
            }
        }
    }

    /// Packs lane `lane`'s detector bits into `out` (cleared first), one bit
    /// per `(layer, node)` in scan order.  Two lanes with equal signatures
    /// have identical detection-event sets, so the signature is an exact
    /// memo key for any pure function of the events (such as the decoded
    /// correction's cut parity under a fixed weight model).
    pub fn lane_signature(&self, lane: usize, out: &mut Vec<u64>) {
        assert!(lane < 64, "lane {lane} out of range");
        out.clear();
        out.resize((self.num_layers * self.num_nodes).div_ceil(64), 0);
        let mut bit = 0usize;
        for layer in 0..self.num_layers {
            for node in 0..self.num_nodes {
                if (self.detector_word(layer, node) >> lane) & 1 == 1 {
                    out[bit / 64] |= 1u64 << (bit % 64);
                }
                bit += 1;
            }
        }
    }

    /// Unpacks lane `lane` into a scalar [`SyndromeHistory`] (used by the
    /// differential oracle to replay a packed-sampled shot through the
    /// scalar decode machinery).
    pub fn lane_history(&self, lane: usize) -> SyndromeHistory {
        assert!(lane < 64, "lane {lane} out of range");
        let mut history = SyndromeHistory::new(self.num_nodes);
        for layer in 0..self.num_layers {
            let packed = self.layer(layer);
            let out = history.push_blank_layer();
            for (node, value) in out.iter_mut().enumerate() {
                *value = (packed[node] >> lane) & 1 == 1;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(bits: &[usize], n: usize) -> Vec<bool> {
        let mut l = vec![false; n];
        for &b in bits {
            l[b] = true;
        }
        l
    }

    #[test]
    fn empty_history_has_no_events() {
        let h = SyndromeHistory::new(5);
        assert!(h.is_empty());
        assert_eq!(h.num_layers(), 0);
        assert!(h.detection_events().is_empty());
    }

    #[test]
    fn first_layer_diffs_against_zero_reference() {
        let mut h = SyndromeHistory::new(4);
        h.push_layer(&layer(&[1, 3], 4));
        let events = h.detection_events();
        assert_eq!(
            events,
            vec![
                DetectionEvent { layer: 0, node: 1 },
                DetectionEvent { layer: 0, node: 3 }
            ]
        );
    }

    #[test]
    fn persistent_syndrome_produces_single_event() {
        // A data error flips a stabilizer from some cycle onwards: the raw
        // syndrome stays 1 but only one detection event appears.
        let mut h = SyndromeHistory::new(3);
        h.push_layer(&layer(&[], 3));
        h.push_layer(&layer(&[2], 3));
        h.push_layer(&layer(&[2], 3));
        h.push_layer(&layer(&[2], 3));
        let events = h.detection_events();
        assert_eq!(events, vec![DetectionEvent { layer: 1, node: 2 }]);
    }

    #[test]
    fn measurement_blip_produces_two_events() {
        // A single wrong measurement outcome appears as a 1 sandwiched
        // between 0s: two detection events in consecutive layers.
        let mut h = SyndromeHistory::new(3);
        h.push_layer(&layer(&[], 3));
        h.push_layer(&layer(&[0], 3));
        h.push_layer(&layer(&[], 3));
        let events = h.detection_events();
        assert_eq!(
            events,
            vec![
                DetectionEvent { layer: 1, node: 0 },
                DetectionEvent { layer: 2, node: 0 }
            ]
        );
    }

    #[test]
    fn active_count_per_layer() {
        let mut h = SyndromeHistory::new(4);
        h.push_layer(&layer(&[0, 1], 4));
        h.push_layer(&layer(&[1, 2], 4));
        assert_eq!(h.active_count_in_layer(0), 2);
        // layer 1 vs layer 0: node 0 turns off, node 2 turns on → 2 events
        assert_eq!(h.active_count_in_layer(1), 2);
        assert_eq!(h.num_detection_events(), 4);
    }

    #[test]
    fn window_and_truncate() {
        let mut h = SyndromeHistory::new(2);
        for i in 0..5 {
            h.push_layer(&layer(&[i % 2], 2));
        }
        let w = h.window(1, 4);
        assert_eq!(w.num_layers(), 3);
        assert!(w.value(0, 1));
        h.truncate(2);
        assert_eq!(h.num_layers(), 2);
    }

    #[test]
    fn blank_layers_are_writable_in_place() {
        let mut h = SyndromeHistory::new(3);
        let blank = h.push_blank_layer();
        assert_eq!(blank, &[false; 3]);
        blank[1] = true;
        h.push_blank_layer();
        assert_eq!(h.num_layers(), 2);
        assert_eq!(h.layer(0), &[false, true, false]);
        assert_eq!(h.layer(1), &[false, false, false]);
        assert_eq!(
            h.detection_events(),
            vec![
                DetectionEvent { layer: 0, node: 1 },
                DetectionEvent { layer: 1, node: 1 }
            ]
        );
        assert_eq!(h.layers().count(), 2);
    }

    #[test]
    #[should_panic(expected = "expected 3")]
    fn wrong_layer_size_is_rejected() {
        let mut h = SyndromeHistory::new(3);
        h.push_layer(&[false; 4]);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn inverted_window_is_rejected() {
        let mut h = SyndromeHistory::new(1);
        h.push_layer(&[false]);
        let _ = h.window(1, 0);
    }

    /// Builds a batch whose lane `l` holds the history produced by
    /// `make(l)`, all sharing a layer count and node count.
    fn pack_lanes(num_nodes: usize, lanes: &[SyndromeHistory]) -> SyndromeBatch {
        let mut batch = SyndromeBatch::new(num_nodes);
        let num_layers = lanes[0].num_layers();
        for layer in 0..num_layers {
            let words = batch.push_blank_layer();
            for (lane, h) in lanes.iter().enumerate() {
                for (node, word) in words.iter_mut().enumerate() {
                    if h.value(layer, node) {
                        *word |= 1u64 << lane;
                    }
                }
            }
        }
        batch
    }

    #[test]
    fn detector_words_buffer_matches_per_word_queries() {
        let mut lanes = Vec::new();
        for lane in 0..7usize {
            let mut h = SyndromeHistory::new(3);
            h.push_layer(&layer(&[lane % 3], 3));
            h.push_layer(&layer(&[(lane + 1) % 3], 3));
            h.push_layer(&layer(&[], 3));
            lanes.push(h);
        }
        let batch = pack_lanes(3, &lanes);
        let mut buffer = Vec::new();
        batch.detector_words(&mut buffer);
        assert_eq!(buffer.len(), batch.num_layers() * batch.num_nodes());
        for layer in 0..batch.num_layers() {
            for node in 0..batch.num_nodes() {
                assert_eq!(
                    buffer[layer * batch.num_nodes() + node],
                    batch.detector_word(layer, node),
                    "(layer {layer}, node {node})"
                );
            }
        }
    }

    #[test]
    fn batch_lanes_round_trip_through_scalar_histories() {
        let mut lanes = Vec::new();
        for lane in 0..5usize {
            let mut h = SyndromeHistory::new(4);
            h.push_layer(&layer(&[lane % 4], 4));
            h.push_layer(&layer(&[(lane + 1) % 4, 2], 4));
            h.push_layer(&layer(&[], 4));
            lanes.push(h);
        }
        let batch = pack_lanes(4, &lanes);
        assert_eq!(batch.num_layers(), 3);
        assert_eq!(batch.num_nodes(), 4);
        for (lane, h) in lanes.iter().enumerate() {
            assert_eq!(&batch.lane_history(lane), h, "lane {lane}");
            let mut events = Vec::new();
            batch.lane_events(lane, &mut events);
            assert_eq!(events, h.detection_events(), "lane {lane}");
        }
        // unused lanes are all-zero
        assert!(batch.lane_history(63).detection_events().is_empty());
    }

    #[test]
    fn batch_detector_words_match_scalar_is_active() {
        let mut lanes = Vec::new();
        for lane in 0..3usize {
            let mut h = SyndromeHistory::new(3);
            h.push_layer(&layer(&[lane], 3));
            h.push_layer(&layer(&[lane], 3));
            h.push_layer(&layer(&[2], 3));
            lanes.push(h);
        }
        let batch = pack_lanes(3, &lanes);
        for (lane, h) in lanes.iter().enumerate() {
            for layer in 0..3 {
                for node in 0..3 {
                    assert_eq!(
                        (batch.detector_word(layer, node) >> lane) & 1 == 1,
                        h.is_active(layer, node),
                        "lane {lane} layer {layer} node {node}"
                    );
                }
            }
        }
    }

    #[test]
    fn active_mask_flags_exactly_the_eventful_lanes() {
        let mut eventful = SyndromeHistory::new(2);
        let mut quiet = SyndromeHistory::new(2);
        let mut blip = SyndromeHistory::new(2);
        for _ in 0..3 {
            quiet.push_blank_layer();
        }
        eventful.push_layer(&layer(&[1], 2));
        eventful.push_blank_layer();
        eventful.push_blank_layer();
        blip.push_blank_layer();
        blip.push_layer(&layer(&[0], 2));
        blip.push_blank_layer();
        let batch = pack_lanes(2, &[quiet.clone(), eventful, quiet, blip]);
        assert_eq!(batch.active_mask(), 0b1010);
    }

    #[test]
    fn lane_signatures_are_equal_iff_event_sets_are() {
        let mut a = SyndromeHistory::new(3);
        a.push_layer(&layer(&[0], 3));
        a.push_layer(&layer(&[0], 3));
        let b = a.clone();
        let mut c = SyndromeHistory::new(3);
        c.push_layer(&layer(&[1], 3));
        c.push_layer(&layer(&[1], 3));
        let batch = pack_lanes(3, &[a, b, c]);
        let (mut sa, mut sb, mut sc) = (Vec::new(), Vec::new(), Vec::new());
        batch.lane_signature(0, &mut sa);
        batch.lane_signature(1, &mut sb);
        batch.lane_signature(2, &mut sc);
        assert_eq!(sa, sb, "identical histories must share a signature");
        assert_ne!(sa, sc, "different event sets must differ");
        assert_eq!(sa.len(), 1, "6 detector bits fit one word");
    }

    #[test]
    fn clear_resets_layers_but_keeps_the_shape() {
        let mut batch = SyndromeBatch::new(3);
        batch.push_blank_layer()[1] = u64::MAX;
        batch.push_blank_layer();
        assert_eq!(batch.num_layers(), 2);
        assert_eq!(batch.active_mask(), u64::MAX);
        batch.clear();
        assert_eq!(batch.num_layers(), 0);
        assert_eq!(batch.num_nodes(), 3);
        assert_eq!(batch.active_mask(), 0);
    }
}
