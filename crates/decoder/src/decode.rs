//! The surface-code decoder: detection events → matching → correction parity.

use crate::spacetime::BoundarySide;
use crate::{DetectionEvent, SyndromeHistory, WeightModel};
use q3de_lattice::MatchingGraph;
use q3de_matching::{
    AltTreeBackend, BlossomBackend, DecoderBackend, ExactBackend, GreedyBackend, MatcherKind,
    UnionFindDecoder,
};

/// Tuning knobs of the [`SurfaceDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Which matching backend decodes the syndrome windows.
    pub matcher: MatcherKind,
    /// For the [`MatcherKind::Exact`] backend: clusters with at most this
    /// many detection events are matched exactly; larger clusters fall back
    /// to the refined greedy matcher.
    pub exact_cluster_threshold: usize,
    /// Maximum 2-opt improvement sweeps: the [`MatcherKind::Exact`]
    /// backend's large-cluster fallback and the [`MatcherKind::Greedy`]
    /// backend's repair pass both honour this bound.
    pub refine_rounds: usize,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            matcher: MatcherKind::Exact,
            exact_cluster_threshold: 16,
            refine_rounds: 64,
        }
    }
}

impl DecoderConfig {
    /// Selects the matching backend, builder style.
    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    /// Instantiates the configured [`DecoderBackend`].
    ///
    /// Backends carry their own scratch buffers (`decode_defects` takes
    /// `&mut self`), so the instance should be kept and reused — that is
    /// what [`crate::DecoderContext`] does.
    pub fn backend(&self) -> Box<dyn DecoderBackend + Send> {
        match self.matcher {
            MatcherKind::Exact => Box::new(ExactBackend::new(
                self.exact_cluster_threshold,
                self.refine_rounds,
            )),
            MatcherKind::Greedy => Box::new(GreedyBackend::new(self.refine_rounds)),
            MatcherKind::UnionFind => Box::new(UnionFindDecoder::default()),
            MatcherKind::Blossom => Box::new(BlossomBackend::new()),
            MatcherKind::Tree => Box::new(AltTreeBackend::new()),
        }
    }
}

/// A matched pair of detection events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPair {
    /// First event of the pair.
    pub a: DetectionEvent,
    /// Second event of the pair.
    pub b: DetectionEvent,
    /// The path cost of the pairing.
    pub cost: f64,
}

/// The result of decoding one syndrome window.
///
/// `PartialEq` compares outcomes field for field (costs included, exactly)
/// — reused-context decoding is *bit-identical* to fresh decoding, and the
/// reuse tests assert it through this impl.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeOutcome {
    /// All detection events of the window.
    pub events: Vec<DetectionEvent>,
    /// Event–event matches.
    pub pairs: Vec<MatchedPair>,
    /// Event–boundary matches with the chosen boundary side and cost.
    pub boundary_matches: Vec<(DetectionEvent, BoundarySide, f64)>,
    /// Total matching weight (sum of all pair and boundary costs).
    pub total_weight: f64,
    /// Number of independent clusters the matching decomposed into.
    pub num_clusters: usize,
}

impl DecodeOutcome {
    /// Number of detection events in the decoded window.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Whether the implied correction crosses the homological cut an odd
    /// number of times — true exactly when an odd number of events were
    /// matched to the low (cut-adjacent) boundary.
    pub fn correction_crosses_cut(&self) -> bool {
        self.boundary_matches
            .iter()
            .filter(|(_, side, _)| *side == BoundarySide::Low)
            .count()
            % 2
            == 1
    }

    /// Whether the decoded correction leaves a logical error, given the
    /// parity of *actual* error flips on the cut edges accumulated over the
    /// window.
    pub fn is_logical_failure(&self, error_cut_parity: bool) -> bool {
        self.correction_crosses_cut() != error_cut_parity
    }
}

/// A matching decoder for one error sector of the surface code.
///
/// The decoder builds the sparse space-time graph of the syndrome window
/// ([`crate::SpaceTimeGraph`]), hands it together with the detection events
/// to the configured [`DecoderBackend`] (exact, greedy, union-find or blossom — see
/// [`MatcherKind`]), and reports the correction parity needed for the
/// logical-failure check.  Anomaly-aware re-weighting is applied when the
/// graph is built, so every backend decodes the same re-weighted costs.
///
/// `SurfaceDecoder` is a convenience wrapper binding one layer graph to an
/// owned [`crate::DecoderContext`]: decoding takes `&mut self` because the context
/// keeps the space-time graph and the backend scratch warm between calls
/// (see the context docs for the invalidation rules).  Reuse changes
/// nothing but speed — every decode is bit-identical to a fresh decoder's.
///
/// Performance note: the dense backends extract pairwise defect costs with
/// Dijkstra on the sparse graph even under uniform weights (where a
/// closed-form Manhattan metric — still available via
/// [`crate::SpaceTimeCosts`] — would be cheaper).  Decoding throughput
/// should come from selecting [`MatcherKind::UnionFind`], which skips the
/// dense cost extraction entirely, rather than from special-casing the
/// uniform model inside every dense backend.
#[derive(Debug)]
pub struct SurfaceDecoder<'g> {
    graph: &'g MatchingGraph,
    context: crate::DecoderContext,
}

impl<'g> SurfaceDecoder<'g> {
    /// Creates a decoder with the default configuration.
    pub fn new(graph: &'g MatchingGraph) -> Self {
        Self::with_config(graph, DecoderConfig::default())
    }

    /// Creates a decoder with an explicit configuration.
    pub fn with_config(graph: &'g MatchingGraph, config: DecoderConfig) -> Self {
        Self {
            graph,
            context: crate::DecoderContext::new(config),
        }
    }

    /// The layer graph the decoder operates on.
    pub fn graph(&self) -> &MatchingGraph {
        self.graph
    }

    /// The decoder configuration.
    pub fn config(&self) -> DecoderConfig {
        self.context.config()
    }

    /// The persistent decoding state (cached space-time graph, backend
    /// scratch).
    pub fn context(&self) -> &crate::DecoderContext {
        &self.context
    }

    /// Decodes a syndrome window under the given weight model, reusing the
    /// cached space-time graph from earlier calls when the window shape
    /// matches (see [`crate::DecoderContext`]).
    ///
    /// # Panics
    ///
    /// Panics if the history's node count does not match the layer graph.
    pub fn decode(&mut self, history: &SyndromeHistory, model: &WeightModel) -> DecodeOutcome {
        self.context.decode(self.graph, history, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_lattice::{Coord, ErrorKind, Pauli, PauliString, StabilizerKind, SurfaceCode};

    /// Builds a syndrome history for a *static* data-qubit error pattern
    /// measured perfectly over `rounds` rounds (no measurement noise): the
    /// same syndrome repeats every layer.
    fn static_history(code: &SurfaceCode, error: &PauliString, rounds: usize) -> SyndromeHistory {
        let graph = code.matching_graph(ErrorKind::X);
        let syndrome = code.syndrome(StabilizerKind::Z, error);
        let mut h = SyndromeHistory::new(graph.num_nodes());
        for _ in 0..rounds {
            h.push_layer(&syndrome);
        }
        h
    }

    /// Parity of actual X-error flips on the cut (left-boundary data qubits).
    fn error_cut_parity(code: &SurfaceCode, error: &PauliString) -> bool {
        code.logical_z_support()
            .iter()
            .filter(|&&q| error.get(q).has_x_component())
            .count()
            % 2
            == 1
    }

    fn decode_static(code: &SurfaceCode, error: &PauliString) -> bool {
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        let history = static_history(code, error, 3);
        let outcome = decoder.decode(&history, &WeightModel::uniform(1e-3));
        outcome.is_logical_failure(error_cut_parity(code, error))
    }

    #[test]
    fn empty_syndrome_decodes_trivially() {
        let code = SurfaceCode::new(3).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        let mut h = SyndromeHistory::new(graph.num_nodes());
        for _ in 0..4 {
            h.push_layer(&vec![false; graph.num_nodes()]);
        }
        let outcome = decoder.decode(&h, &WeightModel::uniform(1e-3));
        assert_eq!(outcome.num_events(), 0);
        assert!(!outcome.correction_crosses_cut());
        assert!(!outcome.is_logical_failure(false));
        assert_eq!(outcome.total_weight, 0.0);
    }

    #[test]
    fn single_data_error_is_corrected() {
        let code = SurfaceCode::new(5).unwrap();
        for &q in code.data_qubits() {
            let error: PauliString = [(q, Pauli::X)].into_iter().collect();
            assert!(
                !decode_static(&code, &error),
                "single X on {q} was not corrected"
            );
        }
    }

    #[test]
    fn small_error_chains_are_corrected() {
        let code = SurfaceCode::new(5).unwrap();
        // any horizontal chain of ⌊(d−1)/2⌋ = 2 errors is correctable
        let error: PauliString = [(Coord::new(0, 0), Pauli::X), (Coord::new(0, 2), Pauli::X)]
            .into_iter()
            .collect();
        assert!(!decode_static(&code, &error));
        let error2: PauliString = [(Coord::new(4, 4), Pauli::X), (Coord::new(4, 6), Pauli::X)]
            .into_iter()
            .collect();
        assert!(!decode_static(&code, &error2));
    }

    #[test]
    fn logical_operator_is_a_failure() {
        // A full logical X chain has trivial syndrome; the decoder does
        // nothing and the residual is a logical error.
        let code = SurfaceCode::new(5).unwrap();
        let error: PauliString = code
            .logical_x_support()
            .into_iter()
            .map(|q| (q, Pauli::X))
            .collect();
        assert!(decode_static(&code, &error));
    }

    #[test]
    fn majority_chain_causes_failure_minority_does_not() {
        // d = 5: a chain of 3 along the logical direction is mis-corrected
        // (matched the short way), a chain of 2 is fine.
        let code = SurfaceCode::new(5).unwrap();
        let chain3: PauliString = [
            (Coord::new(0, 0), Pauli::X),
            (Coord::new(0, 2), Pauli::X),
            (Coord::new(0, 4), Pauli::X),
        ]
        .into_iter()
        .collect();
        assert!(
            decode_static(&code, &chain3),
            "weight-3 chain on d=5 should fail"
        );
        let chain2: PauliString = [(Coord::new(0, 0), Pauli::X), (Coord::new(0, 2), Pauli::X)]
            .into_iter()
            .collect();
        assert!(!decode_static(&code, &chain2));
    }

    #[test]
    fn measurement_blip_is_matched_in_time() {
        // A lone measurement error produces two vertically adjacent events
        // that should be matched together (not to the boundary).
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        let n = graph.num_nodes();
        let mut h = SyndromeHistory::new(n);
        let mut blip = vec![false; n];
        let central = graph.node_index(Coord::new(4, 5)).unwrap();
        blip[central] = true;
        h.push_layer(&vec![false; n]);
        h.push_layer(&blip);
        h.push_layer(&vec![false; n]);
        h.push_layer(&vec![false; n]);
        let outcome = decoder.decode(&h, &WeightModel::uniform(1e-3));
        assert_eq!(outcome.num_events(), 2);
        assert_eq!(outcome.pairs.len(), 1);
        assert!(outcome.boundary_matches.is_empty());
        assert!(!outcome.is_logical_failure(false));
    }

    #[test]
    fn boundary_matches_pick_the_nearest_side() {
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        // single X error on the leftmost data qubit of row 0 → one event next
        // to the low boundary
        let error: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        let history = static_history(&code, &error, 2);
        let outcome = decoder.decode(&history, &WeightModel::uniform(1e-3));
        assert_eq!(outcome.boundary_matches.len(), 1);
        assert_eq!(outcome.boundary_matches[0].1, BoundarySide::Low);
        assert!(outcome.correction_crosses_cut());
        // ... which exactly cancels the actual error's cut parity
        assert!(!outcome.is_logical_failure(error_cut_parity(&code, &error)));
    }

    #[test]
    fn anomaly_aware_weights_fix_a_burst_misdecoding() {
        // Construct the Fig. 6(a) situation: a burst of errors crossing an
        // anomalous band.  Decoded blindly, the chain of 3 (out of 5 columns)
        // is matched the short way and causes a logical error; decoded with
        // the anomalous region weighted in, the decoder correctly pairs the
        // events across the (cheap) region.
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        // anomalous band: columns 2..6 of every row (size 2 region at col 2)
        let region = q3de_noise::AnomalousRegion::new(Coord::new(0, 2), 4, 0, 100, 0.5);
        // actual error: X on the three data qubits of row 0 inside the band
        let error: PauliString = [
            (Coord::new(0, 2), Pauli::X),
            (Coord::new(0, 4), Pauli::X),
            (Coord::new(0, 6), Pauli::X),
        ]
        .into_iter()
        .collect();
        let history = static_history(&code, &error, 3);
        let parity = error_cut_parity(&code, &error);

        let blind = decoder.decode(&history, &WeightModel::uniform(1e-3));
        let aware = decoder.decode(&history, &WeightModel::anomaly_aware(1e-3, vec![region], 0));
        assert!(
            blind.is_logical_failure(parity),
            "blind decoding should mis-correct"
        );
        assert!(
            !aware.is_logical_failure(parity),
            "anomaly-aware decoding should succeed"
        );
    }

    #[test]
    fn clusters_are_reported() {
        let code = SurfaceCode::new(7).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        // two well-separated single errors → two independent clusters
        let error: PauliString = [(Coord::new(0, 0), Pauli::X), (Coord::new(12, 12), Pauli::X)]
            .into_iter()
            .collect();
        let history = static_history(&code, &error, 2);
        let outcome = decoder.decode(&history, &WeightModel::uniform(1e-3));
        assert!(outcome.num_clusters >= 2);
        assert!(!outcome.is_logical_failure(error_cut_parity(&code, &error)));
    }

    #[test]
    fn every_backend_corrects_single_errors() {
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        for kind in q3de_matching::MatcherKind::ALL {
            let mut decoder =
                SurfaceDecoder::with_config(&graph, DecoderConfig::default().with_matcher(kind));
            for &q in code.data_qubits() {
                let error: PauliString = [(q, Pauli::X)].into_iter().collect();
                let history = static_history(&code, &error, 3);
                let outcome = decoder.decode(&history, &WeightModel::uniform(1e-3));
                assert!(
                    !outcome.is_logical_failure(error_cut_parity(&code, &error)),
                    "{kind:?}: single X on {q} was not corrected"
                );
            }
        }
    }

    #[test]
    fn every_backend_fixes_the_burst_with_anomaly_aware_weights() {
        // The Fig. 6(a) situation of `anomaly_aware_weights_fix_a_burst_misdecoding`,
        // replayed through each backend: re-weighting must reach union-find
        // (as integer growth rates) exactly as it reaches the dense matchers.
        let code = SurfaceCode::new(5).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let region = q3de_noise::AnomalousRegion::new(Coord::new(0, 2), 4, 0, 100, 0.5);
        let error: PauliString = [
            (Coord::new(0, 2), Pauli::X),
            (Coord::new(0, 4), Pauli::X),
            (Coord::new(0, 6), Pauli::X),
        ]
        .into_iter()
        .collect();
        let history = static_history(&code, &error, 3);
        let parity = error_cut_parity(&code, &error);
        for kind in q3de_matching::MatcherKind::ALL {
            let mut decoder =
                SurfaceDecoder::with_config(&graph, DecoderConfig::default().with_matcher(kind));
            let aware =
                decoder.decode(&history, &WeightModel::anomaly_aware(1e-3, vec![region], 0));
            assert!(
                !aware.is_logical_failure(parity),
                "{kind:?}: anomaly-aware decoding should succeed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the node count")]
    fn mismatched_history_is_rejected() {
        let code = SurfaceCode::new(3).unwrap();
        let graph = code.matching_graph(ErrorKind::X);
        let mut decoder = SurfaceDecoder::new(&graph);
        let mut h = SyndromeHistory::new(graph.num_nodes() + 1);
        h.push_layer(&vec![false; graph.num_nodes() + 1]);
        let _ = decoder.decode(&h, &WeightModel::uniform(1e-3));
    }
}
