//! In-situ MBBE anomaly detection from syndrome statistics.
//!
//! Section IV of the paper detects cosmic-ray bursts *without touching the
//! qubits*: the anomaly-detection unit keeps, for every syndrome position, a
//! sliding-window count of active detection events.  Under normal operation
//! the count is approximately normal with mean `c_win·µ` and variance
//! `c_win·σ²` (central limit theorem over the window), so a per-position
//! threshold
//!
//! ```text
//! V_th = c_win·µ + sqrt(2·c_win·σ²) · erf⁻¹(1 − α)          (Eq. 3)
//! ```
//!
//! bounds the false-positive probability by `α`.  An MBBE is declared when
//! more than `n_th` positions exceed `V_th` simultaneously; its position is
//! estimated as the median of the offending positions and its onset as the
//! start of the detection window.
//!
//! This crate provides:
//!
//! * [`CalibrationStats`] — the per-node mean/variance `µ, σ²` of the
//!   active-node indicator, either measured or derived from the
//!   phenomenological noise model,
//! * [`DetectorConfig`] / [`AnomalyDetector`] — the streaming detection unit
//!   (the *active node counter* of Fig. 1),
//! * [`DetectedAnomaly`] — a detection report with estimated onset cycle and
//!   region centre,
//! * [`stats`] — the small numerics toolbox (inverse error function, normal
//!   quantiles) needed for the thresholds.

#![deny(missing_docs)]

mod calibration;
mod detector;
pub mod stats;

pub use calibration::CalibrationStats;
pub use detector::{AnomalyDetector, DetectedAnomaly, DetectorConfig};
