//! The streaming anomaly-detection unit.

use crate::{stats, CalibrationStats};
use q3de_lattice::Coord;
use std::collections::VecDeque;

/// Configuration of the [`AnomalyDetector`].
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Sliding-window length `c_win` in code cycles.
    pub window: usize,
    /// Confidence level `1 − α` of the per-node threshold (Eq. 3).
    pub confidence: f64,
    /// Number of simultaneously-triggered positions `n_th` required to
    /// declare an MBBE.
    pub count_threshold: usize,
    /// How long (in code cycles) triggered positions are excluded from the
    /// trigger count after a detection — the expected MBBE lifetime.
    pub anomaly_lifetime_cycles: u64,
    /// Chebyshev radius (in grid sites) around the estimated centre whose
    /// nodes are also excluded after a detection.
    pub suppression_radius: u32,
    /// Calibrated statistics of the active-node indicator.
    pub calibration: CalibrationStats,
}

impl DetectorConfig {
    /// A configuration with the paper's evaluation defaults
    /// (`1 − α = 0.99`, `n_th = 20`, 25 ms lifetime at 1 µs cycles).
    pub fn with_window(window: usize, calibration: CalibrationStats) -> Self {
        Self {
            window,
            confidence: 0.99,
            count_threshold: 20,
            anomaly_lifetime_cycles: 25_000,
            suppression_radius: 10,
            calibration,
        }
    }

    /// The per-node count threshold `V_th` of Eq. (3).
    pub fn threshold(&self) -> f64 {
        let cwin = self.window as f64;
        self.calibration.mu * cwin
            + (2.0 * cwin * self.calibration.variance()).sqrt()
                * stats::inverse_erf(self.confidence)
    }
}

/// A detected MBBE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedAnomaly {
    /// Code cycle at which the detector fired.
    pub detection_cycle: u64,
    /// Estimated onset cycle of the MBBE (start of the detection window).
    pub estimated_onset_cycle: u64,
    /// Estimated centre of the anomalous region: the median coordinate of
    /// the triggered syndrome positions.
    pub estimated_center: Coord,
    /// Indices of the syndrome nodes over threshold at detection time.
    pub triggered_nodes: Vec<usize>,
}

impl DetectedAnomaly {
    /// Detection latency implied by the onset estimate.
    ///
    /// Detections produced by [`AnomalyDetector::observe_layer`] always
    /// satisfy `estimated_onset_cycle <= detection_cycle` (the onset is the
    /// start of the window that *ends* at the detection cycle, and the
    /// window is at least one cycle long).  `DetectedAnomaly` has public
    /// fields, though, so hand-built values — replayed logs, synthetic
    /// fixtures, degenerate window arithmetic — may violate that invariant;
    /// the subtraction saturates to 0 rather than underflowing (which
    /// panicked in debug builds and wrapped to an absurd latency in
    /// release).
    pub fn estimated_latency(&self) -> u64 {
        self.detection_cycle
            .saturating_sub(self.estimated_onset_cycle)
    }
}

/// The anomaly-detection unit: per-position sliding-window counters of active
/// syndrome nodes, compared against the CLT threshold of Eq. (3).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    config: DetectorConfig,
    threshold: f64,
    positions: Vec<Coord>,
    ring: VecDeque<Vec<bool>>,
    counters: Vec<u32>,
    suppressed_until: Vec<u64>,
    cycle: u64,
    detections: Vec<DetectedAnomaly>,
}

impl AnomalyDetector {
    /// Creates a detector for syndrome nodes located at `positions` (index
    /// order must match the layers later passed to
    /// [`AnomalyDetector::observe_layer`]).
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or there are no positions.
    pub fn new(config: DetectorConfig, positions: Vec<Coord>) -> Self {
        assert!(config.window > 0, "detection window must be positive");
        assert!(
            !positions.is_empty(),
            "the detector needs at least one syndrome position"
        );
        let n = positions.len();
        let threshold = config.threshold();
        Self {
            config,
            threshold,
            positions,
            ring: VecDeque::new(),
            counters: vec![0; n],
            suppressed_until: vec![0; n],
            cycle: 0,
            detections: Vec::new(),
        }
    }

    /// The per-node threshold `V_th` in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Number of code cycles observed so far.
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// The current per-node windowed counts.
    pub fn counters(&self) -> &[u32] {
        &self.counters
    }

    /// All detections reported so far.
    pub fn detections(&self) -> &[DetectedAnomaly] {
        &self.detections
    }

    /// The node indices currently over threshold (ignoring suppression).
    pub fn nodes_over_threshold(&self) -> Vec<usize> {
        (0..self.counters.len())
            .filter(|&i| f64::from(self.counters[i]) > self.threshold)
            .collect()
    }

    /// Feeds one layer of active-node indicators (one bool per syndrome
    /// position) and returns a detection if the layer triggered one.
    ///
    /// # Panics
    ///
    /// Panics if `active` does not have one entry per syndrome position.
    pub fn observe_layer(&mut self, active: &[bool]) -> Option<DetectedAnomaly> {
        assert_eq!(
            active.len(),
            self.positions.len(),
            "layer has {} entries, expected {}",
            active.len(),
            self.positions.len()
        );
        let cycle = self.cycle;
        self.cycle += 1;

        //

        // Update the sliding window counters.
        for (i, &a) in active.iter().enumerate() {
            if a {
                self.counters[i] += 1;
            }
        }
        self.ring.push_back(active.to_vec());
        if self.ring.len() > self.config.window {
            let oldest = self.ring.pop_front().expect("ring was non-empty");
            for (i, &a) in oldest.iter().enumerate() {
                if a {
                    self.counters[i] -= 1;
                }
            }
        }
        if self.ring.len() < self.config.window {
            return None;
        }

        // Count triggered, non-suppressed positions.
        let triggered: Vec<usize> = (0..self.counters.len())
            .filter(|&i| {
                f64::from(self.counters[i]) > self.threshold && self.suppressed_until[i] <= cycle
            })
            .collect();
        if triggered.len() <= self.config.count_threshold {
            return None;
        }

        // Estimate the region centre as the per-axis median of triggered
        // positions.
        let mut rows: Vec<i32> = triggered.iter().map(|&i| self.positions[i].row).collect();
        let mut cols: Vec<i32> = triggered.iter().map(|&i| self.positions[i].col).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        let center = Coord::new(rows[rows.len() / 2], cols[cols.len() / 2]);

        // Suppress the triggered region for the MBBE lifetime so that a
        // second, distinct MBBE can still be detected.
        let until = cycle + self.config.anomaly_lifetime_cycles;
        for (i, &pos) in self.positions.iter().enumerate() {
            let near = pos.chebyshev(center) <= self.config.suppression_radius;
            if near || triggered.contains(&i) {
                self.suppressed_until[i] = self.suppressed_until[i].max(until);
            }
        }

        let detection = DetectedAnomaly {
            detection_cycle: cycle,
            estimated_onset_cycle: (cycle + 1).saturating_sub(self.config.window as u64),
            estimated_center: center,
            triggered_nodes: triggered,
        };
        self.detections.push(detection.clone());
        Some(detection)
    }

    /// Convenience wrapper: feeds a full stream of layers and returns every
    /// detection that fired.
    pub fn observe_stream<'a, I>(&mut self, layers: I) -> Vec<DetectedAnomaly>
    where
        I: IntoIterator<Item = &'a [bool]>,
    {
        layers
            .into_iter()
            .filter_map(|l| self.observe_layer(l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A grid of syndrome positions mimicking the Z-stabilizers of a
    /// distance-`d` code.
    fn positions(d: i32) -> Vec<Coord> {
        let mut v = Vec::new();
        for row in (0..2 * d - 1).step_by(2) {
            for col in (1..2 * d - 1).step_by(2) {
                v.push(Coord::new(row, col));
            }
        }
        v
    }

    fn config(window: usize, p: f64) -> DetectorConfig {
        DetectorConfig::with_window(window, CalibrationStats::bulk_surface_code(p))
    }

    fn bernoulli_layer<R: Rng>(
        positions: &[Coord],
        base: f64,
        hot: Option<(Coord, u32, f64)>,
        rng: &mut R,
    ) -> Vec<bool> {
        positions
            .iter()
            .map(|&pos| {
                let rate = match hot {
                    Some((center, radius, hot_rate)) if pos.chebyshev(center) <= radius => hot_rate,
                    _ => base,
                };
                rng.gen::<f64>() < rate
            })
            .collect()
    }

    #[test]
    fn threshold_matches_equation_three() {
        let cfg = config(100, 1e-3);
        let mu = cfg.calibration.mu;
        let sigma2 = cfg.calibration.variance();
        let expected = 100.0 * mu + (2.0 * 100.0 * sigma2).sqrt() * crate::stats::inverse_erf(0.99);
        assert!((cfg.threshold() - expected).abs() < 1e-12);
        assert!(cfg.threshold() > 100.0 * mu);
    }

    #[test]
    fn quiet_stream_never_triggers() {
        let pos = positions(11);
        let p = 1e-3;
        let cfg = config(200, p);
        let mu = cfg.calibration.mu;
        let mut det = AnomalyDetector::new(cfg, pos.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..2_000 {
            let layer = bernoulli_layer(&pos, mu, None, &mut rng);
            assert!(det.observe_layer(&layer).is_none());
        }
        assert!(det.detections().is_empty());
        assert_eq!(det.current_cycle(), 2_000);
    }

    #[test]
    fn burst_is_detected_with_position_and_latency() {
        let pos = positions(21);
        let p = 1e-3;
        let window = 150;
        let cfg = config(window, p);
        let mu = cfg.calibration.mu;
        let mut det = AnomalyDetector::new(cfg, pos.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let onset = 500u64;
        let center = Coord::new(20, 21);
        // active-node probability inside the burst: ~50 % (p_ano = 0.5)
        let mut detection = None;
        for cycle in 0..3_000u64 {
            let hot = if cycle >= onset {
                Some((center, 7, 0.5))
            } else {
                None
            };
            let layer = bernoulli_layer(&pos, mu, hot, &mut rng);
            if let Some(d) = det.observe_layer(&layer) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("the burst must be detected");
        assert!(
            d.detection_cycle >= onset,
            "detected before the burst started"
        );
        let latency = d.detection_cycle - onset;
        assert!(latency < 2 * window as u64, "latency {latency} too large");
        assert!(
            d.estimated_center.chebyshev(center) <= 6,
            "estimated centre {} too far from {center}",
            d.estimated_center
        );
        assert!(d.triggered_nodes.len() > 20);
        assert!(d.estimated_latency() <= window as u64);
    }

    #[test]
    fn estimated_latency_saturates_at_the_window_boundary() {
        // The earliest possible detection fires at cycle `window - 1` (the
        // first cycle with a full window), whose onset estimate is exactly
        // 0 — the boundary where `detection_cycle - estimated_onset_cycle`
        // has no slack.  A hand-built anomaly one past that boundary
        // (onset > detection, as degenerate window arithmetic used to
        // produce) must yield 0, not underflow.
        let boundary = DetectedAnomaly {
            detection_cycle: 9,
            estimated_onset_cycle: (9 + 1u64).saturating_sub(10), // window = 10
            estimated_center: Coord::new(0, 1),
            triggered_nodes: vec![0],
        };
        assert_eq!(boundary.estimated_onset_cycle, 0);
        assert_eq!(boundary.estimated_latency(), 9);
        let degenerate = DetectedAnomaly {
            estimated_onset_cycle: 10, // one past the detection cycle
            ..boundary.clone()
        };
        assert_eq!(
            degenerate.estimated_latency(),
            0,
            "an onset estimate past the detection cycle must saturate to 0"
        );
    }

    #[test]
    fn suppression_prevents_immediate_retrigger_but_allows_second_region() {
        let pos = positions(21);
        let p = 1e-3;
        let cfg = DetectorConfig {
            anomaly_lifetime_cycles: 100_000,
            ..config(150, p)
        };
        let mu = cfg.calibration.mu;
        let mut det = AnomalyDetector::new(cfg, pos.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let first_center = Coord::new(10, 11);
        let second_center = Coord::new(34, 33);
        let mut detections = Vec::new();
        for cycle in 0..6_000u64 {
            // first burst from cycle 300, second from cycle 3000
            let layer: Vec<bool> = pos
                .iter()
                .map(|&q| {
                    let mut rate = mu;
                    if cycle >= 300 && q.chebyshev(first_center) <= 7 {
                        rate = 0.5;
                    }
                    if cycle >= 3_000 && q.chebyshev(second_center) <= 7 {
                        rate = 0.5;
                    }
                    rng.gen::<f64>() < rate
                })
                .collect();
            if let Some(d) = det.observe_layer(&layer) {
                detections.push(d);
            }
        }
        assert_eq!(
            detections.len(),
            2,
            "exactly the two distinct bursts are reported"
        );
        assert!(detections[0].estimated_center.chebyshev(first_center) <= 6);
        assert!(detections[1].estimated_center.chebyshev(second_center) <= 6);
        assert!(detections[1].detection_cycle >= 3_000);
    }

    #[test]
    fn observe_stream_collects_detections() {
        let pos = positions(15);
        let p = 1e-3;
        let cfg = config(100, p);
        let mu = cfg.calibration.mu;
        let mut det = AnomalyDetector::new(cfg, pos.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let layers: Vec<Vec<bool>> = (0..1_500u64)
            .map(|cycle| {
                let hot = if cycle >= 400 {
                    Some((Coord::new(14, 15), 7, 0.5))
                } else {
                    None
                };
                bernoulli_layer(&pos, mu, hot, &mut rng)
            })
            .collect();
        let found = det.observe_stream(layers.iter().map(|l| l.as_slice()));
        assert_eq!(found.len(), det.detections().len());
        assert!(!found.is_empty());
    }

    #[test]
    #[should_panic(expected = "expected 4")]
    fn wrong_layer_length_is_rejected() {
        let cfg = config(10, 1e-3);
        let mut det = AnomalyDetector::new(
            cfg,
            vec![
                Coord::new(0, 1),
                Coord::new(0, 3),
                Coord::new(2, 1),
                Coord::new(2, 3),
            ],
        );
        det.observe_layer(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        let cfg = config(0, 1e-3);
        let _ = AnomalyDetector::new(cfg, vec![Coord::new(0, 1)]);
    }
}
