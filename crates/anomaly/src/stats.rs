//! Small statistics toolbox: error function, its inverse and normal
//! quantiles.
//!
//! The anomaly-detection threshold of Eq. (3) needs `erf⁻¹(1 − α)`.  The
//! implementations below are accurate to better than `1e-6` over the ranges
//! the detector uses and avoid any external dependency.

/// The error function `erf(x)`, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (absolute error < 1.5·10⁻⁷).
///
/// ```
/// use q3de_anomaly::stats::erf;
/// assert!((erf(0.0)).abs() < 1e-12);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// The inverse error function `erf⁻¹(y)` for `y ∈ (−1, 1)`.
///
/// Uses the Winitzki initial approximation refined by two Newton iterations
/// on `erf`, giving ~1e-9 accuracy in the bulk of the domain.
///
/// # Panics
///
/// Panics if `y` is not strictly inside `(−1, 1)`.
pub fn inverse_erf(y: f64) -> f64 {
    assert!(
        y > -1.0 && y < 1.0,
        "inverse_erf is only defined on (-1, 1), got {y}"
    );
    if y == 0.0 {
        return 0.0;
    }
    // Winitzki's approximation.
    let a = 0.147;
    let ln_term = (1.0 - y * y).ln();
    let first = 2.0 / (std::f64::consts::PI * a) + ln_term / 2.0;
    let mut x = (y.signum()) * ((first * first - ln_term / a).sqrt() - first).sqrt();
    // Newton refinement: f(x) = erf(x) − y, f'(x) = 2/√π · exp(−x²).
    for _ in 0..3 {
        let err = erf(x) - y;
        let derivative = 2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp();
        if derivative.abs() < 1e-300 {
            break;
        }
        x -= err / derivative;
    }
    x
}

/// The quantile (inverse CDF) of the standard normal distribution.
///
/// `normal_quantile(0.975) ≈ 1.96`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile needs p in (0, 1), got {p}"
    );
    std::f64::consts::SQRT_2 * inverse_erf(2.0 * p - 1.0)
}

/// The CDF of the standard normal distribution.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, expected) in cases {
            assert!(
                (erf(x) - expected).abs() < 2e-6,
                "erf({x}) = {} ≠ {expected}",
                erf(x)
            );
        }
    }

    #[test]
    fn inverse_erf_round_trips() {
        for &y in &[-0.99, -0.5, -0.1, 0.0, 0.123, 0.5, 0.9, 0.99, 0.999] {
            let x = inverse_erf(y);
            assert!((erf(x) - y).abs() < 1e-6, "erf(erf⁻¹({y})) = {}", erf(x));
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-3);
        assert!((normal_quantile(0.99) - 2.326348).abs() < 1e-3);
        assert!((normal_quantile(0.0013499) + 3.0).abs() < 2e-2);
    }

    #[test]
    fn normal_cdf_and_quantile_are_inverse() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "only defined on (-1, 1)")]
    fn inverse_erf_rejects_out_of_range() {
        let _ = inverse_erf(1.0);
    }

    #[test]
    #[should_panic(expected = "needs p in (0, 1)")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.0);
    }
}
