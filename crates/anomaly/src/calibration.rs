//! Calibration statistics of the active-node indicator.

/// Per-node statistics of the active-node indicator `v̂_{i,t}` under normal
/// (MBBE-free) operation: its mean `µ` and standard deviation `σ`.
///
/// The paper assumes these are measured during a pre-calibration phase
/// (Sec. IV-B).  [`CalibrationStats::phenomenological`] derives them from the
/// noise model instead: a detection event fires when an odd number of its
/// incident error mechanisms fire, and with `m` independent mechanisms each
/// of probability `p` the odd-parity probability is `(1 − (1 − 2p)^m) / 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationStats {
    /// Mean of the per-cycle active indicator.
    pub mu: f64,
    /// Standard deviation of the per-cycle active indicator.
    pub sigma: f64,
}

impl CalibrationStats {
    /// Creates statistics from an explicitly measured mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is not a probability or `sigma` is negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&mu),
            "µ must be a probability, got {mu}"
        );
        assert!(sigma >= 0.0, "σ must be non-negative, got {sigma}");
        Self { mu, sigma }
    }

    /// Derives the statistics for the phenomenological noise model: a node
    /// with `num_mechanisms` incident error mechanisms (its incident data
    /// qubits plus two measurement slots), each firing independently with
    /// probability `physical_error_rate` per cycle.
    ///
    /// ```
    /// use q3de_anomaly::CalibrationStats;
    /// let stats = CalibrationStats::phenomenological(1e-3, 6);
    /// assert!(stats.mu > 5e-3 && stats.mu < 7e-3);
    /// ```
    pub fn phenomenological(physical_error_rate: f64, num_mechanisms: usize) -> Self {
        let p = physical_error_rate.clamp(0.0, 0.5);
        let mu = (1.0 - (1.0 - 2.0 * p).powi(num_mechanisms as i32)) / 2.0;
        // The indicator is Bernoulli(µ).
        let sigma = (mu * (1.0 - mu)).sqrt();
        Self { mu, sigma }
    }

    /// The statistics for a typical bulk syndrome node of the surface code
    /// under the paper's noise model: four incident data qubits plus two
    /// measurement mechanisms.
    pub fn bulk_surface_code(physical_error_rate: f64) -> Self {
        Self::phenomenological(physical_error_rate, 6)
    }

    /// The variance `σ²`.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Mean of the windowed count over `window` cycles.
    pub fn window_mean(&self, window: usize) -> f64 {
        self.mu * window as f64
    }

    /// Standard deviation of the windowed count over `window` cycles
    /// (treating cycles as independent).
    pub fn window_sigma(&self, window: usize) -> f64 {
        self.sigma * (window as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phenomenological_mu_is_roughly_linear_at_small_p() {
        let stats = CalibrationStats::phenomenological(1e-4, 6);
        assert!((stats.mu - 6e-4).abs() / 6e-4 < 0.01);
        let stats = CalibrationStats::phenomenological(1e-3, 4);
        assert!((stats.mu - 4e-3).abs() / 4e-3 < 0.01);
    }

    #[test]
    fn mu_saturates_at_one_half() {
        let stats = CalibrationStats::phenomenological(0.5, 6);
        assert!((stats.mu - 0.5).abs() < 1e-12);
        assert!((stats.sigma - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_variance() {
        let stats = CalibrationStats::phenomenological(1e-2, 6);
        assert!((stats.variance() - stats.mu * (1.0 - stats.mu)).abs() < 1e-12);
    }

    #[test]
    fn window_statistics_scale() {
        let stats = CalibrationStats::new(0.01, 0.0995);
        assert!((stats.window_mean(300) - 3.0).abs() < 1e-12);
        assert!((stats.window_sigma(100) - 0.995).abs() < 1e-12);
    }

    #[test]
    fn bulk_helper_uses_six_mechanisms() {
        let a = CalibrationStats::bulk_surface_code(2e-3);
        let b = CalibrationStats::phenomenological(2e-3, 6);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_mu_is_rejected() {
        let _ = CalibrationStats::new(1.5, 0.1);
    }
}
