//! Decode-as-a-service: one decoder shard serving many logical chips.
//!
//! A fault-tolerant machine room does not give every logical qubit its own
//! decoder box — a *shard* of decoder workers is multiplexed across many
//! chips (tenants), and the architectural questions move from "can one
//! window be decoded in time" to service-level ones:
//!
//! * **latency** — the time from a syndrome window entering the shard to
//!   its correction being available, measured per tenant as p50/p99/p999
//!   over a log-bucketed [`LatencyHistogram`] (queue wait *included*: a
//!   window that sat behind a backlog is late no matter how fast the
//!   matcher ran),
//! * **backpressure** — every tenant owns a *bounded* queue; a window
//!   arriving at a full queue is shed and counted, never buffered without
//!   limit, so a misbehaving tenant cannot grow server memory,
//! * **fairness** — workers pick tenants round-robin with at most one
//!   in-flight window per tenant, so a tenant with a deep backlog (say,
//!   one hit by a cosmic ray whose windows all take the expensive rollback
//!   path) gets at most its share of service slots while quiet tenants
//!   keep their latency.  Per-tenant FIFO order is preserved by the same
//!   one-in-flight rule.
//!
//! The shard shares one [`ContextPool`]: workers check contexts out with
//! *structure affinity* ([`ContextPool::checkout_for`]), so a window is
//! decoded on a context whose cached space-time graph already matches its
//! shape whenever one is warm — steady-state operation builds **zero**
//! graphs, and [`TenantReport::graph_builds`] proves it per tenant.
//!
//! [`DecodeServer::finish`] drains the queues and returns a
//! [`ServiceReport`]; dropping the server instead aborts queued work.  The
//! `fig_service` bench ramps tenant count × strike rate over this server
//! until the p99 SLO breaks and prints the knee.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use q3de_decoder::{graph_key, ContextPool, DecoderConfig, SyndromeHistory};
use q3de_lattice::MatchingGraph;
use q3de_noise::AnomalousRegion;
use q3de_sim::StreamWindow;

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Bucket count for the full u64 nanosecond range at 16 sub-buckets per
/// octave: octaves 4..=63 plus the 16 exact low buckets.
const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS as usize + 16;

/// A log-bucketed latency histogram (16 sub-buckets per power of two,
/// ≤ ~6 % relative bucket width) covering 1 ns to the full `u64`
/// nanosecond range in a fixed ~1 KiB footprint, with O(1) record and
/// O(buckets) quantile extraction.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

fn bucket_index(ns: u64) -> usize {
    let ns = ns.max(1);
    let msb = 63 - u64::from(ns.leading_zeros());
    if msb < u64::from(SUB_BUCKET_BITS) {
        return ns as usize;
    }
    let octave = msb - u64::from(SUB_BUCKET_BITS) + 1;
    let sub = (ns >> (msb - u64::from(SUB_BUCKET_BITS))) & (SUB_BUCKETS - 1);
    (octave * SUB_BUCKETS + sub) as usize
}

fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (octave - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_ns / u128::from(self.count)) as u64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile in nanoseconds: an upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, clamped to the recorded
    /// maximum.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_floor(index + 1).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in nanoseconds.
    pub fn p999_ns(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle of a registered tenant (one chip's decode stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's registration index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Shard-level configuration of a [`DecodeServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of decode worker threads in the shard.  `0` is allowed and
    /// leaves every submitted window queued — useful for backpressure
    /// tests and for inspecting queue state without a racing consumer.
    pub workers: usize,
    /// Decoder configuration every context in the shared pool uses.
    pub decoder: DecoderConfig,
    /// Start with the workers paused; submissions queue until
    /// [`DecodeServer::resume`].
    pub start_paused: bool,
    /// Record the order in which windows complete (tenant id per window)
    /// for fairness analysis — see [`DecodeServer::completion_order`].
    pub record_completion_order: bool,
}

impl ServiceConfig {
    /// A configuration with the given worker count and default decoder.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            decoder: DecoderConfig::default(),
            start_paused: false,
            record_completion_order: false,
        }
    }

    /// Overrides the decoder configuration, builder style.
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// Starts the shard paused, builder style.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Enables the completion-order log, builder style.
    pub fn recording_completion_order(mut self) -> Self {
        self.record_completion_order = true;
        self
    }
}

/// One syndrome window submitted for decoding.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// The syndrome layers of the window.
    pub history: SyndromeHistory,
    /// Anomalous regions the detection unit reported for the window; a
    /// non-empty list routes the window through the two-pass rollback
    /// flow.
    pub regions: Vec<AnomalousRegion>,
    /// Absolute code cycle of the window's first layer (anchors the
    /// regions' time intervals).
    pub window_start_cycle: u64,
    /// Ground-truth logical cut parity when known (simulation), letting
    /// the server tally logical failures; `None` in production use.
    pub error_cut_parity: Option<bool>,
}

impl From<StreamWindow> for DecodeRequest {
    fn from(window: StreamWindow) -> Self {
        Self {
            history: window.history,
            regions: window.regions,
            window_start_cycle: window.window_start_cycle,
            error_cut_parity: Some(window.error_cut_parity),
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's bounded queue is full; the window was shed.
    Backpressure {
        /// The tenant whose queue was full.
        tenant: TenantId,
        /// The queue depth at rejection time (== the tenant's capacity).
        depth: usize,
    },
    /// No tenant with this id is registered.
    UnknownTenant(TenantId),
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { tenant, depth } => {
                write!(f, "{tenant} queue full at depth {depth}; window shed")
            }
            SubmitError::UnknownTenant(tenant) => write!(f, "{tenant} is not registered"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Receipt for an accepted window; pass to [`DecodeServer::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowTicket {
    tenant: TenantId,
    seq: u64,
}

impl WindowTicket {
    /// The tenant the window belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The window's per-tenant sequence number (0-based over accepted
    /// windows).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Point-in-time statistics of one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// The tenant's registration index.
    pub tenant: usize,
    /// Windows accepted into the queue.
    pub accepted: u64,
    /// Windows rejected because the queue was full.
    pub shed: u64,
    /// Windows decoded to completion.
    pub completed: u64,
    /// Windows currently queued.
    pub queue_depth: usize,
    /// Deepest the queue ever got.
    pub max_depth: usize,
    /// Completed windows that took the rollback re-execution path.
    pub rolled_back: u64,
    /// Completed windows that carried a ground-truth parity.
    pub parity_checked: u64,
    /// Parity-checked windows that ended in a logical failure.
    pub failures: u64,
    /// Space-time graphs built from scratch while serving this tenant —
    /// stays at 0 once the shard's contexts are warm for the tenant's
    /// window shape.
    pub graph_builds: u64,
    /// Mean submit-to-completion latency in nanoseconds.
    pub mean_ns: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Worst observed latency in nanoseconds.
    pub max_ns: u64,
}

impl TenantReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"tenant\":{},\"accepted\":{},\"shed\":{},\"completed\":{},\
             \"queue_depth\":{},\"max_depth\":{},\"rolled_back\":{},\
             \"parity_checked\":{},\"failures\":{},\"graph_builds\":{},\
             \"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
             \"max_ns\":{}}}",
            self.tenant,
            self.accepted,
            self.shed,
            self.completed,
            self.queue_depth,
            self.max_depth,
            self.rolled_back,
            self.parity_checked,
            self.failures,
            self.graph_builds,
            self.mean_ns,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_ns,
        )
    }
}

/// The schema version written to [`ServiceReport::to_json`] documents;
/// consumers reject other versions via
/// [`q3de_sim::engine::json::check_schema_version`].
pub const SERVICE_SCHEMA_VERSION: u64 = 1;

/// Snapshot of the whole shard, one entry per tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// Worker threads in the shard.
    pub workers: usize,
    /// Per-tenant statistics, in registration order.
    pub tenants: Vec<TenantReport>,
}

impl ServiceReport {
    /// The report as a single JSON document,
    /// `{"schema_version":V,"service":{"workers":N,"tenants":[...]}}` —
    /// parseable by [`q3de_sim::engine::json::JsonValue`].
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(TenantReport::to_json).collect();
        format!(
            "{{\"schema_version\":{SERVICE_SCHEMA_VERSION},\
             \"service\":{{\"workers\":{},\"tenants\":[{}]}}}}",
            self.workers,
            tenants.join(",")
        )
    }
}

struct Queued {
    request: DecodeRequest,
    enqueued_at: Instant,
}

struct TenantState {
    graph: Arc<MatchingGraph>,
    base_rate: f64,
    capacity: usize,
    queue: VecDeque<Queued>,
    busy: bool,
    accepted: u64,
    shed: u64,
    completed: u64,
    max_depth: usize,
    rolled_back: u64,
    parity_checked: u64,
    failures: u64,
    graph_builds: u64,
    latency: LatencyHistogram,
}

impl TenantState {
    fn report(&self, index: usize) -> TenantReport {
        TenantReport {
            tenant: index,
            accepted: self.accepted,
            shed: self.shed,
            completed: self.completed,
            queue_depth: self.queue.len(),
            max_depth: self.max_depth,
            rolled_back: self.rolled_back,
            parity_checked: self.parity_checked,
            failures: self.failures,
            graph_builds: self.graph_builds,
            mean_ns: self.latency.mean_ns(),
            p50_ns: self.latency.p50_ns(),
            p99_ns: self.latency.p99_ns(),
            p999_ns: self.latency.p999_ns(),
            max_ns: self.latency.max_ns(),
        }
    }
}

struct State {
    tenants: Vec<TenantState>,
    cursor: usize,
    paused: bool,
    draining: bool,
    aborting: bool,
    completion_order: Option<Vec<TenantId>>,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
    contexts: ContextPool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("decode server state poisoned")
    }
}

/// A long-running decode shard multiplexing many tenants — see the
/// [module docs](self).
pub struct DecodeServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: ServiceConfig,
}

impl DecodeServer {
    /// Starts the shard: spawns `config.workers` decode threads over one
    /// shared warm [`ContextPool`].
    pub fn new(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                tenants: Vec::new(),
                cursor: 0,
                paused: config.start_paused,
                draining: false,
                aborting: false,
                completion_order: config.record_completion_order.then(Vec::new),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            contexts: ContextPool::new(config.decoder),
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("decode-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn decode worker")
            })
            .collect();
        Self {
            shared,
            workers,
            config,
        }
    }

    /// The shard configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Registers a tenant: its matching graph, base physical error rate
    /// and bounded queue capacity.  Returns the handle submissions use.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is 0 — a tenant that can never accept a
    /// window is a configuration error.
    pub fn register(
        &self,
        graph: MatchingGraph,
        base_rate: f64,
        queue_capacity: usize,
    ) -> TenantId {
        assert!(queue_capacity > 0, "tenant queue capacity must be >= 1");
        let mut state = self.shared.lock();
        state.tenants.push(TenantState {
            graph: Arc::new(graph),
            base_rate,
            capacity: queue_capacity,
            queue: VecDeque::new(),
            busy: false,
            accepted: 0,
            shed: 0,
            completed: 0,
            max_depth: 0,
            rolled_back: 0,
            parity_checked: 0,
            failures: 0,
            graph_builds: 0,
            latency: LatencyHistogram::new(),
        });
        TenantId(state.tenants.len() - 1)
    }

    /// Submits a window for decoding.  Accepted windows decode in FIFO
    /// order per tenant; a window arriving at a full queue is shed
    /// ([`SubmitError::Backpressure`]) and counted against the tenant —
    /// queue memory never grows past the registered capacity.
    pub fn submit(
        &self,
        tenant: TenantId,
        request: impl Into<DecodeRequest>,
    ) -> Result<WindowTicket, SubmitError> {
        let request = request.into();
        let mut state = self.shared.lock();
        if state.draining || state.aborting {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = state
            .tenants
            .get_mut(tenant.0)
            .ok_or(SubmitError::UnknownTenant(tenant))?;
        let depth = slot.queue.len();
        if depth >= slot.capacity {
            slot.shed += 1;
            return Err(SubmitError::Backpressure { tenant, depth });
        }
        let seq = slot.accepted;
        slot.accepted += 1;
        slot.queue.push_back(Queued {
            request,
            enqueued_at: Instant::now(),
        });
        slot.max_depth = slot.max_depth.max(slot.queue.len());
        drop(state);
        self.shared.work.notify_one();
        Ok(WindowTicket { tenant, seq })
    }

    /// Current queue depth of a tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not registered.
    pub fn queue_depth(&self, tenant: TenantId) -> usize {
        self.shared.lock().tenants[tenant.0].queue.len()
    }

    /// Pauses the workers after their in-flight windows finish.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Blocks until the ticketed window has been decoded.
    ///
    /// # Panics
    ///
    /// Panics if the shard has no workers (the wait could never return) or
    /// if the workers are currently paused with the window still queued.
    pub fn wait(&self, ticket: WindowTicket) {
        assert!(
            self.config.workers > 0,
            "waiting on a shard with no workers would block forever"
        );
        let mut state = self.shared.lock();
        while state.tenants[ticket.tenant.0].completed <= ticket.seq {
            assert!(
                !state.paused,
                "waiting on a paused shard would block forever"
            );
            state = self
                .shared
                .done
                .wait(state)
                .expect("decode server state poisoned");
        }
    }

    /// Point-in-time statistics of one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not registered.
    pub fn stats(&self, tenant: TenantId) -> TenantReport {
        self.shared.lock().tenants[tenant.0].report(tenant.0)
    }

    /// Point-in-time snapshot of the whole shard.
    pub fn report(&self) -> ServiceReport {
        let state = self.shared.lock();
        ServiceReport {
            workers: self.config.workers,
            tenants: state
                .tenants
                .iter()
                .enumerate()
                .map(|(index, tenant)| tenant.report(index))
                .collect(),
        }
    }

    /// The completion-order log (tenant id per completed window, oldest
    /// first), if [`ServiceConfig::record_completion_order`] was set.
    pub fn completion_order(&self) -> Option<Vec<TenantId>> {
        self.shared.lock().completion_order.clone()
    }

    /// Stops accepting work, drains every queue, joins the workers and
    /// returns the final report.  With zero workers there is nothing to
    /// drain with: queued windows are dropped and the report shows them
    /// still queued.
    pub fn finish(mut self) -> ServiceReport {
        {
            let mut state = self.shared.lock();
            state.draining = true;
            // A paused shard still drains: finish overrides pause.
            state.paused = false;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("decode worker panicked");
        }
        self.report()
    }
}

impl Drop for DecodeServer {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.aborting = true;
            state.paused = false;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("decode worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.lock();
    loop {
        if state.aborting {
            return;
        }
        if state.paused {
            state = shared
                .work
                .wait(state)
                .expect("decode server state poisoned");
            continue;
        }
        // Round-robin over tenants that have work and no window in flight:
        // the one-in-flight rule keeps per-tenant FIFO order and stops a
        // backlogged tenant from occupying more than one worker.
        let num_tenants = state.tenants.len();
        let picked = (0..num_tenants)
            .map(|offset| (state.cursor + offset) % num_tenants)
            .find(|&index| {
                let tenant = &state.tenants[index];
                !tenant.busy && !tenant.queue.is_empty()
            });
        let Some(index) = picked else {
            if state.draining && state.tenants.iter().all(|tenant| tenant.queue.is_empty()) {
                return;
            }
            state = shared
                .work
                .wait(state)
                .expect("decode server state poisoned");
            continue;
        };
        state.cursor = (index + 1) % num_tenants;
        let tenant = &mut state.tenants[index];
        tenant.busy = true;
        let job = tenant.queue.pop_front().expect("picked tenant has work");
        let graph = Arc::clone(&tenant.graph);
        let base_rate = tenant.base_rate;
        drop(state);

        // Decode outside the scheduler lock on a structure-affine warm
        // context; other workers keep scheduling meanwhile.
        let key = graph_key(&graph, job.request.history.num_layers());
        let mut context = shared.contexts.checkout_for(key);
        let builds_before = context.graph_builds();
        let regions = (!job.request.regions.is_empty()).then_some(job.request.regions.as_slice());
        let outcome = context.decode_with_rollback(
            &graph,
            base_rate,
            &job.request.history,
            regions,
            job.request.window_start_cycle,
        );
        let graph_builds = context.graph_builds() - builds_before;
        let latency = job.enqueued_at.elapsed();
        let rolled_back = outcome.was_rolled_back();
        let failure = job
            .request
            .error_cut_parity
            .map(|parity| outcome.final_outcome().is_logical_failure(parity));
        shared.contexts.checkin(context);

        state = shared.lock();
        let tenant = &mut state.tenants[index];
        tenant.busy = false;
        tenant.completed += 1;
        tenant.graph_builds += graph_builds;
        if rolled_back {
            tenant.rolled_back += 1;
        }
        if let Some(failed) = failure {
            tenant.parity_checked += 1;
            if failed {
                tenant.failures += 1;
            }
        }
        tenant.latency.record(latency);
        if let Some(order) = state.completion_order.as_mut() {
            order.push(TenantId(index));
        }
        shared.done.notify_all();
        // The completed tenant may have more queued work that was blocked
        // only by its busy flag — wake a waiting worker for it.
        shared.work.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_sim::{AnomalyInjection, MemoryExperimentConfig, WindowSource};
    use rand_chacha::ChaCha8Rng;

    fn quiet_source(seed: u64) -> WindowSource {
        WindowSource::new(MemoryExperimentConfig::new(3, 8e-3), 0.0, seed).unwrap()
    }

    #[test]
    fn histogram_buckets_partition_the_range() {
        // Every bucket's floor must be the previous ceiling: contiguous,
        // monotone, and each value lands in a bucket containing it.
        let mut previous = 0;
        for index in 1..NUM_BUCKETS {
            let floor = bucket_floor(index);
            assert!(floor > previous, "bucket {index} not monotone");
            previous = floor;
        }
        for ns in [1u64, 2, 15, 16, 17, 31, 32, 1_000, 123_456_789, u64::MAX] {
            let index = bucket_index(ns);
            assert!(bucket_floor(index) <= ns, "ns {ns} below its bucket");
            if index + 1 < NUM_BUCKETS {
                assert!(ns < bucket_floor(index + 1), "ns {ns} above its bucket");
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut histogram = LatencyHistogram::new();
        assert_eq!(histogram.quantile(0.99), 0);
        for micros in 1..=1000u64 {
            histogram.record(Duration::from_micros(micros));
        }
        let (p50, p99, p999) = (histogram.p50_ns(), histogram.p99_ns(), histogram.p999_ns());
        assert!(p50 <= p99 && p99 <= p999 && p999 <= histogram.max_ns());
        // p50 of a uniform 1..=1000 µs set sits near 500 µs (≤6 % bucket
        // width plus the upper-bound convention).
        assert!((450_000..=600_000).contains(&p50), "p50 {p50} ns");
        assert!(p99 >= 900_000, "p99 {p99} ns");
        assert_eq!(histogram.count(), 1000);
        assert!(histogram.mean_ns() > 400_000);
    }

    #[test]
    fn windows_decode_and_the_cache_stays_warm() {
        let source = quiet_source(41);
        let server = DecodeServer::new(ServiceConfig::new(2));
        let tenant = server.register(source.graph().clone(), 8e-3, 64);
        let tickets: Vec<WindowTicket> = (0..24u64)
            .map(|stream| {
                server
                    .submit(tenant, source.window::<ChaCha8Rng>(stream))
                    .expect("queue has room")
            })
            .collect();
        assert_eq!(tickets[0].tenant(), tenant);
        assert_eq!(tickets[5].seq(), 5);
        for ticket in tickets {
            server.wait(ticket);
        }
        let report = server.finish();
        let stats = &report.tenants[0];
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.accepted, 24);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.parity_checked, 24);
        assert!(stats.p50_ns > 0 && stats.p50_ns <= stats.p99_ns);
        assert!(stats.p999_ns <= stats.max_ns);
        // Every window has the same structure: at most one cold build per
        // worker, never one per window.
        assert!(
            stats.graph_builds <= 2,
            "warm shard rebuilt {} graphs over 24 same-shape windows",
            stats.graph_builds
        );
    }

    #[test]
    fn unknown_tenants_are_rejected() {
        let source = quiet_source(42);
        let server = DecodeServer::new(ServiceConfig::new(1));
        let error = server
            .submit(TenantId(7), source.window::<ChaCha8Rng>(0))
            .unwrap_err();
        assert_eq!(error, SubmitError::UnknownTenant(TenantId(7)));
        assert!(error.to_string().contains("tenant7"));
    }

    #[test]
    fn report_json_round_trips_through_the_engine_parser() {
        let source = quiet_source(43);
        let server = DecodeServer::new(ServiceConfig::new(1));
        let tenant = server.register(source.graph().clone(), 8e-3, 16);
        for stream in 0..8u64 {
            server
                .submit(tenant, source.window::<ChaCha8Rng>(stream))
                .unwrap();
        }
        let report = server.finish();
        let doc = q3de_sim::engine::json::JsonValue::parse(&report.to_json())
            .expect("service report must be valid JSON");
        q3de_sim::engine::json::check_schema_version(
            &doc,
            SERVICE_SCHEMA_VERSION,
            "service report",
        )
        .expect("report carries the schema version this build writes");
        let service = doc.get("service").expect("service key");
        assert_eq!(service.get("workers").and_then(|w| w.as_usize()), Some(1));
        let tenants = service
            .get("tenants")
            .and_then(|t| t.as_array())
            .expect("tenants array");
        assert_eq!(tenants.len(), 1);
        let p999 = tenants[0]
            .get("p999_ns")
            .and_then(|v| v.as_f64())
            .expect("p999_ns");
        assert!(p999.is_finite() && p999 >= 0.0);
        assert_eq!(
            tenants[0].get("completed").and_then(|v| v.as_usize()),
            Some(8)
        );
    }

    #[test]
    fn finish_drains_queued_work_without_waits() {
        let source = quiet_source(44);
        let server = DecodeServer::new(ServiceConfig::new(2));
        let tenant = server.register(source.graph().clone(), 8e-3, 32);
        for stream in 0..16u64 {
            server
                .submit(tenant, source.window::<ChaCha8Rng>(stream))
                .unwrap();
        }
        let report = server.finish();
        assert_eq!(report.tenants[0].completed, 16);
        assert_eq!(report.tenants[0].queue_depth, 0);
    }

    #[test]
    fn drop_aborts_without_hanging() {
        let source = quiet_source(45);
        let server = DecodeServer::new(ServiceConfig::new(1).paused());
        let tenant = server.register(source.graph().clone(), 8e-3, 8);
        for stream in 0..8u64 {
            server
                .submit(tenant, source.window::<ChaCha8Rng>(stream))
                .unwrap();
        }
        drop(server); // queued windows are abandoned, workers join
    }

    #[test]
    #[should_panic(expected = "no workers")]
    fn waiting_without_workers_is_rejected() {
        let source = quiet_source(46);
        let server = DecodeServer::new(ServiceConfig::new(0));
        let tenant = server.register(source.graph().clone(), 8e-3, 4);
        let ticket = server
            .submit(tenant, source.window::<ChaCha8Rng>(0))
            .unwrap();
        server.wait(ticket);
    }

    #[test]
    fn struck_windows_take_the_rollback_path() {
        let config =
            MemoryExperimentConfig::new(3, 5e-3).with_anomaly(AnomalyInjection::centered(1, 0.5));
        let source = WindowSource::new(config, 1.0, 47).unwrap();
        let server = DecodeServer::new(ServiceConfig::new(1));
        let tenant = server.register(source.graph().clone(), 5e-3, 16);
        for stream in 0..8u64 {
            server
                .submit(tenant, source.window::<ChaCha8Rng>(stream))
                .unwrap();
        }
        let report = server.finish();
        assert_eq!(report.tenants[0].completed, 8);
        assert_eq!(
            report.tenants[0].rolled_back, 8,
            "every struck window must re-execute"
        );
    }
}
