//! # Q3DE — an MBBE-tolerant fault-tolerant quantum computing architecture
//!
//! This crate is the public facade of a full reproduction of
//! *"Q3DE: A fault-tolerant quantum computer architecture for multi-bit
//! burst errors by cosmic rays"* (Suzuki et al., MICRO 2022).  Q3DE extends
//! a standard surface-code FTQC architecture with three cooperating
//! mechanisms that mitigate the Multi-Bit Burst Errors (MBBEs) cosmic rays
//! induce on superconducting qubit chips:
//!
//! 1. **in-situ anomaly DEtection** — MBBEs are localised in space and time
//!    purely from the statistics of active syndrome nodes
//!    ([`anomaly::AnomalyDetector`]),
//! 2. **dynamic code DEformation** — the affected logical qubit is
//!    temporarily re-encoded at a larger code distance via the `op_expand`
//!    instruction ([`lattice::deformation`], [`control`]),
//! 3. **optimized error DEcoding** — the decoding pipeline is rolled back to
//!    the estimated MBBE onset and re-executed with anomaly-aware edge
//!    weights ([`decoder::ReExecutingDecoder`]).
//!
//! The substrate crates are re-exported as modules so a single dependency on
//! `q3de` gives access to the whole stack:
//!
//! | module | contents |
//! |---|---|
//! | [`lattice`] | planar surface-code geometry, matching graphs, code deformation |
//! | [`noise`] | stochastic Pauli noise, anomalous regions, cosmic-ray process |
//! | [`matching`] | exact, greedy and refined matching engines |
//! | [`decoder`] | space-time decoders, anomaly-aware weights, re-execution |
//! | [`anomaly`] | the statistical anomaly-detection unit |
//! | [`sim`] | Monte-Carlo memory and detection experiments |
//! | [`control`] | ISA, qubit plane, scheduler, Pauli frame, queues |
//! | [`scaling`] | Fig. 9 / Table III / Table IV analytic models |
//!
//! [`Q3dePipeline`] wires the pieces together for a single logical qubit:
//! it watches the syndrome stream, detects bursts, requests code expansion
//! and re-executes the decoder, mirroring the operational flow of Fig. 4 of
//! the paper.  [`SystemPipeline`] scales that to a chip: one pipeline per
//! patch of a [`lattice::ChipLayout`], with strikes placed in chip
//! coordinates (they may straddle patches) and every `op_expand` arbitrated
//! against a shared spare-qubit pool
//! ([`control::ExpansionArbiter`]).
//! [`service::DecodeServer`] turns the decoding stack into a long-running
//! shard: many chips (tenants) multiplexed over a fixed worker set with
//! bounded queues, round-robin fairness, a shared warm
//! [`decoder::ContextPool`] and per-tenant p50/p99/p999 latency reporting.
//!
//! ## Quickstart
//!
//! ```
//! use q3de::pipeline::{PipelineConfig, Q3dePipeline};
//! use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
//! use rand::SeedableRng;
//!
//! // Estimate the logical error rate of a distance-5 memory under a burst,
//! // with and without the Q3DE response.
//! let config = MemoryExperimentConfig::new(5, 5e-3)
//!     .with_anomaly(AnomalyInjection::centered(2, 0.5));
//! let experiment = MemoryExperiment::new(config)?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let blind = experiment.estimate(50, DecodingStrategy::Blind, &mut rng);
//! let aware = experiment.estimate(50, DecodingStrategy::AnomalyAware, &mut rng);
//! assert!(aware.logical_error_rate() <= blind.logical_error_rate() + 0.2);
//!
//! // The pipeline exposes the full detect → expand → re-decode flow.
//! let pipeline = Q3dePipeline::new(PipelineConfig::new(5, 5e-3))?;
//! assert_eq!(pipeline.config().distance, 5);
//! # Ok::<(), q3de::lattice::LatticeError>(())
//! ```

#![deny(missing_docs)]

pub mod pipeline;
pub mod service;
pub mod system;

pub use pipeline::{EpisodeReport, PipelineConfig, Q3dePipeline};
pub use service::{
    DecodeRequest, DecodeServer, LatencyHistogram, ServiceConfig, ServiceReport, SubmitError,
    TenantId, TenantReport, WindowTicket,
};
pub use system::{ExpansionOutcome, SystemConfig, SystemPipeline, SystemReport};

/// The statistical anomaly-detection unit.
pub use q3de_anomaly as anomaly;
/// The FTQC control unit: ISA, qubit plane, scheduler, queues, Pauli frame.
pub use q3de_control as control;
/// Space-time decoders with anomaly-aware weighting and re-execution.
pub use q3de_decoder as decoder;
/// Planar surface-code geometry, matching graphs and code deformation.
pub use q3de_lattice as lattice;
/// Matching engines (exact, greedy, refined).
pub use q3de_matching as matching;
/// Stochastic Pauli noise, anomalous regions and the cosmic-ray process.
pub use q3de_noise as noise;
/// Scalability, memory-overhead and decoder-hardware models.
pub use q3de_scaling as scaling;
/// Monte-Carlo memory and detection experiments.
pub use q3de_sim as sim;
