//! The end-to-end Q3DE pipeline for a single logical qubit.

use q3de_anomaly::{AnomalyDetector, CalibrationStats, DetectedAnomaly, DetectorConfig};
use q3de_control::queues::ExpansionRequest;
use q3de_control::{ExpansionQueue, Instruction, LogicalQubitId};
use q3de_decoder::{
    DecoderConfig, DecoderContext, MatcherKind, ReExecutionOutcome, SyndromeHistory,
};
use q3de_lattice::{
    deformation::ExpansionPlan, ErrorKind, LatticeError, MatchingGraph, SurfaceCode,
};
use q3de_noise::AnomalousRegion;

/// Configuration of the [`Q3dePipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Default code distance of the protected logical qubit.
    pub distance: usize,
    /// Physical error rate `p` of normal qubits per code cycle.
    pub physical_error_rate: f64,
    /// Anomaly-detection window `c_win`.
    pub detection_window: usize,
    /// Trigger count `n_th`.
    pub count_threshold: usize,
    /// Assumed anomalous error rate `p_ano` used when re-weighting the
    /// decoder after a detection.
    pub assumed_anomalous_rate: f64,
    /// Assumed anomaly size `d_ano` (sets the size of the re-weighted region
    /// and the expansion policy `d_exp ≥ d + 2·d_ano`).
    pub assumed_anomaly_size: usize,
    /// How long (in code cycles) an expansion is kept — the typical MBBE
    /// lifetime.
    pub expansion_keep_cycles: u64,
    /// The matching backend both decoding passes run through (see
    /// [`MatcherKind`] for the complexity/accuracy trade-off).
    pub matcher: MatcherKind,
    /// The logical qubit this pipeline protects.  Single-patch setups keep
    /// the default `LogicalQubitId(0)`; a [`crate::SystemPipeline`] assigns
    /// each patch its own id so `op_expand` requests name the right patch in
    /// the chip-level expansion queue.
    pub logical_id: LogicalQubitId,
}

impl PipelineConfig {
    /// A configuration with the paper's evaluation defaults.
    pub fn new(distance: usize, physical_error_rate: f64) -> Self {
        Self {
            distance,
            physical_error_rate,
            detection_window: 150,
            count_threshold: 20,
            assumed_anomalous_rate: 0.5,
            assumed_anomaly_size: 4,
            expansion_keep_cycles: 25_000,
            matcher: MatcherKind::Exact,
            logical_id: LogicalQubitId(0),
        }
    }

    /// Selects the matching backend, builder style.
    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    /// Overrides the anomaly-detection window `c_win`, builder style.
    pub fn with_detection_window(mut self, window: usize) -> Self {
        self.detection_window = window;
        self
    }

    /// Overrides the trigger count `n_th`, builder style.
    pub fn with_count_threshold(mut self, threshold: usize) -> Self {
        self.count_threshold = threshold;
        self
    }

    /// Overrides the assumed anomaly size `d_ano`, builder style.
    pub fn with_assumed_anomaly_size(mut self, size: usize) -> Self {
        self.assumed_anomaly_size = size;
        self
    }

    /// Overrides the assumed anomalous error rate `p_ano`, builder style.
    pub fn with_assumed_anomalous_rate(mut self, rate: f64) -> Self {
        self.assumed_anomalous_rate = rate;
        self
    }

    /// Overrides how long an expansion is kept, builder style.
    pub fn with_expansion_keep_cycles(mut self, cycles: u64) -> Self {
        self.expansion_keep_cycles = cycles;
        self
    }

    /// Assigns the logical qubit id the pipeline emits in its `op_expand`
    /// requests, builder style.
    pub fn with_logical_id(mut self, id: LogicalQubitId) -> Self {
        self.logical_id = id;
        self
    }

    /// The expansion target distance of the Sec. V-B policy:
    /// `d_exp ≥ d + 2·d_ano`, rounded up to the doubled-distance rule.
    pub fn expansion_distance(&self) -> usize {
        (self.distance + 2 * self.assumed_anomaly_size).max(2 * self.distance)
    }
}

/// What happened while processing one decoding window.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// The anomaly detection that fired, if any.
    pub detection: Option<DetectedAnomaly>,
    /// The `op_expand` instruction emitted in response, if any.
    pub expansion_instruction: Option<Instruction>,
    /// The region handed to the decoder for re-execution, if any.
    pub assumed_region: Option<AnomalousRegion>,
    /// The decoding outcome (first pass, and second pass when rolled back).
    pub decoding: ReExecutionOutcome,
}

impl EpisodeReport {
    /// Whether the pipeline reacted to an MBBE in this window.
    pub fn reacted(&self) -> bool {
        self.detection.is_some()
    }

    /// Whether the final correction crosses the homological cut.
    pub fn correction_crosses_cut(&self) -> bool {
        self.decoding.final_outcome().correction_crosses_cut()
    }
}

/// The Q3DE pipeline for one logical qubit: anomaly detection over the
/// syndrome stream, code-expansion requests and decoder re-execution
/// (Fig. 4 of the paper).
#[derive(Debug)]
pub struct Q3dePipeline {
    config: PipelineConfig,
    code: SurfaceCode,
    graph: MatchingGraph,
    detector: AnomalyDetector,
    expansion_queue: ExpansionQueue,
    /// The persistent decoding state of this logical qubit: both rollback
    /// passes of every window share its cached space-time graph and backend
    /// scratch.  It would only need rebuilding if the patch changed shape
    /// (expansion/shrink) — and even then the context's structural cache
    /// key rebuilds it on its own.
    decoder: DecoderContext,
    processed_cycles: u64,
}

impl Q3dePipeline {
    /// Builds the pipeline (code geometry, detector, queues).
    ///
    /// # Errors
    ///
    /// Returns an error if the code distance is invalid.
    pub fn new(config: PipelineConfig) -> Result<Self, LatticeError> {
        let code = SurfaceCode::new(config.distance)?;
        let graph = code.matching_graph(ErrorKind::X);
        let calibration = CalibrationStats::bulk_surface_code(config.physical_error_rate);
        let detector_config = DetectorConfig {
            window: config.detection_window,
            confidence: 0.99,
            count_threshold: config.count_threshold,
            anomaly_lifetime_cycles: config.expansion_keep_cycles,
            suppression_radius: 2 * config.assumed_anomaly_size as u32 + 2,
            calibration,
        };
        let detector = AnomalyDetector::new(detector_config, graph.nodes().to_vec());
        let decoder = DecoderContext::new(DecoderConfig::default().with_matcher(config.matcher));
        Ok(Self {
            config,
            code,
            graph,
            detector,
            expansion_queue: ExpansionQueue::new(),
            decoder,
            processed_cycles: 0,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The surface code protected by this pipeline.
    pub fn code(&self) -> &SurfaceCode {
        &self.code
    }

    /// The matching graph used by the decoder.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// The anomaly detector (for inspection).
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// The expansion plan implied by the configuration: the code distance is
    /// raised to at least `d + 2·d_ano`, rounded up to the doubled distance
    /// policy of Sec. V-B.
    pub fn expansion_plan(&self) -> Result<ExpansionPlan, LatticeError> {
        ExpansionPlan::new(self.config.distance, self.config.expansion_distance())
    }

    /// Number of pending `op_expand` requests not yet consumed by a
    /// scheduler.
    pub fn pending_expansions(&self) -> usize {
        self.expansion_queue.len()
    }

    /// Pops the oldest pending expansion request (what the instruction
    /// decoder/scheduler would do each cycle).
    pub fn pop_expansion_request(&mut self) -> Option<ExpansionRequest> {
        self.expansion_queue.pop()
    }

    /// Processes one decoding window: feeds its detection-event layers to
    /// the anomaly detector, emits an `op_expand` on detection, and decodes
    /// the window (re-executing with anomaly-aware weights when a burst was
    /// found).
    ///
    /// `history` must contain the raw syndrome layers of the window;
    /// `window_start_cycle` is the absolute code cycle of its first layer.
    pub fn process_window(
        &mut self,
        history: &SyndromeHistory,
        window_start_cycle: u64,
    ) -> EpisodeReport {
        // 1. Anomaly detection on the active-node stream of this window.
        let mut detection = None;
        let mut active = vec![false; history.num_nodes()];
        for layer in 0..history.num_layers() {
            for (node, slot) in active.iter_mut().enumerate() {
                *slot = history.is_active(layer, node);
            }
            if let Some(found) = self.detector.observe_layer(&active) {
                detection = Some(found);
            }
        }
        self.processed_cycles = window_start_cycle + history.num_layers() as u64;

        // 2. React: queue an op_expand and construct the assumed region.
        let (expansion_instruction, assumed_region) = match &detection {
            Some(found) => {
                let request = ExpansionRequest {
                    target: self.config.logical_id,
                    requested_cycle: found.detection_cycle,
                    keep_cycles: self.config.expansion_keep_cycles,
                };
                self.expansion_queue.request(request);
                let instruction = Instruction::OpExpand {
                    target: self.config.logical_id,
                    keep_cycles: self.config.expansion_keep_cycles,
                };
                let size = self.config.assumed_anomaly_size;
                let origin = found
                    .estimated_center
                    .offset(-(size as i32) + 1, -(size as i32) + 1);
                let region = AnomalousRegion::new(
                    origin,
                    size,
                    found.estimated_onset_cycle,
                    self.config.expansion_keep_cycles,
                    self.config.assumed_anomalous_rate,
                );
                (Some(instruction), Some(region))
            }
            None => (None, None),
        };

        // 3. Decode on the persistent context, re-executing when a region
        // was reported.
        let regions: Vec<AnomalousRegion> = assumed_region.into_iter().collect();
        let decoding = self.decoder.decode_with_rollback(
            &self.graph,
            self.config.physical_error_rate,
            history,
            if regions.is_empty() {
                None
            } else {
                Some(&regions)
            },
            window_start_cycle,
        );

        EpisodeReport {
            detection,
            expansion_instruction,
            assumed_region,
            decoding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_lattice::Coord;
    use q3de_noise::NoiseModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds a syndrome history for the pipeline's graph by sampling the
    /// given noise model (data errors persist, ancilla errors flip single
    /// measurements).
    fn sampled_history(
        pipeline: &Q3dePipeline,
        noise: &NoiseModel,
        rounds: usize,
        rng: &mut ChaCha8Rng,
    ) -> SyndromeHistory {
        let graph = pipeline.graph();
        let mut flipped = vec![false; graph.num_edges()];
        let mut history = SyndromeHistory::new(graph.num_nodes());
        for t in 0..rounds {
            for (ei, edge) in graph.edges().iter().enumerate() {
                if noise
                    .sample_pauli(edge.qubit, t as u64, rng)
                    .has_x_component()
                {
                    flipped[ei] = !flipped[ei];
                }
            }
            let layer: Vec<bool> = (0..graph.num_nodes())
                .map(|n| {
                    let mut parity = graph
                        .incident_edges(n)
                        .iter()
                        .filter(|&&e| flipped[e])
                        .count()
                        % 2
                        == 1;
                    if noise
                        .sample_pauli(graph.node(n), t as u64, rng)
                        .has_x_component()
                    {
                        parity = !parity;
                    }
                    parity
                })
                .collect();
            history.push_layer(&layer);
        }
        history
    }

    #[test]
    fn quiet_stream_produces_no_reaction() {
        let mut pipeline = Q3dePipeline::new(PipelineConfig::new(5, 1e-3)).unwrap();
        let noise = NoiseModel::uniform(1e-3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let history = sampled_history(&pipeline, &noise, 50, &mut rng);
        let report = pipeline.process_window(&history, 0);
        assert!(!report.reacted());
        assert!(report.expansion_instruction.is_none());
        assert!(!report.decoding.was_rolled_back());
        assert_eq!(pipeline.pending_expansions(), 0);
    }

    #[test]
    fn burst_triggers_detection_expansion_and_reexecution() {
        let config = PipelineConfig::new(7, 1e-3)
            .with_detection_window(60)
            .with_count_threshold(8)
            .with_assumed_anomaly_size(2);
        let mut pipeline = Q3dePipeline::new(config).unwrap();
        // burst covering the centre of the patch from cycle 100 onwards
        let region = AnomalousRegion::new(Coord::new(4, 4), 2, 100, 100_000, 0.5);
        let noise = NoiseModel::uniform(1e-3).with_anomaly(region);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let history = sampled_history(&pipeline, &noise, 400, &mut rng);
        let report = pipeline.process_window(&history, 0);
        assert!(report.reacted(), "the burst must be detected");
        let detection = report.detection.as_ref().unwrap();
        assert!(detection.detection_cycle >= 100);
        assert!(detection.estimated_center.chebyshev(region.center()) <= 6);
        assert!(matches!(
            report.expansion_instruction,
            Some(Instruction::OpExpand {
                target: LogicalQubitId(0),
                ..
            })
        ));
        assert!(report.decoding.was_rolled_back());
        assert_eq!(pipeline.pending_expansions(), 1);
        let request = pipeline.pop_expansion_request().unwrap();
        assert_eq!(request.target, LogicalQubitId(0));
        assert!(pipeline.pop_expansion_request().is_none());
    }

    #[test]
    fn union_find_backend_detects_and_rolls_back_bursts_too() {
        let config = PipelineConfig::new(7, 1e-3)
            .with_matcher(MatcherKind::UnionFind)
            .with_detection_window(60)
            .with_count_threshold(8)
            .with_assumed_anomaly_size(2);
        assert_eq!(config.matcher, MatcherKind::UnionFind);
        let mut pipeline = Q3dePipeline::new(config).unwrap();
        let region = AnomalousRegion::new(Coord::new(4, 4), 2, 100, 100_000, 0.5);
        let noise = NoiseModel::uniform(1e-3).with_anomaly(region);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let history = sampled_history(&pipeline, &noise, 400, &mut rng);
        let report = pipeline.process_window(&history, 0);
        assert!(report.reacted(), "the burst must be detected");
        assert!(report.decoding.was_rolled_back());
        assert_eq!(pipeline.pending_expansions(), 1);
    }

    #[test]
    fn expansion_plan_covers_the_assumed_anomaly() {
        let pipeline = Q3dePipeline::new(PipelineConfig::new(9, 1e-3)).unwrap();
        let plan = pipeline.expansion_plan().unwrap();
        assert!(plan.covers_anomaly(pipeline.config().assumed_anomaly_size));
        assert!(plan.expanded().distance() >= 2 * 9);
        assert_eq!(pipeline.code().distance(), 9);
    }

    #[test]
    fn invalid_distance_is_rejected() {
        assert!(Q3dePipeline::new(PipelineConfig::new(1, 1e-3)).is_err());
    }

    #[test]
    fn builder_setters_cover_every_knob() {
        let config = PipelineConfig::new(5, 1e-3)
            .with_detection_window(77)
            .with_count_threshold(11)
            .with_assumed_anomaly_size(3)
            .with_assumed_anomalous_rate(0.4)
            .with_expansion_keep_cycles(12_345)
            .with_matcher(MatcherKind::Greedy)
            .with_logical_id(LogicalQubitId(9));
        assert_eq!(config.detection_window, 77);
        assert_eq!(config.count_threshold, 11);
        assert_eq!(config.assumed_anomaly_size, 3);
        assert_eq!(config.assumed_anomalous_rate, 0.4);
        assert_eq!(config.expansion_keep_cycles, 12_345);
        assert_eq!(config.matcher, MatcherKind::Greedy);
        assert_eq!(config.logical_id, LogicalQubitId(9));
        // d_exp ≥ d + 2·d_ano, rounded up to the doubling policy.
        assert_eq!(config.expansion_distance(), 11);
        assert_eq!(
            PipelineConfig::new(5, 1e-3)
                .with_assumed_anomaly_size(4)
                .expansion_distance(),
            13
        );
    }
}
