//! The chip-level Q3DE pipeline: many patches, cross-patch strikes, and
//! expansion arbitration against a shared spare-qubit pool.
//!
//! [`Q3dePipeline`] protects exactly one logical
//! qubit.  The paper's headline results are *system*-level (Secs. V–VII): a
//! chip hosts a grid of patches, one cosmic-ray strike can straddle several
//! of them, and the `op_expand` responses compete for a shared pool of
//! spare physical qubits.  [`SystemPipeline`] owns one per-patch pipeline
//! (detector + decoder + expansion requests) per [`ChipLayout`] slot, steps
//! them window by window, and routes every emitted `op_expand` through the
//! control plane's [`ExpansionArbiter`]: a request is granted
//! (`d_exp ≥ d + 2·d_ano`) only while the spare budget allows, queues FIFO
//! otherwise, and its qubits return to the pool when the expansion expires.

use crate::pipeline::{EpisodeReport, PipelineConfig, Q3dePipeline};
use q3de_control::queues::{ExpansionBid, ExpansionDecision, ExpansionGrant};
use q3de_control::{ExpansionArbiter, LogicalQubitId};
use q3de_decoder::SyndromeHistory;
use q3de_lattice::{ChipLayout, LatticeError, PatchIndex};

/// Configuration of a [`SystemPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Patch rows on the chip.
    pub patch_rows: usize,
    /// Patch columns on the chip.
    pub patch_cols: usize,
    /// The per-patch pipeline configuration (every patch is identical; the
    /// system assigns each patch its own `logical_id`).
    pub patch: PipelineConfig,
    /// Spare physical qubits in the shared expansion pool.
    pub spare_qubits: usize,
}

impl SystemConfig {
    /// A chip of `patch_rows × patch_cols` patches running `patch` per
    /// patch, with `spare_qubits` spare qubits.
    pub fn new(
        patch_rows: usize,
        patch_cols: usize,
        patch: PipelineConfig,
        spare_qubits: usize,
    ) -> Self {
        Self {
            patch_rows,
            patch_cols,
            patch,
            spare_qubits,
        }
    }

    /// A spare budget that covers exactly `expansions` concurrent
    /// expansions under this configuration's `d → d_exp` policy.
    pub fn budget_for_expansions(patch: &PipelineConfig, expansions: usize) -> usize {
        expansions * ChipLayout::expansion_cost(patch.distance, patch.expansion_distance())
    }
}

/// What the system did with one patch's `op_expand` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionOutcome {
    /// The requesting patch.
    pub patch: PatchIndex,
    /// The arbiter's verdict.
    pub decision: ExpansionDecision,
}

/// Report of one chip-wide decoding window.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Per-patch episode reports, in the chip's row-major patch order.
    pub patch_reports: Vec<EpisodeReport>,
    /// The arbitration outcome of every `op_expand` emitted this window, in
    /// patch order.
    pub expansions: Vec<ExpansionOutcome>,
    /// Grants reclaimed by expiry at the end of the window.
    pub reclaimed: Vec<ExpansionGrant>,
    /// Grants issued to previously queued requests after the reclaim.
    pub unblocked: Vec<ExpansionGrant>,
}

impl SystemReport {
    /// The patches whose anomaly detector fired this window.
    pub fn detecting_patches(&self) -> Vec<usize> {
        self.patch_reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.reacted())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of expansions granted this window (fresh grants, not
    /// extensions), including unblocked queued requests.
    pub fn num_granted(&self) -> usize {
        self.expansions
            .iter()
            .filter(|o| matches!(o.decision, ExpansionDecision::Granted(_)))
            .count()
            + self.unblocked.len()
    }

    /// Number of requests left waiting in the expansion queue this window.
    pub fn num_queued(&self) -> usize {
        self.expansions
            .iter()
            .filter(|o| matches!(o.decision, ExpansionDecision::Queued { .. }))
            .count()
    }
}

/// The chip-level Q3DE system: one [`Q3dePipeline`] (anomaly detector +
/// decoder) per patch, stepped together, with `op_expand` requests routed
/// through a shared [`ExpansionArbiter`].
///
/// ```
/// use q3de::pipeline::PipelineConfig;
/// use q3de::system::{SystemConfig, SystemPipeline};
///
/// let patch = PipelineConfig::new(5, 1e-3);
/// // A 2×2 chip with spares for one concurrent expansion.
/// let budget = SystemConfig::budget_for_expansions(&patch, 1);
/// let system = SystemPipeline::new(SystemConfig::new(2, 2, patch, budget))?;
/// assert_eq!(system.num_patches(), 4);
/// assert_eq!(system.arbiter().spare_budget(), budget);
/// # Ok::<(), q3de::lattice::LatticeError>(())
/// ```
#[derive(Debug)]
pub struct SystemPipeline {
    config: SystemConfig,
    layout: ChipLayout,
    patches: Vec<Q3dePipeline>,
    arbiter: ExpansionArbiter,
    current_cycle: u64,
}

impl SystemPipeline {
    /// Builds the chip: layout, one pipeline per patch, and the arbiter.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch grid is empty or the code distance is
    /// invalid.
    pub fn new(config: SystemConfig) -> Result<Self, LatticeError> {
        let layout = ChipLayout::new(
            config.patch_rows,
            config.patch_cols,
            config.patch.distance,
            config.spare_qubits,
        )?;
        let patches = (0..layout.num_patches())
            .map(|i| Q3dePipeline::new(config.patch.with_logical_id(LogicalQubitId(i))))
            .collect::<Result<Vec<_>, _>>()?;
        let arbiter = ExpansionArbiter::new(config.spare_qubits);
        Ok(Self {
            config,
            layout,
            patches,
            arbiter,
            current_cycle: 0,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The chip geometry.
    pub fn layout(&self) -> &ChipLayout {
        &self.layout
    }

    /// Number of patches on the chip.
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    /// The per-patch pipeline at a row-major linear index.
    pub fn patch(&self, linear: usize) -> &Q3dePipeline {
        &self.patches[linear]
    }

    /// The expansion arbiter (budget, active grants, queue).
    pub fn arbiter(&self) -> &ExpansionArbiter {
        &self.arbiter
    }

    /// The last code cycle processed.
    pub fn current_cycle(&self) -> u64 {
        self.current_cycle
    }

    /// The logical qubit id of a patch.
    pub fn logical_id(&self, patch: PatchIndex) -> LogicalQubitId {
        LogicalQubitId(self.layout.linear_index(patch))
    }

    /// Processes one chip-wide decoding window: every patch consumes its
    /// own syndrome history (all windows start at `window_start_cycle`),
    /// every emitted `op_expand` is routed through the arbiter in patch
    /// order, and expired grants are reclaimed at the end of the window.
    ///
    /// # Panics
    ///
    /// Panics if `histories` does not hold exactly one history per patch.
    pub fn process_window(
        &mut self,
        histories: &[SyndromeHistory],
        window_start_cycle: u64,
    ) -> SystemReport {
        assert_eq!(
            histories.len(),
            self.patches.len(),
            "expected one syndrome history per patch ({}), got {}",
            self.patches.len(),
            histories.len()
        );

        // 1. Step every patch pipeline over its window.
        let patch_reports: Vec<EpisodeReport> = self
            .patches
            .iter_mut()
            .zip(histories)
            .map(|(patch, history)| patch.process_window(history, window_start_cycle))
            .collect();
        self.current_cycle = window_start_cycle
            + histories
                .iter()
                .map(|h| h.num_layers() as u64)
                .max()
                .unwrap_or(0);

        // 2. Route every patch's op_expand requests through the arbiter.
        let bid = self.expansion_bid();
        let mut expansions = Vec::new();
        for (linear, patch) in self.patches.iter_mut().enumerate() {
            while let Some(request) = patch.pop_expansion_request() {
                let decision = self.arbiter.arbitrate(request, bid, self.current_cycle);
                expansions.push(ExpansionOutcome {
                    patch: self.layout.patch_at(linear),
                    decision,
                });
            }
        }

        // 3. Shrink expired expansions and hand their qubits to the queue.
        let (reclaimed, unblocked) = self.arbiter.expire(self.current_cycle);

        SystemReport {
            patch_reports,
            expansions,
            reclaimed,
            unblocked,
        }
    }

    /// The bid every patch's `op_expand` carries under the configured
    /// `d_exp ≥ d + 2·d_ano` policy.
    pub fn expansion_bid(&self) -> ExpansionBid {
        let from = self.config.patch.distance;
        let to = self.config.patch.expansion_distance();
        ExpansionBid {
            from_distance: from,
            to_distance: to,
            cost_qubits: ChipLayout::expansion_cost(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_decoder::SyndromeHistory;

    fn quiet_histories(system: &SystemPipeline, layers: usize) -> Vec<SyndromeHistory> {
        (0..system.num_patches())
            .map(|i| {
                let n = system.patch(i).graph().num_nodes();
                let mut h = SyndromeHistory::new(n);
                for _ in 0..layers {
                    h.push_layer(&vec![false; n]);
                }
                h
            })
            .collect()
    }

    #[test]
    fn patches_get_distinct_logical_ids() {
        let system =
            SystemPipeline::new(SystemConfig::new(2, 3, PipelineConfig::new(3, 1e-3), 0)).unwrap();
        assert_eq!(system.num_patches(), 6);
        for i in 0..6 {
            assert_eq!(system.patch(i).config().logical_id, LogicalQubitId(i));
            assert_eq!(
                system.logical_id(system.layout().patch_at(i)),
                LogicalQubitId(i)
            );
        }
    }

    #[test]
    fn quiet_chip_reports_nothing() {
        let mut system =
            SystemPipeline::new(SystemConfig::new(2, 2, PipelineConfig::new(3, 1e-3), 100))
                .unwrap();
        let histories = quiet_histories(&system, 20);
        let report = system.process_window(&histories, 0);
        assert_eq!(report.patch_reports.len(), 4);
        assert!(report.detecting_patches().is_empty());
        assert!(report.expansions.is_empty());
        assert_eq!(report.num_granted(), 0);
        assert_eq!(report.num_queued(), 0);
        assert_eq!(system.arbiter().in_use(), 0);
        assert_eq!(system.current_cycle(), 20);
    }

    #[test]
    fn expansion_bid_follows_the_policy() {
        let patch = PipelineConfig::new(5, 1e-3).with_assumed_anomaly_size(4);
        let system = SystemPipeline::new(SystemConfig::new(1, 2, patch, 1_000)).unwrap();
        let bid = system.expansion_bid();
        assert_eq!(bid.from_distance, 5);
        assert_eq!(bid.to_distance, 13); // max(5 + 2·4, 2·5)
        assert_eq!(bid.cost_qubits, 25 * 25 - 9 * 9);
        assert_eq!(
            SystemConfig::budget_for_expansions(&patch, 2),
            2 * bid.cost_qubits
        );
    }

    #[test]
    fn mismatched_history_count_panics() {
        let mut system =
            SystemPipeline::new(SystemConfig::new(1, 2, PipelineConfig::new(3, 1e-3), 0)).unwrap();
        let histories = quiet_histories(&system, 5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            system.process_window(&histories[..1], 0)
        }));
        assert!(result.is_err());
    }
}
