//! Service-level tests of the decode shard: cross-tenant fairness under a
//! backlogged (cosmic-ray-struck) neighbour, and bounded queues under
//! overload.
//!
//! The fairness claim is pinned two ways: a *deterministic* one — with a
//! single worker and two backlogged tenants the round-robin scheduler must
//! interleave their completions exactly — and a *measured* one, per the
//! issue's "measure it, don't assume it": a quiet tenant's p99 latency in
//! contention with a struck tenant stays within a fixed factor of its solo
//! p99 (with an absolute floor absorbing scheduler wall-clock noise on
//! loaded CI machines).

use q3de::service::{DecodeServer, ServiceConfig, SubmitError};
use q3de::sim::{AnomalyInjection, MemoryExperimentConfig, WindowSource};
use rand_chacha::ChaCha8Rng;

const BASE_RATE: f64 = 5e-3;

fn quiet_source(seed: u64) -> WindowSource {
    WindowSource::new(MemoryExperimentConfig::new(3, BASE_RATE), 0.0, seed).unwrap()
}

fn struck_source(seed: u64) -> WindowSource {
    let config =
        MemoryExperimentConfig::new(3, BASE_RATE).with_anomaly(AnomalyInjection::centered(1, 0.5));
    WindowSource::new(config, 1.0, seed).unwrap()
}

#[test]
fn round_robin_interleaves_backlogged_tenants_deterministically() {
    const WINDOWS: u64 = 6;
    // One worker, paused: both tenants build a full backlog before any
    // window is served, so the completion order is a pure function of the
    // scheduler.
    let server = DecodeServer::new(ServiceConfig::new(1).paused().recording_completion_order());
    let struck = struck_source(0xA);
    let quiet = quiet_source(0xB);
    let noisy_tenant = server.register(struck.graph().clone(), BASE_RATE, 64);
    let quiet_tenant = server.register(quiet.graph().clone(), BASE_RATE, 64);
    let mut last_tickets = Vec::new();
    for stream in 0..WINDOWS {
        let noisy = server
            .submit(noisy_tenant, struck.window::<ChaCha8Rng>(stream))
            .unwrap();
        let quiet = server
            .submit(quiet_tenant, quiet.window::<ChaCha8Rng>(stream))
            .unwrap();
        if stream == WINDOWS - 1 {
            last_tickets = vec![noisy, quiet];
        }
    }
    server.resume();
    for ticket in last_tickets {
        server.wait(ticket);
    }
    // Despite the noisy tenant's expensive rollback windows, service slots
    // must alternate strictly: noisy, quiet, noisy, quiet, ...
    let order = server
        .completion_order()
        .expect("completion-order recording was enabled");
    assert_eq!(order.len() as u64, 2 * WINDOWS);
    for (position, tenant) in order.iter().enumerate() {
        let expected = if position % 2 == 0 {
            noisy_tenant
        } else {
            quiet_tenant
        };
        assert_eq!(
            *tenant, expected,
            "completion {position} went to {tenant}, breaking round-robin"
        );
    }
    let report = server.finish();
    assert_eq!(report.tenants[0].completed, WINDOWS);
    assert_eq!(report.tenants[1].completed, WINDOWS);
}

#[test]
fn backpressure_sheds_at_capacity_and_depth_never_grows() {
    const CAPACITY: usize = 4;
    // Zero workers: nothing drains, so the queue-bound claim is exact.
    let server = DecodeServer::new(ServiceConfig::new(0));
    let source = quiet_source(0xC);
    let tenant = server.register(source.graph().clone(), BASE_RATE, CAPACITY);
    for stream in 0..CAPACITY as u64 {
        server
            .submit(tenant, source.window::<ChaCha8Rng>(stream))
            .expect("queue below capacity must accept");
    }
    for stream in 0..3u64 {
        let error = server
            .submit(tenant, source.window::<ChaCha8Rng>(100 + stream))
            .expect_err("full queue must shed");
        assert_eq!(
            error,
            SubmitError::Backpressure {
                tenant,
                depth: CAPACITY
            }
        );
        assert_eq!(server.queue_depth(tenant), CAPACITY, "depth must not grow");
    }
    let stats = server.stats(tenant);
    assert_eq!(stats.accepted, CAPACITY as u64);
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.max_depth, CAPACITY);
    // finish() with no workers drops the queued windows instead of hanging.
    let report = server.finish();
    assert_eq!(report.tenants[0].completed, 0);
}

#[test]
fn quiet_tenant_p99_is_bounded_under_a_struck_neighbour() {
    const WINDOWS: u64 = 40;
    const BACKLOG: u64 = 60;
    // A generous factor with an absolute floor: the assertion must survive
    // noisy CI wall clocks, while still failing hard for an unfair
    // scheduler that lets the struck backlog starve the quiet tenant
    // (which would multiply its p99 by the whole backlog length).
    const FACTOR: u64 = 25;
    const FLOOR_NS: u64 = 5_000_000;

    // Solo baseline: the quiet tenant alone on a one-worker shard,
    // closed-loop (submit, wait) so latency is service time, not backlog.
    let quiet = quiet_source(0xD);
    let solo_server = DecodeServer::new(ServiceConfig::new(1));
    let solo_tenant = solo_server.register(quiet.graph().clone(), BASE_RATE, 8);
    for stream in 0..WINDOWS {
        let ticket = solo_server
            .submit(solo_tenant, quiet.window::<ChaCha8Rng>(stream))
            .unwrap();
        solo_server.wait(ticket);
    }
    let solo_p99 = solo_server.finish().tenants[0].p99_ns;

    // Contended run: same quiet closed loop, but a struck tenant keeps a
    // deep backlog of expensive rollback windows on the same worker.
    let struck = struck_source(0xE);
    let server = DecodeServer::new(ServiceConfig::new(1).paused());
    let noisy_tenant = server.register(struck.graph().clone(), BASE_RATE, BACKLOG as usize);
    let quiet_tenant = server.register(quiet.graph().clone(), BASE_RATE, 8);
    for stream in 0..BACKLOG {
        server
            .submit(noisy_tenant, struck.window::<ChaCha8Rng>(stream))
            .unwrap();
    }
    server.resume();
    for stream in 0..WINDOWS {
        let ticket = server
            .submit(quiet_tenant, quiet.window::<ChaCha8Rng>(stream))
            .unwrap();
        server.wait(ticket);
    }
    let report = server.finish();
    let contended = &report.tenants[quiet_tenant.index()];
    assert_eq!(contended.completed, WINDOWS);
    assert_eq!(contended.shed, 0);
    let bound = (FACTOR * solo_p99).max(FLOOR_NS);
    assert!(
        contended.p99_ns <= bound,
        "quiet tenant p99 {} ns exceeds {} ns (solo p99 {} ns): \
         the struck neighbour's backlog leaked into the quiet tenant",
        contended.p99_ns,
        bound,
        solo_p99
    );
    // The struck backlog itself must have drained during finish().
    assert_eq!(report.tenants[noisy_tenant.index()].completed, BACKLOG);
}

#[test]
fn shared_shard_builds_each_structure_once() {
    // Two tenants at different distances on one worker: the pool's
    // structure-affine checkout must build exactly one graph per distinct
    // window shape, independent of window count.
    let small = quiet_source(0xF);
    let large = WindowSource::new(MemoryExperimentConfig::new(5, BASE_RATE), 0.0, 0x10).unwrap();
    let server = DecodeServer::new(ServiceConfig::new(1));
    let small_tenant = server.register(small.graph().clone(), BASE_RATE, 32);
    let large_tenant = server.register(large.graph().clone(), BASE_RATE, 32);
    for stream in 0..12u64 {
        server
            .submit(small_tenant, small.window::<ChaCha8Rng>(stream))
            .unwrap();
        server
            .submit(large_tenant, large.window::<ChaCha8Rng>(stream))
            .unwrap();
    }
    let report = server.finish();
    let total_builds: u64 = report.tenants.iter().map(|t| t.graph_builds).sum();
    assert_eq!(
        total_builds, 2,
        "one worker serving two structures must build exactly two graphs"
    );
    assert!(report.tenants.iter().all(|t| t.completed == 12));
}
