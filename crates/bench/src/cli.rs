//! The shared command-line front end of the experiment binaries.
//!
//! Every binary in `src/bin/` used to hand-roll the same flag loop; this
//! module parses the engine flag set (`--samples`, `--seed`, `--matcher`,
//! `--threads`, `--target-rse`, `--checkpoint`, `--resume`, `--report`,
//! `--json`) exactly once, into one [`EngineArgs`] struct, and generates
//! identical `--help` text for every binary.  Binary-specific flags are
//! declared up front with [`Cli::flag`] and come back as [`ExtraValues`];
//! undeclared flags are an error (exit code 2), so a typo can no longer be
//! silently ignored.

use q3de::matching::MatcherKind;
use q3de::sim::engine::{SweepConfig, SweepPoint, SweepReport, SweepRunner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{adaptive_floor, format_row};

/// The engine arguments shared by every experiment binary.
///
/// Parsed by [`Cli::parse`]; the fields mirror the sweep engine's
/// [`SweepConfig`] (see [`EngineArgs::sweep_config`]).
#[derive(Debug, Clone)]
pub struct EngineArgs {
    /// Monte-Carlo shots (or trials) per data point.  With `--target-rse`
    /// this becomes the per-point shot *ceiling* of the adaptive schedule.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit machine-readable JSON lines on stdout; all human-readable
    /// tables and progress move to stderr so piped JSON stays parseable.
    pub json: bool,
    /// Matching backend the decoding binaries run
    /// (`--matcher exact|greedy|union-find|blossom|tree`).
    pub matcher: MatcherKind,
    /// Sweep worker threads (`--threads N`); `None` uses one per available
    /// core.  Thread count never changes tallies (pinned by the engine's
    /// thread-independence tests), only wall-clock time.
    pub threads: Option<usize>,
    /// Adaptive stopping target (`--target-rse 0.1`): stop a sweep point
    /// once the relative Wilson half-width of its tally reaches this value.
    /// `None` keeps the classic fixed-shot behaviour.
    pub target_rse: Option<f64>,
    /// Sweep checkpoint file (`--checkpoint PATH`): partial tallies are
    /// persisted there so a killed sweep can be resumed.
    pub checkpoint: Option<String>,
    /// Resume from the checkpoint file if it exists (`--resume`).
    pub resume: bool,
    /// Write the machine-readable sweep report (`--report PATH`), the
    /// `bench_report.json` artifact CI tracks.
    pub report: Option<String>,
}

impl EngineArgs {
    /// A reproducible RNG derived from the seed and a per-series salt.
    pub fn rng(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.stream_seed(salt))
    }

    /// The raw `u64` stream seed behind [`EngineArgs::rng`], for APIs
    /// (like [`q3de::sim::MemoryExperiment::estimate_parallel`] and the
    /// sweep engine's shot kernels) that derive per-shot RNGs themselves.
    pub fn stream_seed(&self, salt: u64) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt)
    }

    /// The sweep-engine configuration these flags describe: fixed
    /// `samples`-shot mode without `--target-rse`, adaptive mode (shot
    /// floor [`adaptive_floor`]`(samples)`, ceiling `samples`) with it,
    /// plus the thread-count and checkpoint/resume settings.
    pub fn sweep_config(&self) -> SweepConfig {
        let mut config = match self.target_rse {
            None => SweepConfig::fixed(self.samples),
            Some(rse) => SweepConfig::adaptive(adaptive_floor(self.samples), self.samples, rse),
        };
        if let Some(threads) = self.threads {
            config = config.with_threads(threads);
        }
        if let Some(path) = &self.checkpoint {
            config = config.with_checkpoint(path).with_resume(self.resume);
        }
        config
    }

    /// Runs `points` on the sweep engine under [`EngineArgs::sweep_config`],
    /// stamps the seed/sample metadata into the report, and writes the
    /// `--report` artifact if requested.  Engine errors (unreadable or
    /// mismatched checkpoints, unwritable reports) terminate the binary
    /// with exit code 2.
    pub fn run_sweep(&self, points: Vec<SweepPoint>) -> SweepReport {
        let runner = SweepRunner::new(self.sweep_config());
        let mut report = match runner.run(points) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("sweep failed: {error}");
                std::process::exit(2);
            }
        };
        report.meta = vec![
            ("seed".into(), self.seed.to_string()),
            ("samples".into(), self.samples.to_string()),
            ("matcher".into(), self.matcher.name().to_string()),
        ];
        if let Some(path) = &self.report {
            if let Err(error) = report.write_json(std::path::Path::new(path)) {
                eprintln!("cannot write report: {error}");
                std::process::exit(2);
            }
        }
        report
    }

    /// Prints a human-readable line: to stdout normally, to stderr in
    /// `--json` mode so machine-readable stdout stays parseable.
    pub fn human(&self, line: impl AsRef<str>) {
        if self.json {
            eprintln!("{}", line.as_ref());
        } else {
            println!("{}", line.as_ref());
        }
    }

    /// Prints an aligned human-readable table row (see
    /// [`format_row`]), routed like [`EngineArgs::human`].
    pub fn human_row(&self, label: &str, values: &[String]) {
        self.human(format_row(label, values));
    }
}

/// A binary-specific flag declared with [`Cli::flag`].
#[derive(Debug, Clone)]
struct ExtraFlag {
    /// The literal flag, `--workers`.
    flag: &'static str,
    /// The value placeholder shown in `--help` (`N`, `PATH`, …); empty for
    /// boolean flags that take no value.
    value: &'static str,
    /// One help line.
    help: &'static str,
}

/// The values of the binary-specific flags found on the command line.
#[derive(Debug, Clone, Default)]
pub struct ExtraValues {
    values: Vec<(&'static str, String)>,
}

impl ExtraValues {
    /// The value of `flag`, if it was given (last occurrence wins).
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of `flag`, in command-line order (for flags that may
    /// repeat, like `q3de-sweepctl merge --deltas A --deltas B`).
    pub fn all(&self, flag: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(f, _)| *f == flag)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether `flag` appeared at all (for boolean flags).
    pub fn is_set(&self, flag: &str) -> bool {
        self.values.iter().any(|(f, _)| *f == flag)
    }

    /// Parses the value of `flag`, terminating the binary with exit code 2
    /// (and `expected` in the message) when the value does not parse or
    /// fails `valid` — a typo must not silently fall back to a default.
    /// Returns `None` when the flag was not given.
    pub fn require<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &str,
        valid: impl Fn(&T) -> bool,
    ) -> Option<T> {
        let value = self.get(flag)?;
        match value.parse::<T>() {
            Ok(parsed) if valid(&parsed) => Some(parsed),
            _ => {
                eprintln!("invalid {flag} '{value}': expected {expected}");
                std::process::exit(2);
            }
        }
    }
}

/// A declarative command line for one experiment binary: name, summary,
/// default sample count and any binary-specific flags.  [`Cli::parse`]
/// yields the shared [`EngineArgs`] plus the [`ExtraValues`].
#[derive(Debug, Clone)]
pub struct Cli {
    bin: &'static str,
    summary: &'static str,
    default_samples: usize,
    default_matcher: MatcherKind,
    extras: Vec<ExtraFlag>,
}

impl Cli {
    /// A new command line for binary `bin` with the given one-line
    /// `summary` (shown in `--help`) and default `--samples` count.
    pub fn new(bin: &'static str, summary: &'static str, default_samples: usize) -> Self {
        Self {
            bin,
            summary,
            default_samples,
            default_matcher: MatcherKind::default(),
            extras: Vec::new(),
        }
    }

    /// Overrides the default matching backend (fig_threshold defaults to
    /// the alternating-tree matcher, for instance).
    pub fn default_matcher(mut self, matcher: MatcherKind) -> Self {
        self.default_matcher = matcher;
        self
    }

    /// Declares a binary-specific flag: the literal `flag` (`--workers`),
    /// its `--help` value placeholder (`N`; empty for boolean flags), and a
    /// one-line help text.
    pub fn flag(mut self, flag: &'static str, value: &'static str, help: &'static str) -> Self {
        self.extras.push(ExtraFlag { flag, value, help });
        self
    }

    /// Parses `std::env::args`.  `--help`/`-h` prints the generated help
    /// and exits 0; unknown flags and malformed values print an error and
    /// exit 2.
    pub fn parse(self) -> (EngineArgs, ExtraValues) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", self.help());
            std::process::exit(0);
        }
        match self.parse_from(&argv) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("{}: {message}", self.bin);
                eprintln!("run '{} --help' for the flag list", self.bin);
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (no leading program name).  The
    /// testable core of [`Cli::parse`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown flag, missing value or
    /// malformed value.
    pub fn parse_from(&self, argv: &[String]) -> Result<(EngineArgs, ExtraValues), String> {
        fn number<T: std::str::FromStr>(
            flag: &str,
            value: &str,
            expected: &str,
        ) -> Result<T, String> {
            value
                .parse::<T>()
                .map_err(|_| format!("invalid {flag} '{value}': expected {expected}"))
        }
        let mut args = EngineArgs {
            samples: self.default_samples,
            seed: 2022,
            json: false,
            matcher: self.default_matcher,
            threads: None,
            target_rse: None,
            checkpoint: None,
            resume: false,
            report: None,
        };
        let mut extras = ExtraValues::default();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let mut value = || -> Result<&String, String> {
                i += 1;
                argv.get(i)
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag {
                "--samples" => args.samples = number(flag, value()?, "a shot count")?,
                "--seed" => args.seed = number(flag, value()?, "an integer seed")?,
                "--matcher" => {
                    let name = value()?;
                    args.matcher = MatcherKind::parse(name).ok_or_else(|| {
                        format!(
                            "unknown matcher '{name}': expected \
                             exact|greedy|union-find|blossom|tree"
                        )
                    })?;
                }
                "--threads" => {
                    let threads: usize = number(flag, value()?, "an integer >= 1")?;
                    if threads == 0 {
                        return Err(format!("invalid {flag} '0': expected an integer >= 1"));
                    }
                    args.threads = Some(threads);
                }
                "--target-rse" => {
                    let rse: f64 = number(flag, value()?, "a positive number")?;
                    if rse.is_nan() || rse <= 0.0 {
                        return Err(format!(
                            "invalid {flag} '{rse}': expected a positive number"
                        ));
                    }
                    args.target_rse = Some(rse);
                }
                "--checkpoint" => args.checkpoint = Some(value()?.clone()),
                "--report" => args.report = Some(value()?.clone()),
                "--resume" => args.resume = true,
                "--json" => args.json = true,
                other => {
                    let Some(extra) = self.extras.iter().find(|e| e.flag == other) else {
                        return Err(format!("unknown flag '{other}'"));
                    };
                    if extra.value.is_empty() {
                        extras.values.push((extra.flag, String::new()));
                    } else {
                        extras.values.push((extra.flag, value()?.clone()));
                    }
                }
            }
            i += 1;
        }
        Ok((args, extras))
    }

    /// The generated `--help` text: identical engine section everywhere,
    /// plus a per-binary section when extra flags are declared.
    pub fn help(&self) -> String {
        let engine: Vec<(String, String)> = vec![
            (
                "--samples N".into(),
                format!(
                    "shots per data point (default {}; the shot ceiling with --target-rse)",
                    self.default_samples
                ),
            ),
            ("--seed N".into(), "base RNG seed (default 2022)".into()),
            (
                "--matcher NAME".into(),
                format!(
                    "matching backend: exact|greedy|union-find|blossom|tree (default {})",
                    self.default_matcher.name()
                ),
            ),
            (
                "--threads N".into(),
                "sweep worker threads (default: one per available core)".into(),
            ),
            (
                "--target-rse X".into(),
                "adaptive stop: finish a point once its relative standard error reaches X".into(),
            ),
            (
                "--checkpoint PATH".into(),
                "persist partial tallies to PATH after every committed block".into(),
            ),
            (
                "--resume".into(),
                "resume from the --checkpoint file when it exists".into(),
            ),
            (
                "--report PATH".into(),
                "write the machine-readable sweep report (bench_report.json) to PATH".into(),
            ),
            (
                "--json".into(),
                "JSON lines on stdout; human-readable output moves to stderr".into(),
            ),
            ("-h, --help".into(), "print this help text".into()),
        ];
        let extra: Vec<(String, String)> = self
            .extras
            .iter()
            .map(|e| {
                let left = if e.value.is_empty() {
                    e.flag.to_string()
                } else {
                    format!("{} {}", e.flag, e.value)
                };
                (left, e.help.to_string())
            })
            .collect();
        let width = engine
            .iter()
            .chain(&extra)
            .map(|(left, _)| left.len())
            .max()
            .unwrap_or(0);
        let mut out = format!(
            "{bin} — {summary}\n\nUsage: {bin} [OPTIONS]\n\nEngine options:\n",
            bin = self.bin,
            summary = self.summary
        );
        for (left, help) in &engine {
            out.push_str(&format!("  {left:<width$}  {help}\n"));
        }
        if !extra.is_empty() {
            out.push_str(&format!("\n{} options:\n", self.bin));
            for (left, help) in &extra {
                out.push_str(&format!("  {left:<width$}  {help}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    fn args() -> EngineArgs {
        Cli::new("test", "test binary", 100)
            .parse_from(&[])
            .unwrap()
            .0
    }

    #[test]
    fn defaults_are_used_without_cli_flags() {
        let args = args();
        assert_eq!(args.samples, 100);
        assert_eq!(args.seed, 2022);
        assert_eq!(args.matcher, MatcherKind::default());
        assert!(!args.json && !args.resume);
        assert!(args.threads.is_none() && args.target_rse.is_none());
        let mut a = args.rng(0);
        let mut b = args.rng(0);
        use rand::Rng;
        assert_eq!(
            a.gen::<u64>(),
            b.gen::<u64>(),
            "same salt gives the same stream"
        );
        let mut c = args.rng(1);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn engine_flags_parse_into_engine_args() {
        let cli = Cli::new("test", "test binary", 100);
        let (args, _) = cli
            .parse_from(&argv(
                "--samples 5000 --seed 7 --matcher blossom --threads 3 \
                 --target-rse 0.05 --checkpoint cp.json --resume --report out.json --json",
            ))
            .unwrap();
        assert_eq!(args.samples, 5000);
        assert_eq!(args.seed, 7);
        assert_eq!(args.matcher, MatcherKind::Blossom);
        assert_eq!(args.threads, Some(3));
        assert_eq!(args.target_rse, Some(0.05));
        assert_eq!(args.checkpoint.as_deref(), Some("cp.json"));
        assert!(args.resume);
        assert_eq!(args.report.as_deref(), Some("out.json"));
        assert!(args.json);
    }

    #[test]
    fn unknown_flags_and_malformed_values_are_errors() {
        let cli = Cli::new("test", "test binary", 100);
        for (line, needle) in [
            ("--wat", "unknown flag '--wat'"),
            ("--samples", "--samples requires a value"),
            ("--samples x", "invalid --samples"),
            ("--seed 1.5", "invalid --seed"),
            ("--matcher qec", "unknown matcher 'qec'"),
            ("--threads 0", "invalid --threads '0'"),
            ("--target-rse -1", "invalid --target-rse"),
            ("--target-rse nope", "invalid --target-rse"),
        ] {
            let err = cli.parse_from(&argv(line)).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn extra_flags_must_be_declared() {
        let bare = Cli::new("test", "test binary", 100);
        assert!(bare.parse_from(&argv("--workers 4")).is_err());
        let cli = Cli::new("test", "test binary", 100)
            .flag("--workers", "N", "decode workers")
            .flag("--fast", "", "boolean flag");
        let (_, extras) = cli
            .parse_from(&argv("--workers 4 --fast --workers 8"))
            .unwrap();
        assert_eq!(extras.get("--workers"), Some("8"), "last occurrence wins");
        assert!(extras.is_set("--fast"));
        assert!(!extras.is_set("--slow"));
        assert_eq!(extras.get("--slow"), None);
    }

    #[test]
    fn help_text_lists_every_engine_flag_and_the_extras() {
        let cli = Cli::new("fig_service", "decode-service capacity sweep", 48).flag(
            "--workers",
            "N",
            "decode worker threads per shard",
        );
        let help = cli.help();
        for flag in [
            "--samples",
            "--seed",
            "--matcher",
            "--threads",
            "--target-rse",
            "--checkpoint",
            "--resume",
            "--report",
            "--json",
            "--help",
            "--workers",
        ] {
            assert!(help.contains(flag), "help is missing {flag}:\n{help}");
        }
        assert!(help.contains("Usage: fig_service [OPTIONS]"));
        assert!(help.contains("default 48"));
        assert!(help.contains("fig_service options:"));
    }

    #[test]
    fn sweep_config_reflects_the_mode() {
        let fixed = args().sweep_config();
        assert_eq!(fixed.shot_floor, 64);
        assert_eq!(fixed.shot_ceiling, 100);
        assert_eq!(fixed.target_rse, None);
        assert_eq!(fixed.num_threads, None);

        let mut adaptive_args = args();
        adaptive_args.samples = 4000;
        adaptive_args.target_rse = Some(0.1);
        adaptive_args.threads = Some(2);
        adaptive_args.checkpoint = Some("cp.json".into());
        adaptive_args.resume = true;
        let adaptive = adaptive_args.sweep_config();
        assert_eq!(adaptive.shot_floor, 500);
        assert_eq!(adaptive.shot_ceiling, 4000);
        assert_eq!(adaptive.target_rse, Some(0.1));
        assert_eq!(adaptive.num_threads, Some(2));
        assert!(adaptive.resume);
        assert_eq!(
            adaptive.checkpoint.as_deref(),
            Some(std::path::Path::new("cp.json"))
        );
    }
}
