//! Named sweep registry: rebuildable point sets for the distributed fabric.
//!
//! A `q3de-sweepd` worker holds only a plan file — pure data (point ids and
//! schedule parameters), no kernels.  To run its shard it must rebuild the
//! *identical* kernels the planner used; this registry maps a sweep name
//! plus the engine arguments (seed, matcher) to that point list,
//! deterministically.  The figure binaries build their grids through the
//! same functions, so each figure's point set has exactly one definition —
//! a `fig3` sweep sharded over three machines and the `fig3` binary on a
//! laptop run the same streams.

use q3de::sim::engine::SweepPoint;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperimentConfig};
use rand_chacha::ChaCha8Rng;

use crate::EngineArgs;

/// The sweep names [`build`] understands.
pub const NAMES: &[&str] = &["fig3", "fig8"];

/// Builds the named sweep's full point list from the engine arguments.
/// Returns `None` for a name not in [`NAMES`].
pub fn build(name: &str, args: &EngineArgs) -> Option<Vec<SweepPoint>> {
    match name {
        "fig3" => Some(fig3_cells().iter().map(|c| fig3_point(c, args)).collect()),
        "fig8" => Some(fig8_points(args)),
        _ => None,
    }
}

/// The distances of the fig3 grid.
pub const FIG3_DISTANCES: [usize; 3] = [5, 9, 13];
/// The physical error rates of the fig3 grid.
pub const FIG3_ERROR_RATES: [f64; 6] = [4e-3, 8e-3, 1.6e-2, 2.4e-2, 3.2e-2, 4e-2];

/// One cell of the fig3 grid: a (distance, curve, error-rate) combination.
#[derive(Debug, Clone)]
pub struct Fig3Cell {
    /// Code distance.
    pub d: usize,
    /// Whether the cell injects an MBBE (`d_ano = 4`, `p_ano = 0.5`).
    pub mbbe: bool,
    /// Physical error rate.
    pub p: f64,
    /// Stream-seed salt (matches the pre-engine layout, so fixed-seed
    /// statistics are stable across refactors).
    pub salt: u64,
    /// The sweep point id.
    pub id: String,
}

/// The fig3 grid, in sweep order.
pub fn fig3_cells() -> Vec<Fig3Cell> {
    let mut cells = Vec::new();
    for &d in &FIG3_DISTANCES {
        for mbbe in [false, true] {
            for (pi, &p) in FIG3_ERROR_RATES.iter().enumerate() {
                cells.push(Fig3Cell {
                    d,
                    mbbe,
                    p,
                    salt: (d * 100 + pi) as u64,
                    id: format!("fig3/d={d}/mbbe={mbbe}/p={p:e}"),
                });
            }
        }
    }
    cells
}

/// The sweep point of one fig3 cell.
pub fn fig3_point(cell: &Fig3Cell, args: &EngineArgs) -> SweepPoint {
    let mut config = MemoryExperimentConfig::new(cell.d, cell.p).with_matcher(args.matcher);
    let strategy = if cell.mbbe {
        config = config.with_anomaly(AnomalyInjection::centered(4, 0.5));
        DecodingStrategy::Blind
    } else {
        DecodingStrategy::MbbeFree
    };
    SweepPoint::from_memory::<ChaCha8Rng>(&cell.id, config, strategy, args.stream_seed(cell.salt))
        .expect("valid distance")
}

/// The distances of the fig8 grid.
pub const FIG8_DISTANCES: [usize; 3] = [5, 7, 9];
/// The physical error rates of the fig8 grid.
pub const FIG8_ERROR_RATES: [f64; 4] = [4e-3, 1e-2, 2e-2, 4e-2];
/// The injected anomaly sizes of the fig8 grid.
pub const FIG8_ANOMALY_SIZES: [usize; 2] = [2, 4];

/// Id of a fig8 curve cell.
pub fn fig8_curve_id(dano: usize, d: usize, p: f64, strategy: DecodingStrategy) -> String {
    format!(
        "fig8/dano={dano}/d={d}/p={p:e}/{}",
        fig8_strategy_name(strategy)
    )
}

/// Id of a fig8 Eq. (4) input cell.
pub fn fig8_eq4_id(dano: usize, d: usize, strategy: DecodingStrategy) -> String {
    format!(
        "fig8/eq4/dano={dano}/d={d}/{}",
        fig8_strategy_name(strategy)
    )
}

/// Short name of a decoding strategy within fig8 ids.
pub fn fig8_strategy_name(strategy: DecodingStrategy) -> &'static str {
    match strategy {
        DecodingStrategy::MbbeFree => "free",
        DecodingStrategy::Blind => "blind",
        DecodingStrategy::AnomalyAware => "rollback",
    }
}

/// The fig8 grid: three curves per (d_ano, d, p) cell plus the Eq. (4)
/// inputs, in sweep order.
pub fn fig8_points(args: &EngineArgs) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    let memory_point = |id: &str, d: usize, p: f64, dano: usize, strategy, salt: u64| {
        let mut config = MemoryExperimentConfig::new(d, p).with_matcher(args.matcher);
        if strategy != DecodingStrategy::MbbeFree {
            config = config.with_anomaly(AnomalyInjection::centered(dano, 0.5));
        }
        SweepPoint::from_memory::<ChaCha8Rng>(id, config, strategy, args.stream_seed(salt))
            .expect("valid distance")
    };
    for &dano in &FIG8_ANOMALY_SIZES {
        for &d in &FIG8_DISTANCES {
            for (pi, &p) in FIG8_ERROR_RATES.iter().enumerate() {
                // stride-4 salts: stream_seed is additive in the salt, so a
                // unit stride would alias one strategy's streams with its
                // neighbour data point's
                let salt = 4 * (dano * 1000 + d * 10 + pi) as u64;
                for (k, strategy) in [
                    DecodingStrategy::MbbeFree,
                    DecodingStrategy::Blind,
                    DecodingStrategy::AnomalyAware,
                ]
                .into_iter()
                .enumerate()
                {
                    // The MBBE-free curve carries no anomaly, so it is the
                    // same point for both dano values — but it keeps its own
                    // streams (as before the engine migration) for identical
                    // fixed-seed statistics.
                    points.push(memory_point(
                        &fig8_curve_id(dano, d, p, strategy),
                        d,
                        p,
                        dano,
                        strategy,
                        salt + k as u64,
                    ));
                }
            }
        }
        // Eq. (4) inputs at the lowest error rate: disjoint stride-4 salt
        // block, offset past the row salts and folded over dano so no two
        // estimates share a stream.
        let p = FIG8_ERROR_RATES[0];
        let eq4_salt = |dist: usize, k: u64| 4 * (50_000 + dano as u64 * 1_000 + dist as u64) + k;
        for &d in &FIG8_DISTANCES[1..] {
            points.push(memory_point(
                &fig8_eq4_id(dano, d, DecodingStrategy::MbbeFree),
                d,
                p,
                dano,
                DecodingStrategy::MbbeFree,
                eq4_salt(d, 0),
            ));
            let id_dm2 = format!("fig8/eq4/dano={dano}/d={}/free-ref", d - 2);
            points.push(memory_point(
                &id_dm2,
                d - 2,
                p,
                dano,
                DecodingStrategy::MbbeFree,
                eq4_salt(d - 2, 1),
            ));
            points.push(memory_point(
                &fig8_eq4_id(dano, d, DecodingStrategy::Blind),
                d,
                p,
                dano,
                DecodingStrategy::Blind,
                eq4_salt(d, 2),
            ));
            points.push(memory_point(
                &fig8_eq4_id(dano, d, DecodingStrategy::AnomalyAware),
                d,
                p,
                dano,
                DecodingStrategy::AnomalyAware,
                eq4_salt(d, 3),
            ));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de::matching::MatcherKind;

    fn args() -> EngineArgs {
        EngineArgs {
            samples: 100,
            seed: 1,
            json: false,
            matcher: MatcherKind::Exact,
            threads: None,
            target_rse: None,
            checkpoint: None,
            resume: false,
            report: None,
        }
    }

    #[test]
    fn every_registered_name_builds_a_nonempty_grid() {
        for &name in NAMES {
            let points = build(name, &args()).expect("registered");
            assert!(!points.is_empty(), "{name} built no points");
            let mut ids: Vec<&str> = points.iter().map(|p| p.id()).collect();
            let total = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), total, "{name} has duplicate point ids");
        }
        assert!(build("not-a-sweep", &args()).is_none());
    }

    #[test]
    fn fig3_cells_match_their_points() {
        let cells = fig3_cells();
        let points = build("fig3", &args()).unwrap();
        assert_eq!(cells.len(), points.len());
        for (cell, point) in cells.iter().zip(&points) {
            assert_eq!(cell.id, point.id());
        }
        assert_eq!(
            cells.len(),
            FIG3_DISTANCES.len() * 2 * FIG3_ERROR_RATES.len()
        );
    }
}
