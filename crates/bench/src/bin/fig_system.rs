//! System-level sweep (Secs. V–VII): chip logical failure rate and qubit
//! overhead versus patch count and cosmic-ray strike rate.
//!
//! Each sweep point runs a [`ChipMemoryExperiment`]: `rows × cols` patches
//! idle for `d` cycles; with the configured per-shot probability a strike
//! of size `d_ano = 4` lands uniformly on the chip plane (possibly
//! straddling patch boundaries) and the chip fails when **any** patch
//! fails.  The overhead columns reuse the analytic models: the spare-qubit
//! ratio comes from `ChipLayout` provisioned for one concurrent
//! `d → d + 2·d_ano` expansion, the decoder buffer memory from
//! `q3de_scaling::MemoryOverheadModel` (Table III) scaled to the patch
//! count.
//!
//! Usage: `cargo run --release -p q3de_bench --bin fig_system
//! [--samples N] [--seed N] [--json] [--matcher exact|greedy|union-find]`

use q3de::lattice::ChipLayout;
use q3de::scaling::MemoryOverheadModel;
use q3de::sim::{
    ChipMemoryExperiment, ChipMemoryExperimentConfig, ChipStrikePolicy, DecodingStrategy,
    MemoryExperimentConfig,
};
use q3de_bench::{print_row, sci, ExperimentArgs};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = ExperimentArgs::parse(200);
    let distance = 5usize;
    let physical_error_rate = 4e-3;
    let anomaly_size = 4usize;
    let detection_window = 300usize;
    let grids = [(1usize, 1usize), (1, 2), (2, 2), (2, 3)];
    let strike_probabilities = [0.0f64, 0.1, 0.5];

    // Spare pool sized for one concurrent d → max(d + 2·d_ano, 2d) expansion.
    let expanded = (distance + 2 * anomaly_size).max(2 * distance);
    let spare_budget = ChipLayout::expansion_cost(distance, expanded);
    let buffer_model = MemoryOverheadModel::new(distance, detection_window);
    let per_patch_buffer_kbit = MemoryOverheadModel::to_kbit(buffer_model.total_bits());

    println!(
        "System sweep: d={distance}, p={physical_error_rate}, d_ano={anomaly_size}, \
         {} shots/point, {} matcher",
        args.samples,
        args.matcher.name()
    );
    println!(
        "spare pool: {spare_budget} qubits (one d={distance} -> d_exp={expanded} expansion); \
         decoder buffers: {per_patch_buffer_kbit:.0} kbit/patch (c_win={detection_window})"
    );
    print_row(
        "configuration",
        &[
            format!("{:<10}", "p_strike"),
            format!("{:<10}", "blind"),
            format!("{:<10}", "rollback"),
            format!("{:<10}", "worst patch"),
            format!("{:<10}", "qubit ovh"),
            format!("{:<10}", "buffer kbit"),
        ],
    );

    for &(rows, cols) in &grids {
        let patches = rows * cols;
        let layout = ChipLayout::new(rows, cols, distance, spare_budget).expect("valid layout");
        let qubit_overhead = layout.qubit_overhead_ratio();
        let buffer_kbit = patches as f64 * per_patch_buffer_kbit;
        for (pi, &probability) in strike_probabilities.iter().enumerate() {
            let patch = MemoryExperimentConfig::new(distance, physical_error_rate)
                .with_matcher(args.matcher);
            let strike = if probability > 0.0 {
                ChipStrikePolicy::Random {
                    probability,
                    size: anomaly_size,
                    rate: 0.5,
                }
            } else {
                ChipStrikePolicy::None
            };
            let config = ChipMemoryExperimentConfig::new(rows, cols, patch).with_strike(strike);
            let experiment = ChipMemoryExperiment::new(config).expect("valid chip");
            // stride-2 salts: blind and rollback estimates of one point use
            // disjoint stream blocks
            let salt = 2 * (rows * 10_000 + cols * 1_000 + pi) as u64;
            let blind = experiment.estimate_parallel::<ChaCha8Rng>(
                args.samples,
                DecodingStrategy::Blind,
                args.stream_seed(salt),
            );
            let aware = experiment.estimate_parallel::<ChaCha8Rng>(
                args.samples,
                DecodingStrategy::AnomalyAware,
                args.stream_seed(salt + 1),
            );
            print_row(
                &format!("{rows}x{cols} ({patches} patches)"),
                &[
                    format!("{probability:<10.2}"),
                    sci(blind.chip_failure_rate()),
                    sci(aware.chip_failure_rate()),
                    sci(blind.max_patch_rate()),
                    format!("{qubit_overhead:<10.3}"),
                    format!("{buffer_kbit:<10.0}"),
                ],
            );
            if args.json {
                println!(
                    "{{\"figure\":\"system\",\"rows\":{rows},\"cols\":{cols},\
                     \"patches\":{patches},\"strike_prob\":{probability},\
                     \"chip_rate_blind\":{},\"chip_rate_rollback\":{},\
                     \"max_patch_rate_blind\":{},\"struck_fraction\":{},\
                     \"qubit_overhead\":{qubit_overhead},\"buffer_kbit\":{buffer_kbit}}}",
                    blind.chip_failure_rate(),
                    aware.chip_failure_rate(),
                    blind.max_patch_rate(),
                    blind.struck_shots as f64 / blind.shots.max(1) as f64,
                );
            }
        }
    }
    println!("\nExpected shape: the chip failure rate grows with both patch count (more targets)");
    println!("and strike rate; rollback recovers most of the strike-induced loss; the relative");
    println!("qubit overhead of the shared spare pool shrinks as patches amortise it.");
}
