//! System-level sweep (Secs. V–VII): chip logical failure rate and qubit
//! overhead versus patch count and cosmic-ray strike rate.
//!
//! Each sweep point runs a [`ChipMemoryExperiment`]: `rows × cols` patches
//! idle for `d` cycles; with the configured per-shot probability a strike
//! of size `d_ano = 4` lands uniformly on the chip plane (possibly
//! straddling patch boundaries) and the chip fails when **any** patch
//! fails.  The points run on the shared sweep engine (sharded across
//! worker threads, `--target-rse` adaptive stopping, `--checkpoint`/
//! `--resume`); per-patch and struck-shot tallies ride along in atomic side
//! counters, which stay deterministic because the engine always executes a
//! deterministic stream set per point.  (Side counters only see streams run
//! in *this* process, so the "worst patch" / struck-fraction columns of a
//! `--resume`d sweep are estimated over the resumed shots only — unbiased,
//! but on fewer samples; the engine-tracked chip failure rates are always
//! complete.)  The overhead columns reuse the
//! analytic models: the spare-qubit ratio comes from `ChipLayout`
//! provisioned for one concurrent `d → d + 2·d_ano` expansion, the decoder
//! buffer memory from `q3de_scaling::MemoryOverheadModel` (Table III)
//! scaled to the patch count.
//!
//! Run with `--help` for the full engine flag set.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use q3de::lattice::ChipLayout;
use q3de::scaling::MemoryOverheadModel;
use q3de::sim::engine::SweepPoint;
use q3de::sim::{
    ChipMemoryExperiment, ChipMemoryExperimentConfig, ChipStrikePolicy, DecodingStrategy,
    MemoryExperimentConfig,
};
use q3de_bench::{sci, Cli};
use rand_chacha::ChaCha8Rng;

/// Deterministic side tallies of one chip sweep point (per-patch failures
/// and struck shots), accumulated from inside the shot kernel.  Rates
/// divide by the number of shots *this process* executed (tracked in
/// `executed`), so they are unbiased estimates over the covered streams
/// even when a `--resume`d sweep skips checkpointed shots.
#[derive(Clone)]
struct SideTally {
    per_patch: Arc<Vec<AtomicUsize>>,
    struck: Arc<AtomicUsize>,
    executed: Arc<AtomicUsize>,
}

impl SideTally {
    fn new(patches: usize) -> Self {
        Self {
            per_patch: Arc::new((0..patches).map(|_| AtomicUsize::new(0)).collect()),
            struck: Arc::new(AtomicUsize::new(0)),
            executed: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn max_patch_rate(&self) -> f64 {
        let executed = self.executed.load(Ordering::Relaxed);
        if executed == 0 {
            return 0.0;
        }
        self.per_patch
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64 / executed as f64)
            .fold(0.0, f64::max)
    }

    fn struck_fraction(&self) -> f64 {
        self.struck.load(Ordering::Relaxed) as f64
            / self.executed.load(Ordering::Relaxed).max(1) as f64
    }
}

fn main() {
    let (args, _) = Cli::new(
        "fig_system",
        "chip logical failure rate and qubit overhead vs patch count and strike rate",
        200,
    )
    .parse();
    let distance = 5usize;
    let physical_error_rate = 4e-3;
    let anomaly_size = 4usize;
    let detection_window = 300usize;
    let grids = [(1usize, 1usize), (1, 2), (2, 2), (2, 3)];
    let strike_probabilities = [0.0f64, 0.1, 0.5];

    // Spare pool sized for one concurrent d → max(d + 2·d_ano, 2d) expansion.
    let expanded = (distance + 2 * anomaly_size).max(2 * distance);
    let spare_budget = ChipLayout::expansion_cost(distance, expanded);
    let buffer_model = MemoryOverheadModel::new(distance, detection_window);
    let per_patch_buffer_kbit = MemoryOverheadModel::to_kbit(buffer_model.total_bits());

    // One sweep point per (grid, strike probability, strategy) cell; the
    // stream seeds match the pre-engine layout.
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &(rows, cols) in &grids {
        for (pi, &probability) in strike_probabilities.iter().enumerate() {
            let patch = MemoryExperimentConfig::new(distance, physical_error_rate)
                .with_matcher(args.matcher);
            let strike = if probability > 0.0 {
                ChipStrikePolicy::Random {
                    probability,
                    size: anomaly_size,
                    rate: 0.5,
                }
            } else {
                ChipStrikePolicy::None
            };
            let config = ChipMemoryExperimentConfig::new(rows, cols, patch).with_strike(strike);
            // stride-2 salts: blind and rollback estimates of one point use
            // disjoint stream blocks
            let salt = 2 * (rows * 10_000 + cols * 1_000 + pi) as u64;
            let mut ids = Vec::new();
            let mut tallies = Vec::new();
            for (k, strategy) in [DecodingStrategy::Blind, DecodingStrategy::AnomalyAware]
                .into_iter()
                .enumerate()
            {
                let experiment = ChipMemoryExperiment::new(config).expect("valid chip");
                let tally = SideTally::new(experiment.num_patches());
                let kernel_tally = tally.clone();
                let base_seed = args.stream_seed(salt + k as u64);
                let id = format!(
                    "system/{rows}x{cols}/p_strike={probability}/{}",
                    if k == 0 { "blind" } else { "rollback" }
                );
                points.push(SweepPoint::new(&id, move |stream| {
                    let (failures, struck) =
                        experiment.run_chip_shot::<ChaCha8Rng>(strategy, base_seed, stream);
                    kernel_tally.executed.fetch_add(1, Ordering::Relaxed);
                    for (patch, &failed) in failures.iter().enumerate() {
                        if failed {
                            kernel_tally.per_patch[patch].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if struck {
                        kernel_tally.struck.fetch_add(1, Ordering::Relaxed);
                    }
                    failures.iter().any(|&f| f)
                }));
                ids.push(id);
                tallies.push(tally);
            }
            cells.push((rows, cols, probability, ids, tallies));
        }
    }

    args.human(format!(
        "System sweep: d={distance}, p={physical_error_rate}, d_ano={anomaly_size}, \
         {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    args.human(format!(
        "spare pool: {spare_budget} qubits (one d={distance} -> d_exp={expanded} expansion); \
         decoder buffers: {per_patch_buffer_kbit:.0} kbit/patch (c_win={detection_window})"
    ));
    let report = args.run_sweep(points);

    args.human_row(
        "configuration",
        &[
            format!("{:<10}", "p_strike"),
            format!("{:<10}", "blind"),
            format!("{:<10}", "rollback"),
            format!("{:<10}", "worst patch"),
            format!("{:<10}", "qubit ovh"),
            format!("{:<10}", "buffer kbit"),
        ],
    );
    for (rows, cols, probability, ids, tallies) in &cells {
        let patches = rows * cols;
        let layout = ChipLayout::new(*rows, *cols, distance, spare_budget).expect("valid layout");
        let qubit_overhead = layout.qubit_overhead_ratio();
        let buffer_kbit = patches as f64 * per_patch_buffer_kbit;
        let blind = report.point(&ids[0]).expect("point ran");
        let aware = report.point(&ids[1]).expect("point ran");
        args.human_row(
            &format!("{rows}x{cols} ({patches} patches)"),
            &[
                format!("{probability:<10.2}"),
                sci(blind.failure_rate()),
                sci(aware.failure_rate()),
                sci(tallies[0].max_patch_rate()),
                format!("{qubit_overhead:<10.3}"),
                format!("{buffer_kbit:<10.0}"),
            ],
        );
        if args.json {
            println!(
                "{{\"figure\":\"system\",\"rows\":{rows},\"cols\":{cols},\
                 \"patches\":{patches},\"strike_prob\":{probability},\
                 \"chip_rate_blind\":{},\"chip_rate_rollback\":{},\
                 \"max_patch_rate_blind\":{},\"struck_fraction\":{},\
                 \"shots_blind\":{},\"qubit_overhead\":{qubit_overhead},\
                 \"buffer_kbit\":{buffer_kbit}}}",
                blind.failure_rate(),
                aware.failure_rate(),
                tallies[0].max_patch_rate(),
                tallies[0].struck_fraction(),
                blind.shots,
            );
        }
    }
    args.human(
        "\nExpected shape: the chip failure rate grows with both patch count (more targets)",
    );
    args.human("and strike rate; rollback recovers most of the strike-induced loss; the relative");
    args.human("qubit overhead of the shared spare pool shrinks as patches amortise it.");
}
