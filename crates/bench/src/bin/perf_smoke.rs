//! CI performance smoke: a small pinned-seed sweep over representative
//! kernels of every layer (single-patch memory, burst decoding with and
//! without rollback, chip-level strikes), timed by the sweep engine and
//! written out as `bench_report.json`.
//!
//! The report is the artifact the CI `perf` job uploads on every run; with
//! `--baseline PATH` the binary additionally compares each point's
//! shots/sec against the checked-in `BENCH_baseline.json` and exits
//! non-zero when any point regresses by more than `--max-regression`
//! (default 2.0×) — the regression gate of the BENCH trajectory.
//!
//! Run with `--help` for the flag set (`--baseline` and `--max-regression`
//! arm the regression gate).

use q3de::decoder::{ContextPool, DecoderConfig, MatcherKind, SyndromeHistory};
use q3de::lattice::ErrorKind;
use q3de::service::{DecodeServer, ServiceConfig, SERVICE_SCHEMA_VERSION};
use q3de::sim::engine::json::{check_schema_version, JsonValue};
use q3de::sim::engine::SweepPoint;
use q3de::sim::{
    AnomalyInjection, ChipMemoryExperimentConfig, ChipStrikePolicy, DecodingStrategy,
    MemoryExperiment, MemoryExperimentConfig, WindowSource,
};
use q3de_bench::{format_row, Cli};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The pure-decode hot-path kernel: a d = 11 decoder with the given matching
/// backend replaying pre-sampled burst windows through the two-pass rollback
/// flow (blind uniform pass + anomaly-re-weighted re-execution).  Sampling
/// happens once up front and does not depend on the matcher, so every
/// backend's point decodes the *same* windows and the measured shots/sec is
/// pure decode throughput — which also makes same-process backend ratios
/// (the blossom/exact gate below) machine-speed independent.
fn decode_window_point(base_seed: u64, matcher: MatcherKind, id: &'static str) -> SweepPoint {
    const WINDOWS: u64 = 16;
    let config = MemoryExperimentConfig::new(11, 5e-3)
        .with_matcher(matcher)
        .with_anomaly(AnomalyInjection::centered(4, 0.5));
    let experiment = MemoryExperiment::new(config).expect("valid config");
    let graph = experiment.code().matching_graph(ErrorKind::X);
    let region = *experiment.region().expect("anomaly configured");
    let windows: Vec<(SyndromeHistory, bool)> = (0..WINDOWS)
        .map(|w| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(base_seed ^ (0xDEC0DE ^ w.wrapping_mul(0x9E37)));
            experiment.sample_history(DecodingStrategy::AnomalyAware, &mut rng)
        })
        .collect();
    let pool = ContextPool::new(DecoderConfig::default().with_matcher(matcher));
    SweepPoint::new(id, move |stream: u64| {
        let (history, parity) = &windows[(stream % WINDOWS) as usize];
        pool.with(|context| {
            context
                .decode_with_rollback(&graph, 5e-3, history, Some(&[region]), 0)
                .final_outcome()
                .is_logical_failure(*parity)
        })
    })
}

/// A functional smoke of the decode service: a two-tenant shard (one
/// quiet, one under constant strikes) decodes a short window stream; the
/// resulting [`q3de::service::ServiceReport`] must serialize to JSON the
/// engine parser accepts, with finite tail latencies and every window
/// accounted for.  Exits non-zero on any violation — this is the
/// perf-smoke hook the CI service job leans on.
fn service_smoke(base_seed: u64, matcher: MatcherKind) {
    const WINDOWS: u64 = 32;
    let quiet = WindowSource::new(MemoryExperimentConfig::new(3, 5e-3), 0.0, base_seed)
        .expect("valid config");
    let struck_config =
        MemoryExperimentConfig::new(3, 5e-3).with_anomaly(AnomalyInjection::centered(1, 0.5));
    let struck = WindowSource::new(struck_config, 1.0, base_seed ^ 1).expect("valid config");
    let server = DecodeServer::new(
        ServiceConfig::new(2).with_decoder(DecoderConfig::default().with_matcher(matcher)),
    );
    let tenants = [
        server.register(quiet.graph().clone(), 5e-3, WINDOWS as usize),
        server.register(struck.graph().clone(), 5e-3, WINDOWS as usize),
    ];
    for stream in 0..WINDOWS {
        server
            .submit(tenants[0], quiet.window::<ChaCha8Rng>(stream))
            .expect("smoke queue sized for the full stream");
        server
            .submit(tenants[1], struck.window::<ChaCha8Rng>(stream))
            .expect("smoke queue sized for the full stream");
    }
    let report = server.finish();
    let doc = match JsonValue::parse(&report.to_json()) {
        Ok(doc) => doc,
        Err(error) => {
            eprintln!("service smoke FAILED: report is not valid JSON: {error}");
            std::process::exit(2);
        }
    };
    if let Err(error) = check_schema_version(&doc, SERVICE_SCHEMA_VERSION, "service report") {
        eprintln!("service smoke FAILED: {error}");
        std::process::exit(2);
    }
    let parsed = doc
        .get("service")
        .and_then(|s| s.get("tenants"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    let healthy = parsed.len() == 2
        && parsed.iter().all(|tenant| {
            tenant
                .get("p999_ns")
                .and_then(JsonValue::as_f64)
                .is_some_and(f64::is_finite)
                && tenant.get("completed").and_then(JsonValue::as_usize) == Some(WINDOWS as usize)
        });
    if !healthy {
        eprintln!("service smoke FAILED: {}", report.to_json());
        std::process::exit(2);
    }
    for tenant in &report.tenants {
        eprintln!(
            "{}",
            format_row(
                &format!("service/tenant{}", tenant.tenant),
                &[
                    format!("{:>8} windows", tenant.completed),
                    format!("{:>10.1} us p99", tenant.p99_ns as f64 / 1000.0),
                    format!("{:>8} rollbacks", tenant.rolled_back),
                    format!("{:>8} builds", tenant.graph_builds),
                ],
            )
        );
    }
}

/// The `shots_per_sec` entries of a report document, in document order.
fn throughputs(doc: &JsonValue) -> Vec<(String, f64)> {
    doc.get("points")
        .and_then(JsonValue::as_array)
        .map(|points| {
            points
                .iter()
                .filter_map(|p| {
                    let id = p.get("id")?.as_str()?.to_string();
                    let sps = p.get("shots_per_sec")?.as_f64()?;
                    Some((id, sps))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    let (args, extras) = Cli::new(
        "perf_smoke",
        "pinned-seed perf sweep over every hot path, with a CI regression gate",
        200,
    )
    .flag(
        "--baseline",
        "PATH",
        "compare shots/sec against this BENCH_baseline.json and gate on regressions",
    )
    .flag(
        "--max-regression",
        "X",
        "fail when any point drops below baseline/X (default 2.0)",
    )
    .parse();
    let baseline_path = extras.get("--baseline").map(String::from);
    // A typo must not silently loosen the CI gate.
    let max_regression = extras
        .require("--max-regression", "a number >= 1.0", |x: &f64| *x >= 1.0)
        .unwrap_or(2.0);
    let report_path = args
        .report
        .clone()
        .unwrap_or_else(|| "bench_report.json".into());
    let mut args = args;
    args.report = Some(report_path.clone());

    // Representative kernels, one per hot path.  Ids are the contract with
    // BENCH_baseline.json — renaming one invalidates its baseline entry.
    //
    // The two d3 memory kernels (scalar and packed) run in a *separate*
    // sweep at `samples × FAST_MULTIPLIER` shots: they are orders of
    // magnitude faster than the burst/chip/decode points, and the packed
    // kernel only reaches its steady state once its verdict memo is
    // populated — hundreds of 64-lane groups in.  Measuring both at high
    // shot counts makes the packed/scalar ratio a steady-state number
    // instead of a cold-start artifact, at negligible wall-clock cost.
    const FAST_MULTIPLIER: usize = 3200;
    let mem = |id: &str, config: MemoryExperimentConfig, strategy, salt: u64| {
        SweepPoint::from_memory::<ChaCha8Rng>(id, config, strategy, args.stream_seed(salt))
            .expect("valid config")
    };
    let burst = MemoryExperimentConfig::new(5, 8e-3)
        .with_matcher(args.matcher)
        .with_anomaly(AnomalyInjection::centered(2, 0.5));
    let chip = ChipMemoryExperimentConfig::new(
        2,
        2,
        MemoryExperimentConfig::new(3, 8e-3).with_matcher(args.matcher),
    )
    .with_strike(ChipStrikePolicy::Random {
        probability: 0.5,
        size: 2,
        rate: 0.5,
    });
    let fast_points = vec![
        mem(
            "perf/mem/d3/uniform",
            MemoryExperimentConfig::new(3, 2e-2).with_matcher(args.matcher),
            DecodingStrategy::MbbeFree,
            0,
        ),
        // the same workload through the bit-packed 64-shot batch kernel —
        // the packed/scalar throughput ratio is the headline number of the
        // batch spine and the CI gate keeps it from silently regressing
        SweepPoint::from_memory_packed::<ChaCha8Rng>(
            "perf/mem_packed/d3/uniform",
            MemoryExperimentConfig::new(3, 2e-2).with_matcher(args.matcher),
            DecodingStrategy::MbbeFree,
            args.stream_seed(0),
        )
        .expect("valid config"),
    ];
    let slow_points = vec![
        mem("perf/mem/d5/burst/blind", burst, DecodingStrategy::Blind, 1),
        mem(
            "perf/mem/d5/burst/rollback",
            burst,
            DecodingStrategy::AnomalyAware,
            2,
        ),
        SweepPoint::from_chip::<ChaCha8Rng>(
            "perf/chip/2x2/d3/strike",
            chip,
            DecodingStrategy::Blind,
            args.stream_seed(3),
        )
        .expect("valid chip"),
        decode_window_point(
            args.stream_seed(4),
            MatcherKind::UnionFind,
            "perf/decode_window/d11/uf/rollback",
        ),
        // the blossom/exact pair shares the uf point's windows (same seed):
        // their throughput ratio is the sparse-blossom acceptance gate
        decode_window_point(
            args.stream_seed(4),
            MatcherKind::Blossom,
            "perf/decode_window/d11/blossom/rollback",
        ),
        decode_window_point(
            args.stream_seed(4),
            MatcherKind::Exact,
            "perf/decode_window/d11/exact/rollback",
        ),
        // same windows again for the alternating-tree backend: the tree/exact
        // ratio is the 10x-regime acceptance gate for the sparse-native core
        decode_window_point(
            args.stream_seed(4),
            MatcherKind::Tree,
            "perf/decode_window/d11/tree/rollback",
        ),
    ];

    let fast_samples = args.samples.saturating_mul(FAST_MULTIPLIER);
    eprintln!(
        "perf smoke: {} shots/point ({} for the d3 memory points), seed {}, \
         {} matcher -> {report_path}",
        args.samples,
        fast_samples,
        args.seed,
        args.matcher.name()
    );
    // Neither sub-sweep writes the report artifact — the merged document
    // below is the single source of truth the gate and CI consume.
    let mut fast_args = args.clone();
    fast_args.samples = fast_samples;
    fast_args.report = None;
    fast_args.checkpoint = None;
    let mut slow_args = args.clone();
    slow_args.report = None;
    let mut report = fast_args.run_sweep(fast_points);
    let slow_report = slow_args.run_sweep(slow_points);
    report.points.extend(slow_report.points);
    report.wall_clock_secs += slow_report.wall_clock_secs;
    report.meta = vec![
        ("seed".into(), args.seed.to_string()),
        ("samples".into(), args.samples.to_string()),
        ("fast_samples".into(), fast_samples.to_string()),
        ("matcher".into(), args.matcher.name().to_string()),
    ];
    if let Err(error) = report.write_json(std::path::Path::new(&report_path)) {
        eprintln!("cannot write report: {error}");
        std::process::exit(2);
    }
    for point in &report.points {
        eprintln!(
            "{}",
            format_row(
                &point.id,
                &[
                    format!("{:>8} shots", point.shots),
                    format!("{:>10.1} shots/sec", point.shots_per_sec()),
                    format!("{:>8.3} busy secs", point.busy_secs),
                ],
            )
        );
    }
    eprintln!(
        "total: {} shots in {:.3} s wall clock on {} threads",
        report.total_shots(),
        report.wall_clock_secs,
        report.threads
    );

    // Functional smoke of the decode service (not baseline-gated: it
    // checks health, not throughput).
    service_smoke(args.stream_seed(5), args.matcher);

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read baseline {baseline_path}: {error}");
            std::process::exit(2);
        }
    };
    let baseline = match JsonValue::parse(&text) {
        Ok(doc) => doc,
        Err(error) => {
            eprintln!("cannot parse baseline {baseline_path}: {error}");
            std::process::exit(2);
        }
    };
    // The baseline is its own versioned artifact; refusing unknown majors
    // keeps the gate from silently comparing against a reshaped file.
    const BASELINE_SCHEMA_VERSION: u64 = 1;
    if let Err(error) = check_schema_version(&baseline, BASELINE_SCHEMA_VERSION, "perf baseline") {
        eprintln!("cannot use baseline {baseline_path}: {error}");
        std::process::exit(2);
    }

    let mut failed = false;
    eprintln!("\nregression gate (fail below baseline/{max_regression}):");
    for (id, reference) in throughputs(&baseline) {
        let Some(point) = report.point(&id) else {
            eprintln!("  {id}: MISSING from this run (baseline stale?)");
            failed = true;
            continue;
        };
        let current = point.shots_per_sec();
        let floor = reference / max_regression;
        let verdict = if current < floor { "FAIL" } else { "ok" };
        eprintln!(
            "  {id}: {current:.1} vs baseline {reference:.1} shots/sec \
             (floor {floor:.1}) {verdict}"
        );
        if current < floor {
            failed = true;
        }
    }
    // The packed/scalar speedup gates as a *ratio*: both points run in the
    // same process on the same host, so the ratio is robust to machine
    // speed in a way the absolute baselines are not.
    const PACKED_SPEEDUP_FLOOR: f64 = 5.0;
    if let (Some(scalar), Some(packed)) = (
        report.point("perf/mem/d3/uniform"),
        report.point("perf/mem_packed/d3/uniform"),
    ) {
        let ratio = packed.shots_per_sec() / scalar.shots_per_sec();
        let verdict = if ratio < PACKED_SPEEDUP_FLOOR {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "  packed/scalar d3 speedup: {ratio:.2}x (floor {PACKED_SPEEDUP_FLOOR:.1}x) {verdict}"
        );
    }
    // Same-process ratio gate for the sparse blossom backend vs the dense
    // exact oracle (all-pairs Dijkstra + per-cluster DP) on the d = 11 burst
    // rollback kernel.  Both points decode identical pre-sampled windows in
    // this very process.  Measured ~4.7x (truncated balls + 0-1 BFS rings +
    // warm-started duals); the floor leaves margin for machine variance.
    // The ~10x regime is covered by the alternating-tree backend below,
    // which grows regions on the sparse graph with no dense solves at all.
    const BLOSSOM_SPEEDUP_FLOOR: f64 = 3.5;
    if let (Some(exact), Some(blossom)) = (
        report.point("perf/decode_window/d11/exact/rollback"),
        report.point("perf/decode_window/d11/blossom/rollback"),
    ) {
        let ratio = blossom.shots_per_sec() / exact.shots_per_sec();
        let verdict = if ratio < BLOSSOM_SPEEDUP_FLOOR {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "  blossom/exact d11 speedup: {ratio:.2}x (floor {BLOSSOM_SPEEDUP_FLOOR:.1}x) {verdict}"
        );
    }
    // Same-process ratio gate for the simultaneous alternating-tree backend
    // vs the dense exact oracle on the same kernel.  The tree backend grows
    // all regions directly on the sparse graph with no per-cluster dense
    // solves; measured ~12x on a warm machine, floor at 7x for variance.
    const TREE_SPEEDUP_FLOOR: f64 = 7.0;
    if let (Some(exact), Some(tree)) = (
        report.point("perf/decode_window/d11/exact/rollback"),
        report.point("perf/decode_window/d11/tree/rollback"),
    ) {
        let ratio = tree.shots_per_sec() / exact.shots_per_sec();
        let verdict = if ratio < TREE_SPEEDUP_FLOOR {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "  tree/exact d11 speedup: {ratio:.2}x (floor {TREE_SPEEDUP_FLOOR:.1}x) {verdict}"
        );
    }
    if failed {
        eprintln!(
            "perf smoke FAILED: throughput regressed >{max_regression}x against {baseline_path}"
        );
        std::process::exit(1);
    }
    eprintln!("perf smoke passed");
}
