//! `q3de-sweepd` — distributed sweep worker.
//!
//! Runs one (file transport) or many (TCP transport) shards of a sweep
//! planned by `q3de-sweepctl plan`.  The worker rebuilds the sweep's
//! kernels deterministically from the job's generator, cross-checks them
//! against the plan, runs its shard's stream slices and emits one tally
//! delta per scheduling block.
//!
//! File transport: `--job job.json --shard K` writes the deltas to a file
//! that doubles as the shard checkpoint (`--resume` picks it back up after
//! a kill, losing at most the in-flight block).  The merged result is
//! bit-identical to a single-process run; without a live coordinator,
//! adaptive sweeps cannot stop early (the merge discards overshoot).
//!
//! TCP transport: `--connect HOST:PORT` claims shards from a
//! `q3de-sweepctl serve` coordinator until none remain.  The coordinator
//! checkpoints committed deltas itself and gates blocks live, so adaptive
//! sweeps stop early exactly like a single-process run.

use std::path::Path;
use std::process::exit;

use q3de::sim::engine::ShardWorker;
use q3de_bench::fabric::{FileSink, RemoteSink, SweepJob};

const HELP: &str = "\
q3de-sweepd — distributed sweep worker (runs shards planned by q3de-sweepctl)

Usage: q3de-sweepd --job PATH --shard K [--deltas PATH] [--resume]
       q3de-sweepd --connect HOST:PORT

Options:
  --job PATH         job file written by 'q3de-sweepctl plan'
  --shard K          shard index to run (0-based; file transport only)
  --deltas PATH      delta/checkpoint file (default deltas-shardK.json)
  --resume           resume from the delta file when it exists
  --connect ADDR     claim shards from a 'q3de-sweepctl serve' coordinator
  -h, --help         print this help text
";

struct Args {
    job: Option<String>,
    shard: Option<usize>,
    deltas: Option<String>,
    resume: bool,
    connect: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        exit(0);
    }
    let fail = |message: String| -> ! {
        eprintln!("q3de-sweepd: {message}");
        eprintln!("run 'q3de-sweepd --help' for the flag list");
        exit(2);
    };
    let mut args = Args {
        job: None,
        shard: None,
        deltas: None,
        resume: false,
        connect: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i)
                .cloned()
                .unwrap_or_else(|| fail(format!("{flag} requires a value")))
        };
        match flag {
            "--job" => args.job = Some(value()),
            "--shard" => {
                let raw = value();
                args.shard = Some(
                    raw.parse()
                        .unwrap_or_else(|_| fail(format!("invalid --shard '{raw}'"))),
                );
            }
            "--deltas" => args.deltas = Some(value()),
            "--resume" => args.resume = true,
            "--connect" => args.connect = Some(value()),
            other => fail(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    args
}

/// File transport: run one shard against a local delta file.
fn run_file(job_path: &str, shard: usize, deltas: Option<String>, resume: bool) {
    let job = SweepJob::load(Path::new(job_path)).unwrap_or_else(|error| {
        eprintln!("q3de-sweepd: cannot load job: {error}");
        exit(2);
    });
    if shard >= job.plan.num_shards {
        eprintln!(
            "q3de-sweepd: shard {shard} out of range (the plan has {} shards)",
            job.plan.num_shards
        );
        exit(2);
    }
    let points = job.points().unwrap_or_else(|message| {
        eprintln!("q3de-sweepd: cannot rebuild the sweep: {message}");
        exit(2);
    });
    let deltas = deltas.unwrap_or_else(|| format!("deltas-shard{shard}.json"));
    let mut sink = FileSink::new(&deltas, resume).unwrap_or_else(|error| {
        eprintln!("q3de-sweepd: cannot open delta file: {error}");
        exit(2);
    });
    let completed = sink.deltas().to_vec();
    if !completed.is_empty() {
        eprintln!(
            "q3de-sweepd: resuming shard {shard} with {} committed blocks",
            completed.len()
        );
    }
    let result = ShardWorker::new(&job.plan, shard).run(&points, &completed, &mut sink, |_| {});
    if let Err(error) = result {
        eprintln!("q3de-sweepd: shard {shard} failed: {error}");
        exit(2);
    }
    eprintln!(
        "q3de-sweepd: shard {shard} done, {} blocks in {deltas}",
        sink.deltas().len()
    );
}

/// TCP transport: claim and run shards until the coordinator drains.
fn run_tcp(addr: &str) {
    let mut ran = 0usize;
    loop {
        // One connection per shard: the coordinator ties a claim to its
        // connection so a dying worker releases the shard automatically.
        let mut sink = match RemoteSink::connect(addr) {
            Ok(sink) => sink,
            // A coordinator that has already merged its last block exits;
            // reconnecting for another claim then means "drained", not an
            // error — but an unreachable coordinator before any work is.
            Err(error) if ran > 0 => {
                eprintln!("q3de-sweepd: coordinator gone ({error}), assuming drained");
                break;
            }
            Err(error) => {
                eprintln!("q3de-sweepd: cannot connect: {error}");
                exit(2);
            }
        };
        let claim = sink.claim().unwrap_or_else(|error| {
            eprintln!("q3de-sweepd: claim failed: {error}");
            exit(2);
        });
        let Some((shard, job, completed)) = claim else {
            break;
        };
        let points = job.points().unwrap_or_else(|message| {
            eprintln!("q3de-sweepd: cannot rebuild the sweep: {message}");
            exit(2);
        });
        if !completed.is_empty() {
            eprintln!(
                "q3de-sweepd: taking over shard {shard} with {} committed blocks",
                completed.len()
            );
        }
        let result = ShardWorker::new(&job.plan, shard).run(&points, &completed, &mut sink, |_| {});
        if let Err(error) = result {
            eprintln!("q3de-sweepd: shard {shard} failed: {error}");
            exit(2);
        }
        if let Err(error) = sink.finish() {
            eprintln!("q3de-sweepd: cannot report shard {shard} done: {error}");
            exit(2);
        }
        eprintln!("q3de-sweepd: shard {shard} done");
        ran += 1;
    }
    eprintln!("q3de-sweepd: coordinator drained after {ran} shards");
}

fn main() {
    let args = parse_args();
    match (&args.connect, &args.job, args.shard) {
        (Some(addr), None, None) => run_tcp(addr),
        (None, Some(job), Some(shard)) => run_file(job, shard, args.deltas, args.resume),
        _ => {
            eprintln!("q3de-sweepd: need either --connect ADDR or both --job PATH and --shard K");
            eprintln!("run 'q3de-sweepd --help' for the flag list");
            exit(2);
        }
    }
}
