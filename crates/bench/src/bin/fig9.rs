//! Figure 9: required qubit density vs chip area to reach p_L < 1e-10, for
//! Q3DE and the baseline, under several anomaly-size / frequency / duration
//! scalings.
//!
//! The figure is a closed-form model sweep — no Monte-Carlo shots — so the
//! engine flags are accepted (run with `--help`) but only for uniformity.

use q3de::scaling::{qubit_density::log_grid, ScalabilityConfig, ScalabilityModel};
use q3de_bench::{print_row, Cli};

fn main() {
    let _args = Cli::new(
        "fig9",
        "required qubit density vs chip area for p_L < 1e-10 (paper Fig. 9)",
        0,
    )
    .parse();
    let areas = log_grid(1.0, 100.0, 9);
    let densities = log_grid(1.0, 5000.0, 300);

    let sweep = |label: &str, config: ScalabilityConfig| {
        let model = ScalabilityModel::new(config);
        for use_q3de in [true, false] {
            let name = if use_q3de { "Q3DE" } else { "baseline" };
            let row: Vec<String> = model
                .sweep(&areas, &densities, use_q3de)
                .into_iter()
                .map(|(_, point)| match point {
                    Some(p) => format!("{:8.1}", p.qubit_density_ratio),
                    None => "   inf  ".to_string(),
                })
                .collect();
            print_row(&format!("{label} {name}"), &row);
        }
    };

    println!("Figure 9: required qubit-density ratio per chip-area ratio (target p_L < 1e-10)");
    print_row(
        "chip area ratio",
        &areas.iter().map(|a| format!("{a:8.1}")).collect::<Vec<_>>(),
    );

    // panel 1: anomaly-size variants
    for size in [4.0, 2.0, 1.0] {
        let config = ScalabilityConfig {
            base_anomaly_size: size,
            ..ScalabilityConfig::default()
        };
        sweep(&format!("size={size}"), config);
    }
    // panel 2: error-duration variants (affects only the baseline exposure)
    for factor in [1.0, 0.1, 0.01] {
        let config = ScalabilityConfig {
            duration_s: 25e-3 * factor,
            ..ScalabilityConfig::default()
        };
        sweep(&format!("duration x{factor}"), config);
    }
    // panel 3: frequency variants
    for factor in [1.0, 0.1, 0.01] {
        let config = ScalabilityConfig {
            base_frequency_hz: 0.1 * factor,
            ..ScalabilityConfig::default()
        };
        sweep(&format!("freq x{factor}"), config);
    }
    println!("\nExpected shape: Q3DE needs markedly lower density at small chip areas (up to ~10x");
    println!("fewer qubits) and the two families converge as MBBE parameters improve.");
}
