//! Table IV: FPGA resource and throughput estimates of the greedy decoder
//! unit (BASE vs Q3DE, 40- and 80-entry active node queues).
//!
//! The table is a closed-form model — no Monte-Carlo shots — so the engine
//! flags are accepted (run with `--help`) but only for uniformity.

use q3de::scaling::{DecoderHardwareModel, DecoderVariant};
use q3de_bench::Cli;

fn main() {
    let _args = Cli::new(
        "table4",
        "FPGA resource and throughput estimates of the greedy decoder unit (paper Table IV)",
        0,
    )
    .parse();
    let model = DecoderHardwareModel::new();
    println!(
        "Table IV: greedy-decoder resource model (calibrated against the paper's HLS results)"
    );
    println!(
        "{:<16}{:>10}{:>10}{:>14}",
        "configuration", "FF", "LUT", "match/us"
    );
    for row in model.table4() {
        let name = format!(
            "{} - {}",
            row.anq_entries,
            if row.variant == DecoderVariant::Q3de {
                "Q3DE"
            } else {
                "BASE"
            }
        );
        println!(
            "{name:<16}{:>10.0}{:>10.0}{:>14.2}",
            row.flip_flops, row.luts, row.matches_per_us
        );
    }
    println!("paper:           40-BASE 8991/14679/4.66, 40-Q3DE 13855/20279/4.25,");
    println!("                 80-BASE 13211/36668/1.81, 80-Q3DE 22751/54638/1.79");
    println!(
        "required ANQ entries: p=1e-4,d=15 -> {}, p=1e-3,d=31 -> {} (paper: 30 and 70)",
        DecoderHardwareModel::required_anq_entries(1e-4, 15, 1e-15),
        DecoderHardwareModel::required_anq_entries(1e-3, 31, 1e-15)
    );
}
