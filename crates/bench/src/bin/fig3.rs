//! Figure 3: logical error rate vs physical error rate, with and without an
//! MBBE (d_ano = 4, p_ano = 0.5), for several code distances.
//!
//! All points run on the shared sweep engine: shots are work-stolen across
//! the whole grid, `--target-rse` enables adaptive early stopping, and
//! `--checkpoint`/`--resume` make the sweep restartable.  In `--json` mode
//! the human table goes to stderr so stdout stays parseable.
//!
//! Usage: `cargo run --release -p q3de_bench --bin fig3 [--samples N]
//! [--seed N] [--matcher M] [--json] [--target-rse X]
//! [--checkpoint PATH] [--resume] [--report PATH]`

use q3de::sim::engine::SweepPoint;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperimentConfig};
use q3de_bench::{sci, ExperimentArgs};
use rand_chacha::ChaCha8Rng;

struct Cell {
    d: usize,
    mbbe: bool,
    p: f64,
    id: String,
}

fn main() {
    let args = ExperimentArgs::parse(400);
    let distances = [5usize, 9, 13];
    let error_rates = [4e-3, 8e-3, 1.6e-2, 2.4e-2, 3.2e-2, 4e-2];

    // One sweep point per (distance, curve, error-rate) cell.  The stream
    // seeds match the pre-engine layout, so fixed-seed statistics are
    // unchanged by the migration.
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &d in &distances {
        for (anomaly, strategy) in [
            (None, DecodingStrategy::MbbeFree),
            (
                Some(AnomalyInjection::centered(4, 0.5)),
                DecodingStrategy::Blind,
            ),
        ] {
            for (pi, &p) in error_rates.iter().enumerate() {
                let mut config = MemoryExperimentConfig::new(d, p).with_matcher(args.matcher);
                if let Some(a) = anomaly {
                    config = config.with_anomaly(a);
                }
                let id = format!("fig3/d={d}/mbbe={}/p={p:e}", anomaly.is_some());
                points.push(
                    SweepPoint::from_memory::<ChaCha8Rng>(
                        &id,
                        config,
                        strategy,
                        args.stream_seed((d * 100 + pi) as u64),
                    )
                    .expect("valid distance"),
                );
                cells.push(Cell {
                    d,
                    mbbe: anomaly.is_some(),
                    p,
                    id,
                });
            }
        }
    }

    args.human(format!(
        "Figure 3: logical error rate per shot (d-cycle memory), {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    let report = args.run_sweep(points);

    args.human_row(
        "configuration",
        &error_rates
            .iter()
            .map(|p| format!("p={p:<9.1e}"))
            .collect::<Vec<_>>(),
    );
    for &d in &distances {
        for (label, mbbe) in [("without MBBE", false), ("with MBBE", true)] {
            let row: Vec<String> = cells
                .iter()
                .filter(|c| c.d == d && c.mbbe == mbbe)
                .map(|c| sci(report.point(&c.id).expect("point ran").failure_rate()))
                .collect();
            args.human_row(&format!("d={d} {label}"), &row);
        }
    }

    if args.json {
        for cell in &cells {
            let point = report.point(&cell.id).expect("point ran");
            let (low, high) = point.wilson();
            println!(
                "{{\"figure\":3,\"d\":{},\"p\":{},\"mbbe\":{},\"rate\":{},\
                 \"shots\":{},\"failures\":{},\"wilson_low\":{low},\"wilson_high\":{high}}}",
                cell.d,
                cell.p,
                cell.mbbe,
                point.failure_rate(),
                point.shots,
                point.failures,
            );
        }
    }

    args.human("");
    args.human("Expected shape: MBBE curves sit ~1-2 decades above the MBBE-free curves at low p;");
    args.human("the crossing (threshold) point is nearly unchanged by a single MBBE.");
}
