//! Figure 3: logical error rate vs physical error rate, with and without an
//! MBBE (d_ano = 4, p_ano = 0.5), for several code distances.
//!
//! Usage: `cargo run --release -p q3de-bench --bin fig3 [--samples N]`

use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_bench::{print_row, sci, ExperimentArgs};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = ExperimentArgs::parse(400);
    let distances = [5usize, 9, 13];
    let error_rates = [4e-3, 8e-3, 1.6e-2, 2.4e-2, 3.2e-2, 4e-2];

    println!(
        "Figure 3: logical error rate per shot (d-cycle memory), {} shots/point, {} matcher",
        args.samples,
        args.matcher.name()
    );
    print_row(
        "configuration",
        &error_rates
            .iter()
            .map(|p| format!("p={p:<9.1e}"))
            .collect::<Vec<_>>(),
    );
    for &d in &distances {
        for (label, anomaly, strategy) in [
            ("without MBBE", None, DecodingStrategy::MbbeFree),
            (
                "with MBBE",
                Some(AnomalyInjection::centered(4, 0.5)),
                DecodingStrategy::Blind,
            ),
        ] {
            let mut row = Vec::new();
            for (pi, &p) in error_rates.iter().enumerate() {
                let mut config = MemoryExperimentConfig::new(d, p).with_matcher(args.matcher);
                if let Some(a) = anomaly {
                    config = config.with_anomaly(a);
                }
                let experiment = MemoryExperiment::new(config).expect("valid distance");
                let estimate = experiment.estimate_parallel::<ChaCha8Rng>(
                    args.samples,
                    strategy,
                    args.stream_seed((d * 100 + pi) as u64),
                );
                row.push(sci(estimate.logical_error_rate()));
                if args.json {
                    println!(
                        "{{\"figure\":3,\"d\":{d},\"p\":{p},\"mbbe\":{},\"rate\":{}}}",
                        anomaly.is_some(),
                        estimate.logical_error_rate()
                    );
                }
            }
            print_row(&format!("d={d} {label}"), &row);
        }
    }
    println!("\nExpected shape: MBBE curves sit ~1-2 decades above the MBBE-free curves at low p;");
    println!("the crossing (threshold) point is nearly unchanged by a single MBBE.");
}
