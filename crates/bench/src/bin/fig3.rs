//! Figure 3: logical error rate vs physical error rate, with and without an
//! MBBE (d_ano = 4, p_ano = 0.5), for several code distances.
//!
//! All points run on the shared sweep engine: the grid is sharded across
//! worker threads, `--target-rse` enables adaptive early stopping, and
//! `--checkpoint`/`--resume` make the sweep restartable.  In `--json` mode
//! the human table goes to stderr so stdout stays parseable.
//!
//! Run with `--help` for the full engine flag set.

use q3de_bench::sweeps::{self, FIG3_DISTANCES, FIG3_ERROR_RATES};
use q3de_bench::{sci, Cli};

fn main() {
    let (args, _) = Cli::new(
        "fig3",
        "logical vs physical error rate, with and without an MBBE (paper Fig. 3)",
        400,
    )
    .parse();

    // One sweep point per (distance, curve, error-rate) cell, built through
    // the shared sweep registry — the same grid a `q3de-sweepd` worker
    // rebuilds from a plan file, with stream seeds matching the pre-engine
    // layout so fixed-seed statistics are stable.
    let cells = sweeps::fig3_cells();
    let points = sweeps::build("fig3", &args).expect("fig3 is registered");

    args.human(format!(
        "Figure 3: logical error rate per shot (d-cycle memory), {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    let report = args.run_sweep(points);

    args.human_row(
        "configuration",
        &FIG3_ERROR_RATES
            .iter()
            .map(|p| format!("p={p:<9.1e}"))
            .collect::<Vec<_>>(),
    );
    for &d in &FIG3_DISTANCES {
        for (label, mbbe) in [("without MBBE", false), ("with MBBE", true)] {
            let row: Vec<String> = cells
                .iter()
                .filter(|c| c.d == d && c.mbbe == mbbe)
                .map(|c| sci(report.point(&c.id).expect("point ran").failure_rate()))
                .collect();
            args.human_row(&format!("d={d} {label}"), &row);
        }
    }

    if args.json {
        for cell in &cells {
            let point = report.point(&cell.id).expect("point ran");
            let (low, high) = point.wilson();
            println!(
                "{{\"figure\":3,\"d\":{},\"p\":{},\"mbbe\":{},\"rate\":{},\
                 \"shots\":{},\"failures\":{},\"wilson_low\":{low},\"wilson_high\":{high}}}",
                cell.d,
                cell.p,
                cell.mbbe,
                point.failure_rate(),
                point.shots,
                point.failures,
            );
        }
    }

    args.human("");
    args.human("Expected shape: MBBE curves sit ~1-2 decades above the MBBE-free curves at low p;");
    args.human("the crossing (threshold) point is nearly unchanged by a single MBBE.");
}
