//! `q3de-sweepctl` — distributed sweep controller.
//!
//! Plans, monitors and merges sweeps run by `q3de-sweepd` workers:
//!
//! * `plan` partitions a registered sweep (`fig3`, `fig8`) into a job file
//!   of N disjoint, resumable shards;
//! * `status` folds delta files into the coordinator and reports per-point
//!   progress and the blocks still missing;
//! * `merge` folds delta files into the final `bench_report.json` —
//!   bit-identical (modulo timing fields) to a single-process run at the
//!   same seed;
//! * `serve` runs the live TCP coordinator (workers use `--connect`),
//!   gating adaptive sweeps at block boundaries exactly like a
//!   single-process run;
//! * `resume` plans a follow-up job that continues from committed tallies;
//! * `diff` compares two report artifacts, ignoring timing fields — the
//!   fabric's acceptance check.

use std::net::TcpListener;
use std::path::Path;
use std::process::exit;

use q3de::sim::engine::json::JsonValue;
use q3de::sim::engine::{Coordinator, TallyDelta};
use q3de_bench::fabric::{self, diff_reports, Generator, SweepJob};
use q3de_bench::sweeps;
use q3de_bench::{Cli, ExtraValues};

const OVERVIEW: &str = "\
q3de-sweepctl — distributed sweep controller

Usage: q3de-sweepctl <plan|status|merge|serve|resume|diff> [OPTIONS]

Subcommands:
  plan     partition a registered sweep into a job of N shards
  status   fold delta files and report per-point progress
  merge    fold delta files into the final report artifact
  serve    run the live TCP coordinator for q3de-sweepd --connect
  resume   plan a follow-up job continuing from committed tallies
  diff     compare two report artifacts, ignoring timing fields

Run 'q3de-sweepctl <subcommand> --help' for each flag list.
";

fn fail(bin: &str, message: impl AsRef<str>) -> ! {
    eprintln!("{bin}: {}", message.as_ref());
    eprintln!("run '{bin} --help' for the flag list");
    exit(2);
}

/// Parses a subcommand's argument list through the shared CLI front end
/// (identical engine flag set and generated help everywhere).
fn parse(cli: &Cli, bin: &str, argv: &[String]) -> (q3de_bench::EngineArgs, ExtraValues) {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", cli.help());
        exit(0);
    }
    cli.parse_from(argv)
        .unwrap_or_else(|message| fail(bin, message))
}

fn required<'e>(extras: &'e ExtraValues, bin: &str, flag: &str) -> &'e str {
    extras
        .get(flag)
        .unwrap_or_else(|| fail(bin, format!("{flag} is required")))
}

fn load_job(bin: &str, path: &str) -> SweepJob {
    SweepJob::load(Path::new(path)).unwrap_or_else(|error| {
        eprintln!("{bin}: cannot load job: {error}");
        exit(2);
    })
}

/// Loads every `--deltas` file and folds it into a fresh coordinator.
fn fold(bin: &str, job: &SweepJob, delta_paths: &[&str]) -> (Coordinator, usize) {
    let mut coordinator = Coordinator::new(job.plan.clone());
    let mut total = 0usize;
    for path in delta_paths {
        let deltas: Vec<TallyDelta> =
            fabric::load_deltas(Path::new(path)).unwrap_or_else(|error| {
                eprintln!("{bin}: cannot load deltas: {error}");
                exit(2);
            });
        total += deltas.len();
        if let Err(error) = coordinator.submit_all(&deltas) {
            eprintln!("{bin}: {path} refused: {error}");
            exit(2);
        }
    }
    (coordinator, total)
}

fn cmd_plan(argv: &[String]) {
    let bin = "q3de-sweepctl plan";
    let cli = Cli::new(
        bin,
        "partition a registered sweep into a job of N disjoint shards",
        400,
    )
    .flag(
        "--sweep",
        "NAME",
        "registered sweep to plan: fig3|fig8 (required)",
    )
    .flag(
        "--shards",
        "N",
        "number of shards to partition into (required)",
    )
    .flag("--out", "PATH", "job file to write (required)");
    let (args, extras) = parse(&cli, bin, argv);
    let sweep = required(&extras, bin, "--sweep");
    if !sweeps::NAMES.contains(&sweep) {
        fail(
            bin,
            format!(
                "unknown sweep '{sweep}' (known: {})",
                sweeps::NAMES.join(", ")
            ),
        );
    }
    let shards: usize = extras
        .require("--shards", "an integer >= 1", |n: &usize| *n >= 1)
        .unwrap_or_else(|| fail(bin, "--shards is required"));
    let out = required(&extras, bin, "--out");

    let job = SweepJob::plan(Generator::from_args(sweep, &args), shards, None)
        .unwrap_or_else(|message| fail(bin, message));
    if let Err(error) = job.save(Path::new(out)) {
        eprintln!("{bin}: cannot write job: {error}");
        exit(2);
    }
    println!(
        "planned '{sweep}': {} points x {shards} shards -> {out}",
        job.plan.points.len()
    );
    println!("fingerprint: {}", job.plan.fingerprint());
}

fn cmd_status(argv: &[String]) {
    let bin = "q3de-sweepctl status";
    let cli = Cli::new(bin, "fold delta files and report sweep progress", 400)
        .flag(
            "--job",
            "PATH",
            "job file written by 'q3de-sweepctl plan' (required)",
        )
        .flag("--deltas", "PATH", "delta file to fold (repeatable)");
    let (_, extras) = parse(&cli, bin, argv);
    let job = load_job(bin, required(&extras, bin, "--job"));
    let (coordinator, total) = fold(bin, &job, &extras.all("--deltas"));

    println!(
        "sweep '{}': {} points, {} shards, {} deltas folded",
        job.generator.sweep,
        job.plan.points.len(),
        job.plan.num_shards,
        total
    );
    for (point, (shots, failures, finished, converged)) in
        coordinator.progress().into_iter().enumerate()
    {
        let state = match (finished, converged) {
            (true, true) => "converged",
            (true, false) => "finished",
            (false, _) => "running",
        };
        println!(
            "  {:<40} {shots:>8} shots {failures:>6} failures  {state}",
            job.plan.points[point].id
        );
    }
    let missing = coordinator.missing();
    if missing.is_empty() {
        println!("complete: ready to merge");
    } else {
        let preview: Vec<String> = missing
            .iter()
            .take(5)
            .map(|&(p, e, s)| format!("{}@{e}/shard{s}", job.plan.points[p].id))
            .collect();
        println!(
            "missing {} blocks (first: {})",
            missing.len(),
            preview.join(", ")
        );
    }
}

fn cmd_merge(argv: &[String]) {
    let bin = "q3de-sweepctl merge";
    let cli = Cli::new(
        bin,
        "fold delta files into the final sweep report artifact",
        400,
    )
    .flag(
        "--job",
        "PATH",
        "job file written by 'q3de-sweepctl plan' (required)",
    )
    .flag("--deltas", "PATH", "delta file to fold (repeatable)")
    .flag("--out", "PATH", "report file to write (required)")
    .flag(
        "--checkpoint",
        "PATH",
        "also write the merged engine checkpoint",
    );
    let (_, extras) = parse(&cli, bin, argv);
    let job = load_job(bin, required(&extras, bin, "--job"));
    let out = required(&extras, bin, "--out");
    let (coordinator, total) = fold(bin, &job, &extras.all("--deltas"));

    if let Some(path) = extras.get("--checkpoint") {
        if let Err(error) = coordinator.checkpoint().save(Path::new(path)) {
            eprintln!("{bin}: cannot write checkpoint: {error}");
            exit(2);
        }
    }
    // Wall-clock and thread count are per-process facts a merge does not
    // have; both are timing fields every consumer ignores.
    let mut report = match coordinator.report(0.0, job.plan.num_shards) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("{bin}: {error}");
            exit(1);
        }
    };
    job.stamp_meta(&mut report);
    if let Err(error) = report.write_json(Path::new(out)) {
        eprintln!("{bin}: cannot write report: {error}");
        exit(2);
    }
    println!(
        "merged {total} deltas: {} shots over {} points -> {out}",
        report.total_shots(),
        report.points.len()
    );
}

fn cmd_serve(argv: &[String]) {
    let bin = "q3de-sweepctl serve";
    let cli = Cli::new(
        bin,
        "run the live TCP coordinator for q3de-sweepd --connect workers",
        400,
    )
    .flag(
        "--job",
        "PATH",
        "job file written by 'q3de-sweepctl plan' (required)",
    )
    .flag(
        "--listen",
        "ADDR",
        "address to listen on, e.g. 127.0.0.1:7311 (required)",
    )
    .flag(
        "--out",
        "PATH",
        "report file to write when the sweep completes (required)",
    )
    .flag(
        "--checkpoint",
        "PATH",
        "persist committed tallies after every merge step",
    );
    let (_, extras) = parse(&cli, bin, argv);
    let job = load_job(bin, required(&extras, bin, "--job"));
    let listen = required(&extras, bin, "--listen");
    let out = required(&extras, bin, "--out");
    let checkpoint = extras.get("--checkpoint").map(Path::new);

    let listener = TcpListener::bind(listen).unwrap_or_else(|error| {
        eprintln!("{bin}: cannot listen on {listen}: {error}");
        exit(2);
    });
    let bound = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "{bin}: serving '{}' ({} points x {} shards) on {}",
        job.generator.sweep,
        job.plan.points.len(),
        job.plan.num_shards,
        bound.as_deref().unwrap_or(listen)
    );
    let report = match fabric::serve(&listener, &job, checkpoint) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("{bin}: {error}");
            exit(1);
        }
    };
    if let Err(error) = report.write_json(Path::new(out)) {
        eprintln!("{bin}: cannot write report: {error}");
        exit(2);
    }
    println!(
        "complete: {} shots over {} points -> {out}",
        report.total_shots(),
        report.points.len()
    );
}

fn cmd_resume(argv: &[String]) {
    let bin = "q3de-sweepctl resume";
    let cli = Cli::new(
        bin,
        "plan a follow-up job continuing from committed tallies",
        400,
    )
    .flag(
        "--job",
        "PATH",
        "job file of the interrupted sweep (required)",
    )
    .flag("--deltas", "PATH", "delta file to fold (repeatable)")
    .flag("--out", "PATH", "follow-up job file to write (required)")
    .flag(
        "--shards",
        "N",
        "shard count of the follow-up (default: as before)",
    );
    let (_, extras) = parse(&cli, bin, argv);
    let job = load_job(bin, required(&extras, bin, "--job"));
    let out = required(&extras, bin, "--out");
    let shards = extras
        .require("--shards", "an integer >= 1", |n: &usize| *n >= 1)
        .unwrap_or(job.plan.num_shards);
    let (coordinator, total) = fold(bin, &job, &extras.all("--deltas"));

    // The committed tallies become the follow-up plan's baselines; its
    // fingerprint differs, so stale deltas of the old plan are refused.
    let baselines: Vec<(usize, usize)> = coordinator
        .checkpoint()
        .points
        .iter()
        .map(|p| (p.shots, p.failures))
        .collect();
    let follow_up = SweepJob::plan(job.generator.clone(), shards, Some(&baselines))
        .unwrap_or_else(|message| fail(bin, message));
    if let Err(error) = follow_up.save(Path::new(out)) {
        eprintln!("{bin}: cannot write job: {error}");
        exit(2);
    }
    let committed: usize = baselines.iter().map(|(shots, _)| shots).sum();
    println!(
        "resumed '{}' from {total} deltas ({committed} committed shots) x {shards} shards -> {out}",
        job.generator.sweep
    );
    println!("fingerprint: {}", follow_up.plan.fingerprint());
}

fn cmd_diff(argv: &[String]) {
    let bin = "q3de-sweepctl diff";
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{bin} — compare two report artifacts, ignoring timing fields");
        println!("\nUsage: {bin} REPORT_A REPORT_B");
        println!("\nIgnored fields: {}", fabric::TIMING_FIELDS.join(", "));
        exit(0);
    }
    let [a, b] = argv else {
        fail(bin, "expected exactly two report paths");
    };
    let load = |path: &str| -> JsonValue {
        let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
            eprintln!("{bin}: cannot read {path}: {error}");
            exit(2);
        });
        JsonValue::parse(&text).unwrap_or_else(|message| {
            eprintln!("{bin}: cannot parse {path}: {message}");
            exit(2);
        })
    };
    let differences = diff_reports(&load(a), &load(b));
    if differences.is_empty() {
        println!("reports match (modulo timing fields)");
    } else {
        for difference in &differences {
            println!("{difference}");
        }
        eprintln!("{bin}: {} differences", differences.len());
        exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(subcommand) = argv.first() else {
        eprint!("{OVERVIEW}");
        exit(2);
    };
    let rest = &argv[1..];
    match subcommand.as_str() {
        "plan" => cmd_plan(rest),
        "status" => cmd_status(rest),
        "merge" => cmd_merge(rest),
        "serve" => cmd_serve(rest),
        "resume" => cmd_resume(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" => print!("{OVERVIEW}"),
        other => {
            eprintln!("q3de-sweepctl: unknown subcommand '{other}'");
            eprint!("{OVERVIEW}");
            exit(2);
        }
    }
}
