//! Decode-service capacity sweep: how many tenants can one decoder shard
//! carry before the tail-latency SLO breaks?
//!
//! Each cell of the sweep runs a fresh [`DecodeServer`] shard with a fixed
//! worker count and ramps the load along two axes: the number of tenants
//! multiplexed onto the shard, and the per-window cosmic-ray strike rate
//! (struck windows take the expensive two-pass rollback path).  Tenants
//! run in lock-step rounds — every tenant submits one window, then all
//! wait — so the measured latency is contention latency at a fixed
//! offered load, not queue-buildup latency.  A cell *breaks* the SLO when
//! its worst tenant's p99 exceeds `--slo-us`; for each strike rate the
//! first breaking tenant count is the shard's capacity knee.
//!
//! The per-cell service reports are also serialized through
//! [`ServiceReport::to_json`] and re-parsed with the engine's JSON parser
//! as a self-check (finite p999, completed counts) — the CI smoke job
//! relies on the binary exiting non-zero when that validation fails.
//!
//! Run with `--help` for the flag set (`--samples` is windows per tenant;
//! `--workers` and `--slo-us` shape the shard under test).

use q3de::decoder::DecoderConfig;
use q3de::service::{DecodeServer, ServiceConfig, ServiceReport, SERVICE_SCHEMA_VERSION};
use q3de::sim::engine::json::{check_schema_version, JsonValue};
use q3de::sim::{AnomalyInjection, MemoryExperimentConfig, WindowSource};
use q3de_bench::{format_row, Cli};
use rand_chacha::ChaCha8Rng;

/// One sweep cell: a fresh shard at (`tenants`, `strike_rate`), driven for
/// `windows` lock-step rounds.  Returns the final service report.
fn run_cell(
    workers: usize,
    decoder: DecoderConfig,
    tenants: usize,
    strike_rate: f64,
    windows: u64,
    base_seed: u64,
) -> ServiceReport {
    let distance = 3;
    let rate = 5e-3;
    let sources: Vec<WindowSource> = (0..tenants)
        .map(|tenant| {
            let mut config = MemoryExperimentConfig::new(distance, rate);
            if strike_rate > 0.0 {
                config = config.with_anomaly(AnomalyInjection::centered(1, 0.5));
            }
            WindowSource::new(config, strike_rate, base_seed.wrapping_add(tenant as u64))
                .expect("valid service config")
        })
        .collect();
    let server = DecodeServer::new(ServiceConfig::new(workers).with_decoder(decoder));
    let handles: Vec<_> = sources
        .iter()
        .map(|source| server.register(source.graph().clone(), rate, tenants.max(4)))
        .collect();
    for round in 0..windows {
        let tickets: Vec<_> = handles
            .iter()
            .zip(&sources)
            .map(|(&tenant, source)| {
                server
                    .submit(tenant, source.window::<ChaCha8Rng>(round))
                    .expect("lock-step load never outruns the queue")
            })
            .collect();
        for ticket in tickets {
            server.wait(ticket);
        }
    }
    server.finish()
}

/// Validates a cell report through the engine JSON parser; exits non-zero
/// on any inconsistency so CI catches schema rot.
fn validate(report: &ServiceReport, windows: u64) {
    let doc = match JsonValue::parse(&report.to_json()) {
        Ok(doc) => doc,
        Err(error) => {
            eprintln!("service report is not valid JSON: {error}");
            std::process::exit(1);
        }
    };
    if let Err(error) = check_schema_version(&doc, SERVICE_SCHEMA_VERSION, "service report") {
        eprintln!("service report failed validation: {error}");
        std::process::exit(1);
    }
    let tenants = doc
        .get("service")
        .and_then(|s| s.get("tenants"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    for tenant in tenants {
        let p999 = tenant.get("p999_ns").and_then(JsonValue::as_f64);
        let completed = tenant.get("completed").and_then(JsonValue::as_usize);
        if !p999.is_some_and(f64::is_finite) || completed != Some(windows as usize) {
            eprintln!(
                "service report failed validation: p999={p999:?} completed={completed:?} \
                 (expected {windows} windows)"
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let (args, extras) = Cli::new(
        "fig_service",
        "decode-service capacity sweep: tenants per shard before the tail-latency SLO breaks",
        48,
    )
    .flag(
        "--workers",
        "N",
        "decode worker threads per shard (default 2)",
    )
    .flag(
        "--slo-us",
        "X",
        "p99 latency SLO in microseconds (default 2000)",
    )
    .parse();
    let workers = extras
        .require("--workers", "an integer >= 1", |n: &usize| *n >= 1)
        .unwrap_or(2);
    let slo_us = extras
        .require("--slo-us", "a number > 0", |x: &f64| *x > 0.0)
        .unwrap_or(2_000.0);

    let tenant_counts = [1usize, 2, 4, 8];
    let strike_rates = [0.0f64, 0.5];
    let windows = args.samples as u64;
    let decoder = DecoderConfig::default().with_matcher(args.matcher);

    args.human(format!(
        "Service sweep: {workers}-worker shard, {windows} windows/tenant, \
         p99 SLO {slo_us} us, {} matcher, seed {}",
        args.matcher.name(),
        args.seed
    ));
    args.human(format_row(
        "tenants x strike",
        &[
            format!("{:>10}", "p50 us"),
            format!("{:>10}", "p99 us"),
            format!("{:>10}", "p999 us"),
            format!("{:>8}", "shed"),
            format!("{:>8}", "builds"),
            format!("{:>8}", "verdict"),
        ],
    ));

    let mut knees: Vec<(f64, Option<usize>)> = Vec::new();
    for (si, &strike_rate) in strike_rates.iter().enumerate() {
        let mut knee = None;
        for &tenants in &tenant_counts {
            let base_seed = args.stream_seed((si * 1000 + tenants) as u64);
            let report = run_cell(workers, decoder, tenants, strike_rate, windows, base_seed);
            validate(&report, windows);
            let worst_p99 = report.tenants.iter().map(|t| t.p99_ns).max().unwrap_or(0);
            let worst_p999 = report.tenants.iter().map(|t| t.p999_ns).max().unwrap_or(0);
            let median_p50 = report.tenants.iter().map(|t| t.p50_ns).max().unwrap_or(0);
            let shed: u64 = report.tenants.iter().map(|t| t.shed).sum();
            let builds: u64 = report.tenants.iter().map(|t| t.graph_builds).sum();
            let slo_met = worst_p99 as f64 / 1000.0 <= slo_us;
            if !slo_met && knee.is_none() {
                knee = Some(tenants);
            }
            args.human(format_row(
                &format!("{tenants} x p_strike={strike_rate}"),
                &[
                    format!("{:>10.1}", median_p50 as f64 / 1000.0),
                    format!("{:>10.1}", worst_p99 as f64 / 1000.0),
                    format!("{:>10.1}", worst_p999 as f64 / 1000.0),
                    format!("{shed:>8}"),
                    format!("{builds:>8}"),
                    format!("{:>8}", if slo_met { "ok" } else { "BREAK" }),
                ],
            ));
            if args.json {
                println!(
                    "{{\"figure\":\"service\",\"workers\":{workers},\"tenants\":{tenants},\
                     \"strike_rate\":{strike_rate},\"windows\":{windows},\
                     \"worst_p50_us\":{},\"worst_p99_us\":{},\"worst_p999_us\":{},\
                     \"shed\":{shed},\"graph_builds\":{builds},\
                     \"slo_us\":{slo_us},\"slo_met\":{slo_met}}}",
                    median_p50 as f64 / 1000.0,
                    worst_p99 as f64 / 1000.0,
                    worst_p999 as f64 / 1000.0,
                );
            }
        }
        knees.push((strike_rate, knee));
    }

    args.human(String::new());
    for (strike_rate, knee) in &knees {
        match knee {
            Some(tenants) => args.human(format!(
                "knee @ p_strike={strike_rate}: p99 SLO breaks at {tenants} tenants \
                 on {workers} workers"
            )),
            None => args.human(format!(
                "knee @ p_strike={strike_rate}: SLO holds through {} tenants",
                tenant_counts.last().unwrap()
            )),
        }
        if args.json {
            println!(
                "{{\"figure\":\"service_knee\",\"workers\":{workers},\
                 \"strike_rate\":{strike_rate},\"knee_tenants\":{}}}",
                knee.map_or("null".into(), |t| t.to_string())
            );
        }
    }
    args.human(
        "\nExpected shape: latency grows with tenants/worker and with the strike rate \
         (rollback windows cost two passes); graph builds stay flat in the window count \
         because the shard's context pool keeps one warm graph per structure.",
    );
}
