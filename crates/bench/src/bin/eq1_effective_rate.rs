//! Section III-A / Eq. (1): the effective logical error rate increase caused
//! by cosmic-ray MBBEs under the McEwen et al. parameters.
//!
//! Run with `--help` for the shared engine flag set.

use q3de::noise::PhysicalParams;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_bench::Cli;

fn main() {
    let (args, _) = Cli::new(
        "eq1_effective_rate",
        "effective logical error rate increase under cosmic-ray MBBEs (Eq. 1)",
        500,
    )
    .parse();
    let params = PhysicalParams::mcewen();
    let p = 8e-3;
    let d = 7;
    let config = MemoryExperimentConfig::new(d, p).with_anomaly(AnomalyInjection::centered(4, 0.5));
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let mut rng = args.rng(0);
    let p_l = experiment
        .estimate(args.samples, DecodingStrategy::MbbeFree, &mut rng)
        .logical_error_rate_per_cycle()
        .max(1e-9);
    let p_l_ano = experiment
        .estimate(args.samples, DecodingStrategy::Blind, &mut rng)
        .logical_error_rate_per_cycle()
        .max(1e-9);
    let effective = params.effective_logical_error_rate(p_l, p_l_ano);
    println!(
        "Eq. (1) effective logical error rate (d={d}, p={p}, {} shots)",
        args.samples
    );
    println!("  p_L (MBBE free)      = {p_l:.3e}");
    println!("  p_L,ano (during MBBE) = {p_l_ano:.3e}");
    println!(
        "  duty cycle f*tau      = {:.3}",
        params.anomaly_duty_cycle()
    );
    println!("  effective rate        = {effective:.3e}");
    println!("  increase ratio        = {:.1}x", effective / p_l);
    println!(
        "(the paper quotes an increase of about 100x on average for long-lived logical qubits)"
    );
}
