//! Figure 10: instruction throughput under cosmic rays for the MBBE-free
//! reference, the doubled-distance baseline and Q3DE.
//!
//! `--samples` sets the number of meas_ZZ instructions (default 2000); run
//! with `--help` for the shared engine flag set.

use q3de::control::{ArchitectureMode, ThroughputConfig, ThroughputSimulator};
use q3de_bench::{print_row, Cli};

fn main() {
    let (args, _) = Cli::new(
        "fig10",
        "instruction throughput under cosmic rays: MBBE-free vs 2d baseline vs Q3DE (paper Fig. 10)",
        2_000,
    )
    .parse();
    let frequencies = [1e-6, 1e-5, 1e-4, 1e-3];
    let durations = [100u64, 1000];

    println!(
        "Figure 10: completed meas_ZZ per d code cycles ({} instructions, 25 logical qubits, 11x11 blocks)",
        args.samples
    );
    print_row(
        "d*tau*f_ano ->",
        &frequencies
            .iter()
            .map(|f| format!("{f:9.0e}"))
            .collect::<Vec<_>>(),
    );

    let run = |mode, prob, duration, salt| {
        let mut config = ThroughputConfig::fig10(mode, prob, duration);
        config.num_instructions = args.samples;
        let mut rng = args.rng(salt);
        ThroughputSimulator::new(config)
            .run(&mut rng)
            .instructions_per_d_cycles
    };

    let free: Vec<String> = frequencies
        .iter()
        .map(|_| format!("{:9.2}", run(ArchitectureMode::MbbeFree, 0.0, 100, 1)))
        .collect();
    print_row("MBBE free", &free);
    let baseline: Vec<String> = frequencies
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            format!(
                "{:9.2}",
                run(ArchitectureMode::Baseline, f, 100, 10 + i as u64)
            )
        })
        .collect();
    print_row("baseline (2d)", &baseline);
    for &duration in &durations {
        let q3de: Vec<String> = frequencies
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                format!(
                    "{:9.2}",
                    run(ArchitectureMode::Q3de, f, duration, 100 + i as u64)
                )
            })
            .collect();
        print_row(&format!("Q3DE tau_ano/(d tau_cyc)={duration}"), &q3de);
    }
    println!("\nExpected shape: at realistic MBBE rates (~1e-5) Q3DE throughput approaches the MBBE-free");
    println!(
        "bound and roughly doubles the baseline; very frequent/long bursts erode the advantage."
    );
}
