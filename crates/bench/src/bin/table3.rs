//! Table III: memory overheads of the Q3DE decoding pipeline
//! (d = 31, p = 1e-3, c_win = 300).
//!
//! The table is a closed-form model — no Monte-Carlo shots — so the engine
//! flags are accepted (run with `--help`) but only for uniformity.

use q3de::scaling::MemoryOverheadModel;
use q3de_bench::Cli;

fn main() {
    let _args = Cli::new(
        "table3",
        "memory overheads of the Q3DE decoding pipeline (paper Table III)",
        0,
    )
    .parse();
    let model = MemoryOverheadModel::table3();
    println!("Table III: memory overheads per logical qubit (d = 31, c_win = 300)");
    println!("{:<22}{:>14}{:>14}", "unit", "size (kbit)", "paper (kbit)");
    let rows = [
        (
            "syndrome queue",
            MemoryOverheadModel::to_kbit(model.syndrome_queue_bits()),
            623.0,
        ),
        (
            "active node counter",
            MemoryOverheadModel::to_kbit(model.active_node_counter_bits()),
            16.0,
        ),
        (
            "matching queue",
            MemoryOverheadModel::to_kbit(model.matching_queue_bits()),
            24.0,
        ),
    ];
    for (name, ours, paper) in rows {
        println!("{name:<22}{ours:>14.1}{paper:>14.1}");
    }
    println!(
        "MBBE-free syndrome queue (2d^3): {:.1} kbit; overhead ratio ~{:.1}x",
        MemoryOverheadModel::to_kbit(model.baseline_syndrome_queue_bits()),
        model.syndrome_queue_overhead_ratio()
    );
}
