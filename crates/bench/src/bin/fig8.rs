//! Figure 8: logical error rates with and without decoder re-execution
//! (rollback) and the effective code-distance reduction, for anomaly sizes 2
//! and 4.
//!
//! Usage: `cargo run --release -p q3de-bench --bin fig8 [--samples N]`

use q3de::scaling::effective_distance_reduction;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_bench::{print_row, sci, ExperimentArgs};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = ExperimentArgs::parse(300);
    let distances = [5usize, 7, 9];
    let error_rates = [4e-3, 1e-2, 2e-2, 4e-2];
    let anomaly_sizes = [2usize, 4];

    for &dano in &anomaly_sizes {
        println!(
            "\nFigure 8 (anomaly size = {dano}), {} shots/point, {} matcher",
            args.samples,
            args.matcher.name()
        );
        print_row(
            "configuration",
            &error_rates
                .iter()
                .map(|p| format!("p={p:<9.1e}"))
                .collect::<Vec<_>>(),
        );
        for &d in &distances {
            let mut free_rates = Vec::new();
            let mut blind_rates = Vec::new();
            let mut aware_rates = Vec::new();
            for (pi, &p) in error_rates.iter().enumerate() {
                let config = MemoryExperimentConfig::new(d, p)
                    .with_matcher(args.matcher)
                    .with_anomaly(AnomalyInjection::centered(dano, 0.5));
                let experiment = MemoryExperiment::new(config).expect("valid distance");
                // stride-4 salts: stream_seed is additive in the salt, so a
                // unit stride would alias one strategy's streams with its
                // neighbour data point's
                let salt = 4 * (dano * 1000 + d * 10 + pi) as u64;
                let free = experiment.estimate_parallel::<ChaCha8Rng>(
                    args.samples,
                    DecodingStrategy::MbbeFree,
                    args.stream_seed(salt),
                );
                let blind = experiment.estimate_parallel::<ChaCha8Rng>(
                    args.samples,
                    DecodingStrategy::Blind,
                    args.stream_seed(salt + 1),
                );
                let aware = experiment.estimate_parallel::<ChaCha8Rng>(
                    args.samples,
                    DecodingStrategy::AnomalyAware,
                    args.stream_seed(salt + 2),
                );
                free_rates.push(free.logical_error_rate());
                blind_rates.push(blind.logical_error_rate());
                aware_rates.push(aware.logical_error_rate());
                if args.json {
                    println!(
                        "{{\"figure\":8,\"d\":{d},\"d_ano\":{dano},\"p\":{p},\
                         \"free\":{},\"blind\":{},\"rollback\":{}}}",
                        free.logical_error_rate(),
                        blind.logical_error_rate(),
                        aware.logical_error_rate()
                    );
                }
            }
            print_row(
                &format!("d={d} MBBE free"),
                &free_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
            print_row(
                &format!("d={d} without rollback"),
                &blind_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
            print_row(
                &format!("d={d} with rollback"),
                &aware_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
        }

        // Effective code-distance reduction at the lowest error rate, Eq. (4).
        println!(
            "effective code-distance reduction (Eq. 4, p = {}):",
            error_rates[0]
        );
        for &d in &distances[1..] {
            let p = error_rates[0];
            let shots = args.samples;
            // disjoint stride-4 salt block, offset past the row salts and
            // folded over dano so no two estimates share a stream
            let eq4_salt =
                |dist: usize, k: u64| 4 * (50_000 + dano as u64 * 1_000 + dist as u64) + k;
            let estimate = |dist: usize, strategy, salt: u64| {
                let mut config = MemoryExperimentConfig::new(dist, p).with_matcher(args.matcher);
                if strategy != DecodingStrategy::MbbeFree {
                    config = config.with_anomaly(AnomalyInjection::centered(dano, 0.5));
                }
                let experiment = MemoryExperiment::new(config).expect("valid distance");
                experiment
                    .estimate_parallel::<ChaCha8Rng>(shots, strategy, args.stream_seed(salt))
                    .logical_error_rate()
                    .max(1e-6)
            };
            let p_l_d = estimate(d, DecodingStrategy::MbbeFree, eq4_salt(d, 0));
            let p_l_dm2 = estimate(d - 2, DecodingStrategy::MbbeFree, eq4_salt(d - 2, 1));
            let blind = estimate(d, DecodingStrategy::Blind, eq4_salt(d, 2));
            let aware = estimate(d, DecodingStrategy::AnomalyAware, eq4_salt(d, 3));
            let without = effective_distance_reduction(blind, p_l_d, p_l_dm2);
            let with = effective_distance_reduction(aware, p_l_d, p_l_dm2);
            println!(
                "  d={d}: without rollback -> {:?} (expected ~{}), with rollback -> {:?} (expected ~{})",
                without, 2 * dano, with, dano
            );
        }
    }
    println!("\nExpected shape: rollback curves sit between the MBBE-free and no-rollback curves;");
    println!(
        "the distance reduction converges towards 2*d_ano without rollback and d_ano with it."
    );
}
