//! Figure 8: logical error rates with and without decoder re-execution
//! (rollback) and the effective code-distance reduction, for anomaly sizes 2
//! and 4.
//!
//! All estimates — the three curves per (d_ano, d) row *and* the Eq. (4)
//! inputs — run as one grid on the shared sweep engine, sharded across
//! worker threads.  `--target-rse` enables adaptive early stopping;
//! `--checkpoint`/`--resume` make the sweep restartable.  Run with
//! `--help` for the full engine flag set.

use q3de::scaling::effective_distance_reduction;
use q3de::sim::engine::SweepReport;
use q3de::sim::DecodingStrategy;
use q3de_bench::sweeps::{
    self, fig8_curve_id as curve_id, fig8_eq4_id as eq4_id, FIG8_ANOMALY_SIZES as ANOMALY_SIZES,
    FIG8_DISTANCES as DISTANCES, FIG8_ERROR_RATES as ERROR_RATES,
};
use q3de_bench::{sci, Cli};

fn rate(report: &SweepReport, id: &str) -> f64 {
    report.point(id).expect("point ran").failure_rate()
}

fn main() {
    let (args, _) = Cli::new(
        "fig8",
        "logical error rate with/without rollback and effective distance reduction (paper Fig. 8)",
        300,
    )
    .parse();
    // The grid comes from the shared sweep registry (one definition for
    // this binary and the distributed fabric's workers).
    let points = sweeps::build("fig8", &args).expect("fig8 is registered");

    args.human(format!(
        "Figure 8: {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    let report = args.run_sweep(points);

    for &dano in &ANOMALY_SIZES {
        args.human(format!("\nFigure 8 (anomaly size = {dano})"));
        args.human_row(
            "configuration",
            &ERROR_RATES
                .iter()
                .map(|p| format!("p={p:<9.1e}"))
                .collect::<Vec<_>>(),
        );
        for &d in &DISTANCES {
            for (label, strategy) in [
                ("MBBE free", DecodingStrategy::MbbeFree),
                ("without rollback", DecodingStrategy::Blind),
                ("with rollback", DecodingStrategy::AnomalyAware),
            ] {
                let row: Vec<String> = ERROR_RATES
                    .iter()
                    .map(|&p| sci(rate(&report, &curve_id(dano, d, p, strategy))))
                    .collect();
                args.human_row(&format!("d={d} {label}"), &row);
            }
            if args.json {
                for &p in &ERROR_RATES {
                    println!(
                        "{{\"figure\":8,\"d\":{d},\"d_ano\":{dano},\"p\":{p},\
                         \"free\":{},\"blind\":{},\"rollback\":{}}}",
                        rate(&report, &curve_id(dano, d, p, DecodingStrategy::MbbeFree)),
                        rate(&report, &curve_id(dano, d, p, DecodingStrategy::Blind)),
                        rate(
                            &report,
                            &curve_id(dano, d, p, DecodingStrategy::AnomalyAware)
                        ),
                    );
                }
            }
        }

        // Effective code-distance reduction at the lowest error rate, Eq. (4).
        args.human(format!(
            "effective code-distance reduction (Eq. 4, p = {}):",
            ERROR_RATES[0]
        ));
        for &d in &DISTANCES[1..] {
            let clamped = |id: &str| rate(&report, id).max(1e-6);
            let p_l_d = clamped(&eq4_id(dano, d, DecodingStrategy::MbbeFree));
            let p_l_dm2 = clamped(&format!("fig8/eq4/dano={dano}/d={}/free-ref", d - 2));
            let blind = clamped(&eq4_id(dano, d, DecodingStrategy::Blind));
            let aware = clamped(&eq4_id(dano, d, DecodingStrategy::AnomalyAware));
            let without = effective_distance_reduction(blind, p_l_d, p_l_dm2);
            let with = effective_distance_reduction(aware, p_l_d, p_l_dm2);
            args.human(format!(
                "  d={d}: without rollback -> {without:?} (expected ~{}), \
                 with rollback -> {with:?} (expected ~{dano})",
                2 * dano
            ));
        }
    }
    args.human(
        "\nExpected shape: rollback curves sit between the MBBE-free and no-rollback curves;",
    );
    args.human(
        "the distance reduction converges towards 2*d_ano without rollback and d_ano with it.",
    );
}
