//! Figure 8: logical error rates with and without decoder re-execution
//! (rollback) and the effective code-distance reduction, for anomaly sizes 2
//! and 4.
//!
//! Usage: `cargo run --release -p q3de-bench --bin fig8 [--samples N]`

use q3de::scaling::effective_distance_reduction;
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_bench::{print_row, sci, ExperimentArgs};

fn main() {
    let args = ExperimentArgs::parse(300);
    let distances = [5usize, 7, 9];
    let error_rates = [4e-3, 1e-2, 2e-2, 4e-2];
    let anomaly_sizes = [2usize, 4];

    for &dano in &anomaly_sizes {
        println!(
            "\nFigure 8 (anomaly size = {dano}), {} shots/point",
            args.samples
        );
        print_row(
            "configuration",
            &error_rates
                .iter()
                .map(|p| format!("p={p:<9.1e}"))
                .collect::<Vec<_>>(),
        );
        for &d in &distances {
            let mut free_rates = Vec::new();
            let mut blind_rates = Vec::new();
            let mut aware_rates = Vec::new();
            for (pi, &p) in error_rates.iter().enumerate() {
                let config = MemoryExperimentConfig::new(d, p)
                    .with_anomaly(AnomalyInjection::centered(dano, 0.5));
                let experiment = MemoryExperiment::new(config).expect("valid distance");
                let mut rng = args.rng((dano * 1000 + d * 10 + pi) as u64);
                let free = experiment.estimate(args.samples, DecodingStrategy::MbbeFree, &mut rng);
                let blind = experiment.estimate(args.samples, DecodingStrategy::Blind, &mut rng);
                let aware =
                    experiment.estimate(args.samples, DecodingStrategy::AnomalyAware, &mut rng);
                free_rates.push(free.logical_error_rate());
                blind_rates.push(blind.logical_error_rate());
                aware_rates.push(aware.logical_error_rate());
            }
            print_row(
                &format!("d={d} MBBE free"),
                &free_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
            print_row(
                &format!("d={d} without rollback"),
                &blind_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
            print_row(
                &format!("d={d} with rollback"),
                &aware_rates.iter().map(|&r| sci(r)).collect::<Vec<_>>(),
            );
        }

        // Effective code-distance reduction at the lowest error rate, Eq. (4).
        println!(
            "effective code-distance reduction (Eq. 4, p = {}):",
            error_rates[0]
        );
        for &d in &distances[1..] {
            let p = error_rates[0];
            let shots = args.samples;
            let estimate = |dist: usize, strategy, salt: u64| {
                let mut config = MemoryExperimentConfig::new(dist, p);
                if strategy != DecodingStrategy::MbbeFree {
                    config = config.with_anomaly(AnomalyInjection::centered(dano, 0.5));
                }
                let experiment = MemoryExperiment::new(config).expect("valid distance");
                let mut rng = args.rng(salt);
                experiment
                    .estimate(shots, strategy, &mut rng)
                    .logical_error_rate()
                    .max(1e-6)
            };
            let p_l_d = estimate(d, DecodingStrategy::MbbeFree, d as u64);
            let p_l_dm2 = estimate(d - 2, DecodingStrategy::MbbeFree, d as u64 + 1);
            let blind = estimate(d, DecodingStrategy::Blind, d as u64 + 2);
            let aware = estimate(d, DecodingStrategy::AnomalyAware, d as u64 + 3);
            let without = effective_distance_reduction(blind, p_l_d, p_l_dm2);
            let with = effective_distance_reduction(aware, p_l_d, p_l_dm2);
            println!(
                "  d={d}: without rollback -> {:?} (expected ~{}), with rollback -> {:?} (expected ~{})",
                without, 2 * dano, with, dano
            );
        }
    }
    println!("\nExpected shape: rollback curves sit between the MBBE-free and no-rollback curves;");
    println!(
        "the distance reduction converges towards 2*d_ano without rollback and d_ano with it."
    );
}
