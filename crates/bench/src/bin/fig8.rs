//! Figure 8: logical error rates with and without decoder re-execution
//! (rollback) and the effective code-distance reduction, for anomaly sizes 2
//! and 4.
//!
//! All estimates — the three curves per (d_ano, d) row *and* the Eq. (4)
//! inputs — run as one grid on the shared sweep engine, so shots are
//! work-stolen across the whole figure.  `--target-rse` enables adaptive
//! early stopping; `--checkpoint`/`--resume` make the sweep restartable.
//!
//! Usage: `cargo run --release -p q3de_bench --bin fig8 [--samples N]
//! [--seed N] [--matcher M] [--json] [--target-rse X]
//! [--checkpoint PATH] [--resume] [--report PATH]`

use q3de::scaling::effective_distance_reduction;
use q3de::sim::engine::{SweepPoint, SweepReport};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperimentConfig};
use q3de_bench::{sci, ExperimentArgs};
use rand_chacha::ChaCha8Rng;

const DISTANCES: [usize; 3] = [5, 7, 9];
const ERROR_RATES: [f64; 4] = [4e-3, 1e-2, 2e-2, 4e-2];
const ANOMALY_SIZES: [usize; 2] = [2, 4];

fn curve_id(dano: usize, d: usize, p: f64, strategy: DecodingStrategy) -> String {
    format!("fig8/dano={dano}/d={d}/p={p:e}/{}", strategy_name(strategy))
}

fn eq4_id(dano: usize, d: usize, strategy: DecodingStrategy) -> String {
    format!("fig8/eq4/dano={dano}/d={d}/{}", strategy_name(strategy))
}

fn strategy_name(strategy: DecodingStrategy) -> &'static str {
    match strategy {
        DecodingStrategy::MbbeFree => "free",
        DecodingStrategy::Blind => "blind",
        DecodingStrategy::AnomalyAware => "rollback",
    }
}

fn rate(report: &SweepReport, id: &str) -> f64 {
    report.point(id).expect("point ran").failure_rate()
}

fn main() {
    let args = ExperimentArgs::parse(300);
    let mut points = Vec::new();

    let memory_point = |id: &str, d: usize, p: f64, dano: usize, strategy, salt: u64| {
        let mut config = MemoryExperimentConfig::new(d, p).with_matcher(args.matcher);
        if strategy != DecodingStrategy::MbbeFree {
            config = config.with_anomaly(AnomalyInjection::centered(dano, 0.5));
        }
        SweepPoint::from_memory::<ChaCha8Rng>(id, config, strategy, args.stream_seed(salt))
            .expect("valid distance")
    };

    for &dano in &ANOMALY_SIZES {
        for &d in &DISTANCES {
            for (pi, &p) in ERROR_RATES.iter().enumerate() {
                // stride-4 salts: stream_seed is additive in the salt, so a
                // unit stride would alias one strategy's streams with its
                // neighbour data point's
                let salt = 4 * (dano * 1000 + d * 10 + pi) as u64;
                for (k, strategy) in [
                    DecodingStrategy::MbbeFree,
                    DecodingStrategy::Blind,
                    DecodingStrategy::AnomalyAware,
                ]
                .into_iter()
                .enumerate()
                {
                    // The MBBE-free curve carries no anomaly, so it is the
                    // same point for both dano values — but it keeps its own
                    // streams (as before the engine migration) for identical
                    // fixed-seed statistics.
                    points.push(memory_point(
                        &curve_id(dano, d, p, strategy),
                        d,
                        p,
                        dano,
                        strategy,
                        salt + k as u64,
                    ));
                }
            }
        }
        // Eq. (4) inputs at the lowest error rate: disjoint stride-4 salt
        // block, offset past the row salts and folded over dano so no two
        // estimates share a stream.
        let p = ERROR_RATES[0];
        let eq4_salt = |dist: usize, k: u64| 4 * (50_000 + dano as u64 * 1_000 + dist as u64) + k;
        for &d in &DISTANCES[1..] {
            points.push(memory_point(
                &eq4_id(dano, d, DecodingStrategy::MbbeFree),
                d,
                p,
                dano,
                DecodingStrategy::MbbeFree,
                eq4_salt(d, 0),
            ));
            let id_dm2 = format!("fig8/eq4/dano={dano}/d={}/free-ref", d - 2);
            points.push(memory_point(
                &id_dm2,
                d - 2,
                p,
                dano,
                DecodingStrategy::MbbeFree,
                eq4_salt(d - 2, 1),
            ));
            points.push(memory_point(
                &eq4_id(dano, d, DecodingStrategy::Blind),
                d,
                p,
                dano,
                DecodingStrategy::Blind,
                eq4_salt(d, 2),
            ));
            points.push(memory_point(
                &eq4_id(dano, d, DecodingStrategy::AnomalyAware),
                d,
                p,
                dano,
                DecodingStrategy::AnomalyAware,
                eq4_salt(d, 3),
            ));
        }
    }

    args.human(format!(
        "Figure 8: {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    let report = args.run_sweep(points);

    for &dano in &ANOMALY_SIZES {
        args.human(format!("\nFigure 8 (anomaly size = {dano})"));
        args.human_row(
            "configuration",
            &ERROR_RATES
                .iter()
                .map(|p| format!("p={p:<9.1e}"))
                .collect::<Vec<_>>(),
        );
        for &d in &DISTANCES {
            for (label, strategy) in [
                ("MBBE free", DecodingStrategy::MbbeFree),
                ("without rollback", DecodingStrategy::Blind),
                ("with rollback", DecodingStrategy::AnomalyAware),
            ] {
                let row: Vec<String> = ERROR_RATES
                    .iter()
                    .map(|&p| sci(rate(&report, &curve_id(dano, d, p, strategy))))
                    .collect();
                args.human_row(&format!("d={d} {label}"), &row);
            }
            if args.json {
                for &p in &ERROR_RATES {
                    println!(
                        "{{\"figure\":8,\"d\":{d},\"d_ano\":{dano},\"p\":{p},\
                         \"free\":{},\"blind\":{},\"rollback\":{}}}",
                        rate(&report, &curve_id(dano, d, p, DecodingStrategy::MbbeFree)),
                        rate(&report, &curve_id(dano, d, p, DecodingStrategy::Blind)),
                        rate(
                            &report,
                            &curve_id(dano, d, p, DecodingStrategy::AnomalyAware)
                        ),
                    );
                }
            }
        }

        // Effective code-distance reduction at the lowest error rate, Eq. (4).
        args.human(format!(
            "effective code-distance reduction (Eq. 4, p = {}):",
            ERROR_RATES[0]
        ));
        for &d in &DISTANCES[1..] {
            let clamped = |id: &str| rate(&report, id).max(1e-6);
            let p_l_d = clamped(&eq4_id(dano, d, DecodingStrategy::MbbeFree));
            let p_l_dm2 = clamped(&format!("fig8/eq4/dano={dano}/d={}/free-ref", d - 2));
            let blind = clamped(&eq4_id(dano, d, DecodingStrategy::Blind));
            let aware = clamped(&eq4_id(dano, d, DecodingStrategy::AnomalyAware));
            let without = effective_distance_reduction(blind, p_l_d, p_l_dm2);
            let with = effective_distance_reduction(aware, p_l_d, p_l_dm2);
            args.human(format!(
                "  d={d}: without rollback -> {without:?} (expected ~{}), \
                 with rollback -> {with:?} (expected ~{dano})",
                2 * dano
            ));
        }
    }
    args.human(
        "\nExpected shape: rollback curves sit between the MBBE-free and no-rollback curves;",
    );
    args.human(
        "the distance reduction converges towards 2*d_ano without rollback and d_ano with it.",
    );
}
