//! Figure 7: anomaly-detection window size, latency and position error as a
//! function of the anomalous/normal error-rate ratio.
//!
//! Run with `--help` for the shared engine flag set.

use q3de::sim::{DetectionExperiment, DetectionExperimentConfig};
use q3de_bench::Cli;

fn main() {
    let (args, _) = Cli::new(
        "fig7",
        "anomaly-detection window, latency and position error vs burst strength (paper Fig. 7)",
        10,
    )
    .parse();
    let ratios = [10.0, 20.0, 40.0, 60.0, 100.0];
    let candidate_windows = [25usize, 50, 100, 150, 200, 300, 400, 500];

    args.human(format!(
        "Figure 7: detection window for <=1% error, latency and position error ({} trials/point)",
        args.samples
    ));
    args.human_row(
        "ratio p_ano/p",
        &[
            "window".into(),
            "latency(cycles)".into(),
            "position err".into(),
        ],
    );
    for (i, &ratio) in ratios.iter().enumerate() {
        let mut config = DetectionExperimentConfig::fig7(ratio);
        config.distance = 13; // reduced patch for runtime; scales like the paper's d = 21
        let experiment = DetectionExperiment::new(config).expect("valid config");
        let mut rng = args.rng(i as u64);
        let window = experiment.required_window(&candidate_windows, 0.1, args.samples, &mut rng);
        let (label, latency, pos) = match window {
            Some(w) => {
                let (_, lat, pos) = experiment.run_trials(w, args.samples, &mut rng);
                (format!("{w}"), format!("{lat:.0}"), format!("{pos:.1}"))
            }
            None => ("> max".into(), "-".into(), "-".into()),
        };
        args.human_row(&format!("{ratio:>6.0}"), &[label, latency, pos]);
        if args.json {
            println!("{{\"figure\":7,\"ratio\":{ratio},\"window\":\"{window:?}\"}}");
        }
    }
    args.human(
        "\nExpected shape: the required window shrinks rapidly as the burst strength grows;",
    );
    args.human(
        "latency is of the order of the window and the position error stays within a few sites.",
    );
}
