//! Threshold study: logical error rate vs MBBE burst rate for
//! d ∈ {3..21}, decoded without expansion (burst-blind) and with Q3DE
//! expansion (anomaly-aware rollback) — the paper's headline claim as a
//! crossing-point estimate per policy.
//!
//! For each decoding policy the binary sweeps every distance over a grid of
//! burst rates at a fixed sub-threshold background error rate.  Below the
//! policy's threshold a larger distance gives a lower logical error rate;
//! the burst rate at which adjacent-distance curves cross is the threshold
//! estimate.  Without expansion the burst defeats the larger codes early;
//! with Q3DE expansion the distance ordering should persist to much higher
//! burst rates (the paper's recovery claim).
//!
//! The sweep runs on the shared adaptive engine, so `--target-rse`,
//! `--checkpoint`/`--resume` and `--report` all work; distances d > 13 are
//! only tractable because the alternating-tree backend decodes the rollback
//! windows ~12x faster than the dense exact oracle, so `--matcher` defaults
//! to `tree` here (pass `--matcher exact` to cross-check small d, or
//! `--matcher blossom` for the truncated-ball sparse blossom backend).
//! After the sweep the binary re-parses the engine's own JSON report and
//! validates it (every cell present, Wilson bounds ordered and bracketing
//! the point estimate), exiting 3 on any violation — CI runs this
//! self-validation on the pinned-seed smoke sweep.
//!
//! Run with `--help` for the full flag set (`--distances 3,5,...` narrows
//! the distance sweep for smoke runs).

use q3de::matching::MatcherKind;
use q3de::sim::engine::json::{check_schema_version, JsonValue};
use q3de::sim::engine::{SweepPoint, SweepReport, REPORT_SCHEMA_VERSION};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperimentConfig};
use q3de_bench::{sci, Cli, ExtraValues};
use rand_chacha::ChaCha8Rng;

/// Background physical error rate: comfortably below the bulk threshold, so
/// distance helps whenever the decoder copes with the burst.
const PHYSICAL_ERROR_RATE: f64 = 8e-3;
/// Spatio-temporal extent of the injected MBBE — the paper's `d_ano = 4`,
/// clamped below the code distance so d = 3 smoke sweeps stay valid.
const BURST_SIZE: usize = 4;
/// The swept burst rates (`p_ano` inside the anomalous region).
const BURST_RATES: &[f64] = &[0.05, 0.1, 0.2, 0.35, 0.5];
/// Full distance sweep; override with `--distances 3,5` for smoke runs.
const DEFAULT_DISTANCES: &[usize] = &[3, 5, 7, 9, 11, 13, 15, 17, 19, 21];

/// The two decoding policies: burst-blind (no expansion) vs Q3DE
/// anomaly-aware re-execution.
const POLICIES: &[(&str, DecodingStrategy)] = &[
    ("none", DecodingStrategy::Blind),
    ("q3de", DecodingStrategy::AnomalyAware),
];

struct Cell {
    d: usize,
    rate: f64,
    policy: &'static str,
    id: String,
}

fn main() {
    // This figure needs exact decoding at large d: default to the fastest
    // exact backend (alternating-tree) unless the user picks a matcher.
    let (args, extras) = Cli::new(
        "fig_threshold",
        "logical error rate vs MBBE burst rate, with crossing-point threshold estimates",
        200,
    )
    .default_matcher(MatcherKind::Tree)
    .flag(
        "--distances",
        "LIST",
        "comma-separated code distances to sweep (default 3,5,...,21)",
    )
    .parse();
    let distances = parse_distances(&extras).unwrap_or_else(|| DEFAULT_DISTANCES.to_vec());

    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &d in &distances {
        for (pi, &(policy, strategy)) in POLICIES.iter().enumerate() {
            for (ri, &rate) in BURST_RATES.iter().enumerate() {
                let config = MemoryExperimentConfig::new(d, PHYSICAL_ERROR_RATE)
                    .with_matcher(args.matcher)
                    .with_anomaly(AnomalyInjection::centered(BURST_SIZE.min(d - 1), rate));
                let id = format!("threshold/d={d}/policy={policy}/rate={rate}");
                points.push(
                    SweepPoint::from_memory::<ChaCha8Rng>(
                        &id,
                        config,
                        strategy,
                        args.stream_seed((d * 1000 + ri * 10 + pi) as u64),
                    )
                    .expect("valid distance"),
                );
                cells.push(Cell {
                    d,
                    rate,
                    policy,
                    id,
                });
            }
        }
    }

    args.human(format!(
        "Threshold study: logical error rate vs burst rate (p = {PHYSICAL_ERROR_RATE:.0e}, \
         d_ano = min({BURST_SIZE}, d-1)), {} shots/point{}, {} matcher",
        args.samples,
        args.target_rse
            .map_or(String::new(), |rse| format!(" (ceiling, target rse {rse})")),
        args.matcher.name()
    ));
    let report = args.run_sweep(points);
    if let Err(error) = validate_engine_json(&report, &cells) {
        eprintln!("engine JSON self-validation FAILED: {error}");
        std::process::exit(3);
    }
    args.human("engine JSON self-validation: ok");

    args.human_row(
        "configuration",
        &BURST_RATES
            .iter()
            .map(|r| format!("rate={r:<7}"))
            .collect::<Vec<_>>(),
    );
    for &(policy, _) in POLICIES {
        for &d in &distances {
            let row: Vec<String> = cells
                .iter()
                .filter(|c| c.d == d && c.policy == policy)
                .map(|c| sci(report.point(&c.id).expect("point ran").failure_rate()))
                .collect();
            args.human_row(&format!("d={d} policy={policy}"), &row);
        }
    }

    if args.json {
        for cell in &cells {
            let point = report.point(&cell.id).expect("point ran");
            let (low, high) = point.wilson();
            println!(
                "{{\"figure\":\"threshold\",\"d\":{},\"p\":{PHYSICAL_ERROR_RATE},\
                 \"burst_rate\":{},\"policy\":\"{}\",\"rate\":{},\"shots\":{},\
                 \"failures\":{},\"wilson_low\":{low},\"wilson_high\":{high}}}",
                cell.d,
                cell.rate,
                cell.policy,
                point.failure_rate(),
                point.shots,
                point.failures,
            );
        }
    }

    // Crossing-point (threshold) estimate per policy: where the logical
    // error rate of adjacent-distance curves crosses, increasing distance
    // has stopped helping — the median crossing is the threshold estimate.
    args.human("");
    for &(policy, _) in POLICIES {
        let mut crossings = Vec::new();
        for pair in distances.windows(2) {
            let [d1, d2] = [pair[0], pair[1]];
            let curve = |d: usize| -> Vec<f64> {
                cells
                    .iter()
                    .filter(|c| c.d == d && c.policy == policy)
                    .map(|c| {
                        let p = report.point(&c.id).expect("point ran");
                        // A zero-failure tally has an undefined log rate;
                        // half a failure keeps the interpolation finite.
                        if p.failures == 0 {
                            0.5 / p.shots.max(1) as f64
                        } else {
                            p.failure_rate()
                        }
                    })
                    .collect()
            };
            let (c1, c2) = (curve(d1), curve(d2));
            for ri in 0..BURST_RATES.len() - 1 {
                // The larger code is better below its threshold: the gap
                // ln(LER_d2) - ln(LER_d1) moves from negative to positive
                // through the crossing.
                let f0 = (c2[ri] / c1[ri]).ln();
                let f1 = (c2[ri + 1] / c1[ri + 1]).ln();
                if f0 < 0.0 && f1 >= 0.0 {
                    let t = f0 / (f0 - f1);
                    crossings.push(BURST_RATES[ri] + t * (BURST_RATES[ri + 1] - BURST_RATES[ri]));
                }
            }
        }
        crossings.sort_by(f64::total_cmp);
        let estimate = if crossings.is_empty() {
            None
        } else {
            Some(crossings[crossings.len() / 2])
        };
        match estimate {
            Some(rate) => args.human(format!(
                "threshold estimate ({policy}): burst rate ~{rate:.3} \
                 ({} adjacent-distance crossings)",
                crossings.len()
            )),
            None => args.human(format!(
                "threshold estimate ({policy}): no crossing in the swept range — \
                 distance ordering preserved up to burst rate {}",
                BURST_RATES.last().unwrap()
            )),
        }
        if args.json {
            println!(
                "{{\"figure\":\"threshold\",\"policy\":\"{policy}\",\"crossing_rate\":{},\
                 \"crossings\":{}}}",
                estimate.map_or("null".into(), |r| format!("{r}")),
                crossings.len()
            );
        }
    }
    args.human("");
    args.human("Expected shape: without expansion the burst defeats larger codes at low burst");
    args.human("rates (early crossings); Q3DE expansion pushes the crossing out or removes it.");
}

/// Parses `--distances 3,5,7` into a sorted distance list.
fn parse_distances(extras: &ExtraValues) -> Option<Vec<usize>> {
    let spec = extras.get("--distances")?;
    let mut distances: Vec<usize> = spec
        .split(',')
        .filter_map(|tok| tok.trim().parse().ok())
        .collect();
    distances.sort_unstable();
    distances.dedup();
    if distances.is_empty() {
        eprintln!("--distances '{spec}' parsed to nothing; using the default sweep");
        return None;
    }
    Some(distances)
}

/// Re-parses the engine's own JSON report and checks it is self-consistent:
/// the schema version this build writes, every swept cell present with at
/// least one shot, failures within shots, and ordered Wilson bounds
/// bracketing the point estimate.
fn validate_engine_json(report: &SweepReport, cells: &[Cell]) -> Result<(), String> {
    let doc = JsonValue::parse(&report.to_json().to_string())
        .map_err(|e| format!("report does not parse: {e}"))?;
    check_schema_version(&doc, REPORT_SCHEMA_VERSION, "sweep report")?;
    let points = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or("report has no points array")?;
    for cell in cells {
        let point = points
            .iter()
            .find(|p| p.get("id").and_then(JsonValue::as_str) == Some(&cell.id))
            .ok_or_else(|| format!("cell {} missing from the report", cell.id))?;
        let num = |key: &str| {
            point
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("cell {}: missing numeric field {key}", cell.id))
        };
        let (shots, failures) = (num("shots")?, num("failures")?);
        let (rate, low, high) = (
            num("failure_rate")?,
            num("wilson_low")?,
            num("wilson_high")?,
        );
        if shots < 1.0 {
            return Err(format!("cell {}: ran no shots", cell.id));
        }
        if failures > shots {
            return Err(format!("cell {}: more failures than shots", cell.id));
        }
        if !(0.0..=1.0).contains(&low) || !(0.0..=1.0).contains(&high) || low > high {
            return Err(format!(
                "cell {}: malformed Wilson interval [{low}, {high}]",
                cell.id
            ));
        }
        if rate < low - 1e-12 || rate > high + 1e-12 {
            return Err(format!(
                "cell {}: rate {rate} outside its Wilson interval [{low}, {high}]",
                cell.id
            ));
        }
    }
    Ok(())
}
