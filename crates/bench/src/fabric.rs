//! The distributed sweep fabric: job files, delta files, and the
//! length-prefixed TCP protocol behind `q3de-sweepd` and `q3de-sweepctl`.
//!
//! A distributed sweep is the engine's shard protocol stretched across
//! processes:
//!
//! * `q3de-sweepctl plan` captures a sweep as a [`SweepJob`] — a
//!   [`Generator`] (the sweep name plus the engine knobs needed to rebuild
//!   its kernels deterministically) and the engine's
//!   [`ShardPlan`] (pure data: the deterministic stream partition);
//! * each `q3de-sweepd` worker rebuilds the identical points from the
//!   generator, runs its shard and emits [`TallyDelta`]s — to a delta file
//!   ([`FileSink`]) or to a live coordinator over TCP ([`RemoteSink`]);
//! * `q3de-sweepctl merge`/[`serve`] folds the deltas through the engine's
//!   [`Coordinator`], whose merge is associative, commutative and
//!   duplicate-idempotent — so the merged report is **bit-identical**
//!   (modulo the [`TIMING_FIELDS`]) to a single-process run at the same
//!   seed, which `q3de-sweepctl diff` checks.
//!
//! The file transport has no live coordinator, so its gate always answers
//! [`EpochGate::Run`]: an adaptive sweep's workers run every scheduled
//! block up to the ceiling, and the merge discards the blocks past each
//! point's stop boundary — same statistics, no early-stop savings.  The TCP
//! transport gates against the live coordinator and does stop early.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use q3de::matching::MatcherKind;
use q3de::sim::engine::json::{check_schema_version, JsonValue};
use q3de::sim::engine::{
    write_atomic, Coordinator, DeltaSink, EngineError, EpochGate, ShardPlan, SweepPoint,
    SweepReport, TallyDelta,
};

use crate::{sweeps, EngineArgs};

/// Schema version of job and delta-file documents.
pub const FABRIC_SCHEMA_VERSION: u64 = 1;

/// Report fields that depend on wall-clock time, not on which streams ran.
/// [`diff_reports`] ignores them at any nesting depth; everything else must
/// match bit-for-bit between a sharded and a single-process run.
pub const TIMING_FIELDS: &[&str] = &["wall_clock_secs", "threads", "busy_secs", "shots_per_sec"];

/// Rebuilds a sweep's kernels deterministically on any machine: the
/// registered sweep name (see [`sweeps::NAMES`]) plus the engine knobs that
/// shape its points.  Pure data — two processes with the same generator
/// build byte-identical stream kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    /// The registered sweep name (`fig3`, …).
    pub sweep: String,
    /// Base RNG seed (`--seed`).
    pub seed: u64,
    /// Shots per point, or the shot ceiling in adaptive mode (`--samples`).
    pub samples: usize,
    /// Matching backend (`--matcher`).
    pub matcher: MatcherKind,
    /// Adaptive stopping target (`--target-rse`), if any.
    pub target_rse: Option<f64>,
}

impl Generator {
    /// Captures the generator of a planned sweep from parsed engine flags.
    pub fn from_args(sweep: &str, args: &EngineArgs) -> Self {
        Self {
            sweep: sweep.to_string(),
            seed: args.seed,
            samples: args.samples,
            matcher: args.matcher,
            target_rse: args.target_rse,
        }
    }

    /// The engine arguments the generator describes (per-process settings —
    /// threads, checkpoints, output — left at their defaults).
    pub fn engine_args(&self) -> EngineArgs {
        EngineArgs {
            samples: self.samples,
            seed: self.seed,
            json: false,
            matcher: self.matcher,
            threads: None,
            target_rse: self.target_rse,
            checkpoint: None,
            resume: false,
            report: None,
        }
    }

    /// Rebuilds the sweep's full point list.
    ///
    /// # Errors
    ///
    /// Returns an error for a sweep name not in [`sweeps::NAMES`].
    pub fn build_points(&self) -> Result<Vec<SweepPoint>, String> {
        sweeps::build(&self.sweep, &self.engine_args()).ok_or_else(|| {
            format!(
                "unknown sweep '{}' (known: {})",
                self.sweep,
                sweeps::NAMES.join(", ")
            )
        })
    }

    /// The generator as a JSON document.  The seed is written as a string:
    /// JSON numbers go through `f64`, which cannot hold every `u64`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("sweep".into(), JsonValue::String(self.sweep.clone())),
            ("seed".into(), JsonValue::String(self.seed.to_string())),
            ("samples".into(), JsonValue::Number(self.samples as f64)),
            (
                "matcher".into(),
                JsonValue::String(self.matcher.name().into()),
            ),
            (
                "target_rse".into(),
                self.target_rse.map_or(JsonValue::Null, JsonValue::Number),
            ),
        ])
    }

    /// Parses a generator from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let seed = value
            .get("seed")
            .and_then(JsonValue::as_str)
            .ok_or("generator missing seed")?;
        let matcher = value
            .get("matcher")
            .and_then(JsonValue::as_str)
            .ok_or("generator missing matcher")?;
        Ok(Self {
            sweep: value
                .get("sweep")
                .and_then(JsonValue::as_str)
                .ok_or("generator missing sweep")?
                .to_string(),
            seed: seed
                .parse()
                .map_err(|_| format!("generator seed '{seed}' is not a u64"))?,
            samples: value
                .get("samples")
                .and_then(JsonValue::as_usize)
                .ok_or("generator missing samples")?,
            matcher: MatcherKind::parse(matcher)
                .ok_or_else(|| format!("generator has unknown matcher '{matcher}'"))?,
            target_rse: value.get("target_rse").and_then(JsonValue::as_f64),
        })
    }
}

/// A planned distributed sweep: the [`Generator`] that rebuilds its kernels
/// and the [`ShardPlan`] that partitions its streams.  This is the
/// `job.json` artifact `q3de-sweepctl plan` writes and every worker and
/// merge step loads (or receives over TCP at claim time).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// How to rebuild the sweep's points.
    pub generator: Generator,
    /// The deterministic shard partition.
    pub plan: ShardPlan,
}

impl SweepJob {
    /// Plans a sweep: builds the generator's points and partitions their
    /// schedule into `num_shards`, continuing from `baselines` when the job
    /// extends committed tallies (see `q3de-sweepctl resume`).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown sweep name.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `baselines` has the wrong length.
    pub fn plan(
        generator: Generator,
        num_shards: usize,
        baselines: Option<&[(usize, usize)]>,
    ) -> Result<Self, String> {
        let points = generator.build_points()?;
        let config = generator.engine_args().sweep_config();
        let plan = ShardPlan::new(&config, &points, baselines, num_shards);
        Ok(Self { generator, plan })
    }

    /// Rebuilds the job's points and cross-checks them against the plan, so
    /// a worker whose binary builds a different grid (stale registry,
    /// different version) fails loudly instead of running wrong streams.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown sweep or any id mismatch.
    pub fn points(&self) -> Result<Vec<SweepPoint>, String> {
        let points = self.generator.build_points()?;
        if points.len() != self.plan.points.len() {
            return Err(format!(
                "sweep '{}' builds {} points but the plan has {}",
                self.generator.sweep,
                points.len(),
                self.plan.points.len()
            ));
        }
        for (point, planned) in points.iter().zip(&self.plan.points) {
            if point.id() != planned.id {
                return Err(format!(
                    "rebuilt point '{}' does not match planned '{}'",
                    point.id(),
                    planned.id
                ));
            }
        }
        Ok(points)
    }

    /// Stamps the generator metadata into a merged report — the same
    /// entries [`EngineArgs::run_sweep`] stamps, so a merged report is
    /// byte-identical to a single-process `--report` artifact.
    pub fn stamp_meta(&self, report: &mut SweepReport) {
        report.meta = vec![
            ("seed".into(), self.generator.seed.to_string()),
            ("samples".into(), self.generator.samples.to_string()),
            ("matcher".into(), self.generator.matcher.name().to_string()),
        ];
    }

    /// The job as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(FABRIC_SCHEMA_VERSION as f64),
            ),
            ("generator".into(), self.generator.to_json()),
            ("plan".into(), self.plan.to_json()),
        ])
    }

    /// Parses a job from its JSON document, rejecting unknown schema
    /// majors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        check_schema_version(value, FABRIC_SCHEMA_VERSION, "sweep job")?;
        Ok(Self {
            generator: Generator::from_json(
                value.get("generator").ok_or("job missing generator")?,
            )?,
            plan: ShardPlan::from_json(value.get("plan").ok_or("job missing plan")?)?,
        })
    }

    /// Writes the job atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), EngineError> {
        write_atomic(path, &format!("{}\n", self.to_json()))
    }

    /// Loads a job from `path`.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, EngineError> {
        let text = std::fs::read_to_string(path).map_err(|source| EngineError::Io {
            path: path.into(),
            source,
        })?;
        let value = JsonValue::parse(&text).map_err(|message| EngineError::Parse {
            path: path.into(),
            message,
        })?;
        Self::from_json(&value).map_err(|message| EngineError::Parse {
            path: path.into(),
            message,
        })
    }
}

/// Writes a delta set atomically to `path` (the body of a
/// `deltas-shardK.json` artifact).
///
/// # Errors
///
/// Returns an error when the file cannot be written.
pub fn save_deltas(path: &Path, deltas: &[TallyDelta]) -> Result<(), EngineError> {
    let doc = JsonValue::Object(vec![
        (
            "schema_version".into(),
            JsonValue::Number(FABRIC_SCHEMA_VERSION as f64),
        ),
        (
            "deltas".into(),
            JsonValue::Array(deltas.iter().map(TallyDelta::to_json).collect()),
        ),
    ]);
    write_atomic(path, &format!("{doc}\n"))
}

/// Loads a delta set from `path`.
///
/// # Errors
///
/// Returns an error when the file cannot be read or parsed, or carries an
/// unknown schema major.
pub fn load_deltas(path: &Path) -> Result<Vec<TallyDelta>, EngineError> {
    let parse_error = |message: String| EngineError::Parse {
        path: path.into(),
        message,
    };
    let text = std::fs::read_to_string(path).map_err(|source| EngineError::Io {
        path: path.into(),
        source,
    })?;
    let value = JsonValue::parse(&text).map_err(parse_error)?;
    check_schema_version(&value, FABRIC_SCHEMA_VERSION, "delta file").map_err(parse_error)?;
    value
        .get("deltas")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| parse_error("delta file missing deltas".into()))?
        .iter()
        .map(|d| TallyDelta::from_json(d).map_err(parse_error))
        .collect()
}

/// The file transport's [`DeltaSink`]: every committed delta is appended to
/// an in-memory set and the whole set rewritten atomically, so the delta
/// file doubles as the worker's shard checkpoint — a killed worker restarts
/// with `--resume` and loses at most its in-flight block.
///
/// There is no live coordinator behind a file, so [`FileSink::gate`] always
/// answers [`EpochGate::Run`]: an adaptive sweep's shards run their whole
/// schedule and the merge discards blocks past each stop boundary.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    deltas: Vec<TallyDelta>,
}

impl FileSink {
    /// A sink writing to `path`.  With `resume`, an existing file is loaded
    /// as the set of already-committed deltas; without it, a fresh sweep
    /// starts empty (any existing file is overwritten on the first delta).
    ///
    /// # Errors
    ///
    /// Returns an error when an existing file cannot be read or parsed.
    pub fn new(path: impl Into<PathBuf>, resume: bool) -> Result<Self, EngineError> {
        let path = path.into();
        let deltas = if resume && path.exists() {
            load_deltas(&path)?
        } else {
            Vec::new()
        };
        Ok(Self { path, deltas })
    }

    /// The deltas committed so far (pass to
    /// [`ShardWorker::run`](q3de::sim::engine::ShardWorker::run) as
    /// `completed` when resuming).
    pub fn deltas(&self) -> &[TallyDelta] {
        &self.deltas
    }
}

impl DeltaSink for FileSink {
    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
        // Resubmitted checkpoint deltas are exact duplicates: count once,
        // skip the rewrite.
        if self.deltas.contains(&delta) {
            return Ok(());
        }
        self.deltas.push(delta);
        save_deltas(&self.path, &self.deltas)
    }

    fn gate(&mut self, _point: usize, _epoch: usize) -> Result<EpochGate, EngineError> {
        Ok(EpochGate::Run)
    }
}

/// Hard ceiling on one TCP frame's payload (a frame carries one JSON
/// message; the largest legitimate one is a job document).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed frame: a `u32` big-endian payload length
/// followed by the message's JSON text.
///
/// # Errors
///
/// Returns an error when the payload exceeds [`MAX_FRAME`] or the write
/// fails.
pub fn send_frame(stream: &mut impl Write, message: &JsonValue) -> io::Result<()> {
    let payload = message.to_string();
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME} limit",
                payload.len()
            ),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Reads one length-prefixed frame.  Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns an error on a truncated frame, an oversized length prefix, or
/// an unparseable payload.
pub fn recv_frame(stream: &mut impl Read) -> io::Result<Option<JsonValue>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match stream.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
}

/// A one-field JSON object `{"type": t}`, the skeleton of every protocol
/// message.
fn message(t: &str) -> Vec<(String, JsonValue)> {
    vec![("type".into(), JsonValue::String(t.into()))]
}

fn transport_error(addr: &str, source: io::Error) -> EngineError {
    EngineError::Io {
        path: PathBuf::from(addr),
        source,
    }
}

fn protocol_error(addr: &str, message: impl Into<String>) -> EngineError {
    transport_error(
        addr,
        io::Error::new(io::ErrorKind::InvalidData, message.into()),
    )
}

/// The TCP transport's [`DeltaSink`]: one connection to a [`serve`]
/// coordinator, speaking request/reply frames.  Unlike the file transport
/// it has live gating, so adaptive sweeps stop early exactly like a
/// single-process run.
///
/// Message types (worker → coordinator, each answered with one frame):
/// `claim` (assigns a shard, returning the job and the shard's committed
/// deltas), `delta`, `gate`, `done`.
#[derive(Debug)]
pub struct RemoteSink {
    stream: TcpStream,
    addr: String,
}

impl RemoteSink {
    /// Connects to a `q3de-sweepctl serve` coordinator.
    ///
    /// # Errors
    ///
    /// Returns an error when the connection fails.
    pub fn connect(addr: &str) -> Result<Self, EngineError> {
        let stream = TcpStream::connect(addr).map_err(|e| transport_error(addr, e))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            addr: addr.to_string(),
        })
    }

    fn roundtrip(&mut self, request: JsonValue) -> Result<JsonValue, EngineError> {
        send_frame(&mut self.stream, &request).map_err(|e| transport_error(&self.addr, e))?;
        recv_frame(&mut self.stream)
            .map_err(|e| transport_error(&self.addr, e))?
            .ok_or_else(|| protocol_error(&self.addr, "coordinator closed the connection"))
    }

    /// Claims a shard.  Returns `None` when the coordinator has no shard
    /// left to hand out (all claimed or finished), otherwise the shard
    /// index, the job to run and the deltas this shard already committed
    /// (resubmitted instead of re-run after a worker was killed).
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a malformed reply.
    pub fn claim(&mut self) -> Result<Option<(usize, SweepJob, Vec<TallyDelta>)>, EngineError> {
        let reply = self.roundtrip(JsonValue::Object(message("claim")))?;
        match reply.get("type").and_then(JsonValue::as_str) {
            Some("assign") => {}
            Some("drained") => return Ok(None),
            other => {
                return Err(protocol_error(
                    &self.addr,
                    format!("unexpected claim reply {other:?}"),
                ))
            }
        }
        let shard = reply
            .get("shard")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| protocol_error(&self.addr, "assign frame missing shard"))?;
        let job = reply
            .get("job")
            .ok_or_else(|| protocol_error(&self.addr, "assign frame missing job"))
            .and_then(|j| SweepJob::from_json(j).map_err(|m| protocol_error(&self.addr, m)))?;
        let completed = reply
            .get("completed")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| protocol_error(&self.addr, "assign frame missing completed"))?
            .iter()
            .map(|d| TallyDelta::from_json(d).map_err(|m| protocol_error(&self.addr, m)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Some((shard, job, completed)))
    }

    /// Reports the claimed shard finished, so the coordinator keeps the
    /// claim instead of releasing it when the connection closes.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure.
    pub fn finish(&mut self) -> Result<(), EngineError> {
        let reply = self.roundtrip(JsonValue::Object(message("done")))?;
        match reply.get("type").and_then(JsonValue::as_str) {
            Some("ok") => Ok(()),
            other => Err(protocol_error(
                &self.addr,
                format!("unexpected done reply {other:?}"),
            )),
        }
    }
}

impl DeltaSink for RemoteSink {
    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
        let mut fields = message("delta");
        fields.push(("delta".into(), delta.to_json()));
        let reply = self.roundtrip(JsonValue::Object(fields))?;
        match reply.get("type").and_then(JsonValue::as_str) {
            Some("ok") => Ok(()),
            Some("refused") => Err(EngineError::CheckpointMismatch {
                reason: reply
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("delta refused")
                    .to_string(),
            }),
            other => Err(protocol_error(
                &self.addr,
                format!("unexpected delta reply {other:?}"),
            )),
        }
    }

    fn gate(&mut self, point: usize, epoch: usize) -> Result<EpochGate, EngineError> {
        let mut fields = message("gate");
        fields.push(("point".into(), JsonValue::Number(point as f64)));
        fields.push(("epoch".into(), JsonValue::Number(epoch as f64)));
        let reply = self.roundtrip(JsonValue::Object(fields))?;
        match reply.get("gate").and_then(JsonValue::as_str) {
            Some("run") => Ok(EpochGate::Run),
            Some("wait") => Ok(EpochGate::Wait),
            Some("skip") => Ok(EpochGate::Skip),
            other => Err(protocol_error(
                &self.addr,
                format!("unexpected gate reply {other:?}"),
            )),
        }
    }

    fn wait_for_progress(&mut self) -> Result<(), EngineError> {
        // Another shard must commit a block before our gates can change;
        // a short poll interval keeps the protocol request/reply-only.
        std::thread::sleep(std::time::Duration::from_millis(25));
        Ok(())
    }
}

/// The live coordinator's shared state: the engine merge plus the shard
/// claim table the TCP handlers operate on.
struct ServeState {
    coordinator: Coordinator,
    /// Shards currently held by a connected worker.
    claimed: Vec<bool>,
    /// Shards whose worker reported `done` (never handed out again).
    done: Vec<bool>,
    /// Accepted deltas per shard, replayed to a worker that re-claims the
    /// shard after its predecessor died.
    committed: Vec<Vec<TallyDelta>>,
    /// First checkpoint-write failure, surfaced after the sweep.
    checkpoint_error: Option<EngineError>,
}

/// Runs the TCP coordinator of a sweep to completion: accepts workers,
/// hands out shards, folds their deltas through the engine's
/// [`Coordinator`] (gating adaptively at block boundaries) and returns the
/// merged report with the job's metadata stamped in.
///
/// A worker that disconnects without sending `done` has its shard released
/// for the next `claim`, along with the deltas it already committed — so a
/// killed worker costs at most its in-flight block.  With `checkpoint`,
/// the committed tallies are persisted after every merge step in the same
/// format a single-process sweep writes.
///
/// # Errors
///
/// Returns an error when accepting fails, a checkpoint cannot be written,
/// or the final report is incomplete.
///
/// # Panics
///
/// Panics if a connection-handler thread panics.
pub fn serve(
    listener: &TcpListener,
    job: &SweepJob,
    checkpoint: Option<&Path>,
) -> Result<SweepReport, EngineError> {
    let num_shards = job.plan.num_shards;
    let state = Mutex::new(ServeState {
        coordinator: Coordinator::new(job.plan.clone()),
        claimed: vec![false; num_shards],
        done: vec![false; num_shards],
        committed: vec![Vec::new(); num_shards],
        checkpoint_error: None,
    });
    let wake_addr = listener
        .local_addr()
        .map_err(|e| transport_error("listener", e))?;

    // Persist the starting state up front: an unwritable checkpoint path
    // fails before any worker runs a shot.
    if let Some(path) = checkpoint {
        let locked = state.lock().expect("serve lock poisoned");
        locked.coordinator.checkpoint().save(path)?;
    }

    let start = Instant::now();
    std::thread::scope(|scope| -> Result<(), EngineError> {
        loop {
            {
                let locked = state.lock().expect("serve lock poisoned");
                if locked.coordinator.all_finished() {
                    return Ok(());
                }
            }
            let (stream, _) = listener
                .accept()
                .map_err(|e| transport_error("listener", e))?;
            let state = &state;
            scope.spawn(move || serve_connection(stream, job, state, checkpoint, wake_addr));
        }
    })?;
    let wall_clock_secs = start.elapsed().as_secs_f64();

    let state = state.into_inner().expect("serve lock poisoned");
    if let Some(error) = state.checkpoint_error {
        return Err(error);
    }
    let mut report = state.coordinator.report(wall_clock_secs, num_shards)?;
    job.stamp_meta(&mut report);
    Ok(report)
}

/// Serves one worker connection until it closes.  Transport errors drop
/// the connection (the worker sees them on its side); a connection that
/// ends without `done` releases its claimed shard for takeover.
fn serve_connection(
    mut stream: TcpStream,
    job: &SweepJob,
    state: &Mutex<ServeState>,
    checkpoint: Option<&Path>,
    wake_addr: std::net::SocketAddr,
) {
    stream.set_nodelay(true).ok();
    let mut claimed_shard: Option<usize> = None;
    let mut finished_cleanly = false;
    while let Ok(Some(request)) = recv_frame(&mut stream) {
        let reply = match request.get("type").and_then(JsonValue::as_str) {
            Some("claim") => {
                let mut locked = state.lock().expect("serve lock poisoned");
                let free =
                    (0..locked.claimed.len()).find(|&k| !locked.claimed[k] && !locked.done[k]);
                match free {
                    Some(shard) if claimed_shard.is_none() => {
                        locked.claimed[shard] = true;
                        claimed_shard = Some(shard);
                        let mut fields = message("assign");
                        fields.push(("shard".into(), JsonValue::Number(shard as f64)));
                        fields.push(("job".into(), job.to_json()));
                        fields.push((
                            "completed".into(),
                            JsonValue::Array(
                                locked.committed[shard]
                                    .iter()
                                    .map(TallyDelta::to_json)
                                    .collect(),
                            ),
                        ));
                        JsonValue::Object(fields)
                    }
                    _ => JsonValue::Object(message("drained")),
                }
            }
            Some("delta") => {
                let delta = request
                    .get("delta")
                    .ok_or_else(|| "delta frame missing delta".to_string())
                    .and_then(TallyDelta::from_json);
                match delta {
                    Ok(delta) => {
                        let mut locked = state.lock().expect("serve lock poisoned");
                        match locked.coordinator.submit(&delta) {
                            Ok(_) => {
                                let shard = delta.shard;
                                if !locked.committed[shard].contains(&delta) {
                                    locked.committed[shard].push(delta);
                                }
                                if let Some(path) = checkpoint {
                                    if locked.checkpoint_error.is_none() {
                                        if let Err(error) =
                                            locked.coordinator.checkpoint().save(path)
                                        {
                                            locked.checkpoint_error = Some(error);
                                        }
                                    }
                                }
                                if locked.coordinator.all_finished() {
                                    // Wake the accept loop so it notices.
                                    drop(locked);
                                    drop(TcpStream::connect(wake_addr));
                                }
                                JsonValue::Object(message("ok"))
                            }
                            Err(error) => {
                                let mut fields = message("refused");
                                fields
                                    .push(("message".into(), JsonValue::String(error.to_string())));
                                JsonValue::Object(fields)
                            }
                        }
                    }
                    Err(error) => {
                        let mut fields = message("refused");
                        fields.push(("message".into(), JsonValue::String(error)));
                        JsonValue::Object(fields)
                    }
                }
            }
            Some("gate") => {
                let point = request.get("point").and_then(JsonValue::as_usize);
                let epoch = request.get("epoch").and_then(JsonValue::as_usize);
                match (point, epoch) {
                    (Some(point), Some(epoch)) if point < job.plan.points.len() => {
                        let locked = state.lock().expect("serve lock poisoned");
                        let gate = match locked.coordinator.gate(point, epoch) {
                            EpochGate::Run => "run",
                            EpochGate::Wait => "wait",
                            EpochGate::Skip => "skip",
                        };
                        let mut fields = message("gate");
                        fields.push(("gate".into(), JsonValue::String(gate.into())));
                        JsonValue::Object(fields)
                    }
                    _ => JsonValue::Object(message("drained")),
                }
            }
            Some("done") => {
                if let Some(shard) = claimed_shard {
                    state.lock().expect("serve lock poisoned").done[shard] = true;
                }
                finished_cleanly = true;
                JsonValue::Object(message("ok"))
            }
            _ => JsonValue::Object(message("drained")),
        };
        if send_frame(&mut stream, &reply).is_err() {
            break;
        }
    }
    if let Some(shard) = claimed_shard {
        if !finished_cleanly {
            state.lock().expect("serve lock poisoned").claimed[shard] = false;
        }
    }
}

/// Compares two report documents field by field, ignoring the
/// [`TIMING_FIELDS`] at any depth.  Returns a human-readable line per
/// difference; an empty result means the reports are bit-identical modulo
/// timing — the fabric's acceptance check (`q3de-sweepctl diff`).
pub fn diff_reports(a: &JsonValue, b: &JsonValue) -> Vec<String> {
    let mut differences = Vec::new();
    diff_value("report", a, b, &mut differences);
    differences
}

fn diff_value(path: &str, a: &JsonValue, b: &JsonValue, out: &mut Vec<String>) {
    match (a, b) {
        (JsonValue::Object(fa), JsonValue::Object(fb)) => {
            let keys: Vec<&str> = fa
                .iter()
                .map(|(k, _)| k.as_str())
                .chain(
                    fb.iter()
                        .filter(|(k, _)| a.get(k).is_none())
                        .map(|(k, _)| k.as_str()),
                )
                .collect();
            for key in keys {
                if TIMING_FIELDS.contains(&key) {
                    continue;
                }
                let child = format!("{path}.{key}");
                match (a.get(key), b.get(key)) {
                    (Some(va), Some(vb)) => diff_value(&child, va, vb, out),
                    (Some(_), None) => out.push(format!("{child}: missing on the right")),
                    (None, _) => out.push(format!("{child}: missing on the left")),
                }
            }
        }
        (JsonValue::Array(ia), JsonValue::Array(ib)) => {
            if ia.len() != ib.len() {
                out.push(format!(
                    "{path}: {} elements vs {} elements",
                    ia.len(),
                    ib.len()
                ));
                return;
            }
            for (i, (va, vb)) in ia.iter().zip(ib).enumerate() {
                diff_value(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: {a} vs {b}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de::sim::engine::ShardWorker;

    fn generator() -> Generator {
        Generator {
            sweep: "fig3".into(),
            seed: 7,
            samples: 96,
            matcher: MatcherKind::Greedy,
            target_rse: None,
        }
    }

    #[test]
    fn job_json_round_trips() {
        let job = SweepJob::plan(generator(), 3, None).unwrap();
        let parsed = SweepJob::from_json(&job.to_json()).unwrap();
        assert_eq!(parsed, job);
        assert_eq!(parsed.plan.fingerprint(), job.plan.fingerprint());
        let points = parsed.points().unwrap();
        assert_eq!(points.len(), job.plan.points.len());
    }

    #[test]
    fn unknown_sweeps_and_schemas_are_refused() {
        let bad = Generator {
            sweep: "fig99".into(),
            ..generator()
        };
        assert!(bad.build_points().is_err());
        let job = SweepJob::plan(generator(), 2, None).unwrap();
        let mut doc = job.to_json();
        if let JsonValue::Object(fields) = &mut doc {
            fields[0].1 = JsonValue::Number(99.0);
        }
        let err = SweepJob::from_json(&doc).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn delta_files_round_trip_and_file_sink_resumes() {
        let dir = std::env::temp_dir().join(format!("q3de-fabric-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.json");
        let delta = TallyDelta {
            plan_fingerprint: "fp".into(),
            shard: 0,
            point: 0,
            point_id: "a".into(),
            epoch: 0,
            shots: 64,
            failures: 2,
            busy_secs: 0.25,
        };
        let mut sink = FileSink::new(&path, false).unwrap();
        sink.submit(delta.clone()).unwrap();
        sink.submit(delta.clone()).unwrap();
        assert_eq!(sink.deltas().len(), 1, "duplicates are counted once");
        assert_eq!(load_deltas(&path).unwrap(), vec![delta.clone()]);

        let resumed = FileSink::new(&path, true).unwrap();
        assert_eq!(resumed.deltas(), &[delta]);
        let fresh = FileSink::new(&path, false).unwrap();
        assert!(fresh.deltas().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let value = JsonValue::Object(vec![("type".into(), JsonValue::String("claim".into()))]);
        let mut buffer = Vec::new();
        send_frame(&mut buffer, &value).unwrap();
        send_frame(&mut buffer, &JsonValue::Number(7.0)).unwrap();
        let mut reader = io::Cursor::new(buffer);
        assert_eq!(recv_frame(&mut reader).unwrap(), Some(value));
        assert_eq!(
            recv_frame(&mut reader).unwrap(),
            Some(JsonValue::Number(7.0))
        );
        assert_eq!(recv_frame(&mut reader).unwrap(), None, "clean EOF");

        let mut truncated = io::Cursor::new(vec![0, 0, 0, 9, b'{']);
        assert!(recv_frame(&mut truncated).is_err());
        let mut oversized = io::Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        assert!(recv_frame(&mut oversized).is_err());
    }

    #[test]
    fn diff_ignores_timing_but_not_tallies() {
        let report = |wall: f64, failures: usize| {
            JsonValue::Object(vec![
                ("wall_clock_secs".into(), JsonValue::Number(wall)),
                (
                    "points".into(),
                    JsonValue::Array(vec![JsonValue::Object(vec![
                        ("failures".into(), JsonValue::Number(failures as f64)),
                        ("busy_secs".into(), JsonValue::Number(wall * 2.0)),
                    ])]),
                ),
            ])
        };
        assert!(diff_reports(&report(1.0, 5), &report(9.0, 5)).is_empty());
        let differences = diff_reports(&report(1.0, 5), &report(1.0, 6));
        assert_eq!(differences.len(), 1);
        assert!(
            differences[0].contains("points[0].failures"),
            "{differences:?}"
        );
    }

    /// A cheap toy job: real plan and protocol, closure kernels instead of
    /// decoder simulations (the registry kernels are exercised by the
    /// `engine_shards` integration tests and the CI shard-smoke job).
    fn toy_job(num_shards: usize) -> (SweepJob, Vec<SweepPoint>) {
        let points = vec![
            SweepPoint::new("a", |s: u64| s.is_multiple_of(7)),
            SweepPoint::new("b", |s: u64| s.is_multiple_of(3)),
        ];
        let config = q3de::sim::engine::SweepConfig::fixed(300);
        let plan = ShardPlan::new(&config, &points, None, num_shards);
        (
            SweepJob {
                generator: generator(),
                plan,
            },
            points,
        )
    }

    #[test]
    fn tcp_sweep_matches_the_in_process_merge() {
        let (job, points) = toy_job(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve(&listener, &job, None).unwrap());
            for _ in 0..2 {
                let addr = addr.clone();
                let points = &points;
                let job = &job;
                scope.spawn(move || {
                    let mut sink = RemoteSink::connect(&addr).unwrap();
                    let (shard, remote_job, completed) = sink.claim().unwrap().expect("shard free");
                    assert_eq!(remote_job.plan.fingerprint(), job.plan.fingerprint());
                    ShardWorker::new(&job.plan, shard)
                        .run(points, &completed, &mut sink, |_| {})
                        .unwrap();
                    sink.finish().unwrap();
                });
            }
            let report = server.join().unwrap();

            // The merged tallies equal a local coordinator fold of the same
            // plan run through in-process workers.
            let mut coordinator = Coordinator::new(job.plan.clone());
            for shard in 0..job.plan.num_shards {
                let mut deltas = Vec::new();
                struct Collect<'a>(&'a mut Vec<TallyDelta>);
                impl DeltaSink for Collect<'_> {
                    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
                        self.0.push(delta);
                        Ok(())
                    }
                    fn gate(&mut self, _: usize, _: usize) -> Result<EpochGate, EngineError> {
                        Ok(EpochGate::Run)
                    }
                }
                ShardWorker::new(&job.plan, shard)
                    .run(&points, &[], &mut Collect(&mut deltas), |_| {})
                    .unwrap();
                coordinator.submit_all(&deltas).unwrap();
            }
            let mut local = coordinator.report(0.0, 2).unwrap();
            job.stamp_meta(&mut local);
            let differences = diff_reports(&report.to_json(), &local.to_json());
            assert!(differences.is_empty(), "{differences:?}");
        });
    }
}
