//! Shared helpers for the Q3DE benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (which prints the rows/series the paper reports) and
//! a Criterion bench in `benches/` (which measures the runtime of the
//! underlying kernel at a reduced scale).  See `EXPERIMENTS.md` at the
//! workspace root for the mapping and recorded results.

#![deny(missing_docs)]

use q3de::matching::MatcherKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Command-line arguments shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Monte-Carlo shots (or trials) per data point.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit machine-readable JSON lines in addition to the human table.
    pub json: bool,
    /// Matching backend the decoding binaries run
    /// (`--matcher exact|greedy|union-find`).
    pub matcher: MatcherKind,
}

impl ExperimentArgs {
    /// Parses `--samples N`, `--seed N`, `--json` and `--matcher NAME` from
    /// `std::env::args`, with the given default sample count.
    pub fn parse(default_samples: usize) -> Self {
        let mut samples = default_samples;
        let mut seed = 2022;
        let mut json = false;
        let mut matcher = MatcherKind::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--samples" if i + 1 < args.len() => {
                    samples = args[i + 1].parse().unwrap_or(default_samples);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    seed = args[i + 1].parse().unwrap_or(2022);
                    i += 1;
                }
                "--matcher" if i + 1 < args.len() => {
                    matcher = MatcherKind::parse(&args[i + 1]).unwrap_or_else(|| {
                        eprintln!(
                            "unknown matcher '{}', expected exact|greedy|union-find; using exact",
                            args[i + 1]
                        );
                        MatcherKind::Exact
                    });
                    i += 1;
                }
                "--json" => json = true,
                _ => {}
            }
            i += 1;
        }
        Self {
            samples,
            seed,
            json,
            matcher,
        }
    }

    /// A reproducible RNG derived from the seed and a per-series salt.
    pub fn rng(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.stream_seed(salt))
    }

    /// The raw `u64` stream seed behind [`ExperimentArgs::rng`], for APIs
    /// (like [`q3de::sim::MemoryExperiment::estimate_parallel`]) that derive
    /// per-shot RNGs themselves.
    pub fn stream_seed(&self, salt: u64) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt)
    }
}

/// Prints a table row of `(label, values)` with aligned columns.
pub fn print_row(label: &str, values: &[String]) {
    println!("{label:<28} {}", values.join("  "));
}

/// Formats a probability in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:10.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_used_without_cli_flags() {
        let args = ExperimentArgs {
            samples: 100,
            seed: 1,
            json: false,
            matcher: MatcherKind::Exact,
        };
        let mut a = args.rng(0);
        let mut b = args.rng(0);
        use rand::Rng;
        assert_eq!(
            a.gen::<u64>(),
            b.gen::<u64>(),
            "same salt gives the same stream"
        );
        let mut c = args.rng(1);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn sci_formats_scientifically() {
        assert!(sci(1.234e-5).contains("e-5"));
    }
}
