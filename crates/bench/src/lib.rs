//! Shared helpers for the Q3DE benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (which prints the rows/series the paper reports) and
//! a Criterion bench in `benches/` (which measures the runtime of the
//! underlying kernel at a reduced scale).  See `EXPERIMENTS.md` at the
//! workspace root for the mapping and recorded results.
//!
//! The Monte-Carlo figure binaries (`fig3`, `fig8`, `fig_system`,
//! `perf_smoke`) run on the shared sweep engine
//! ([`q3de::sim::engine::SweepRunner`]) and therefore understand a common
//! flag set: `--samples`, `--seed`, `--matcher`, `--json`, `--target-rse`,
//! `--checkpoint`, `--resume` and `--report`.

#![deny(missing_docs)]

use q3de::matching::MatcherKind;
use q3de::sim::engine::{SweepConfig, SweepPoint, SweepReport, SweepRunner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Command-line arguments shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Monte-Carlo shots (or trials) per data point.  With `--target-rse`
    /// this becomes the per-point shot *ceiling* of the adaptive schedule.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit machine-readable JSON lines on stdout; all human-readable
    /// tables and progress move to stderr so piped JSON stays parseable.
    pub json: bool,
    /// Matching backend the decoding binaries run
    /// (`--matcher exact|greedy|union-find|blossom`).
    pub matcher: MatcherKind,
    /// Adaptive stopping target (`--target-rse 0.1`): stop a sweep point
    /// once the relative Wilson half-width of its tally reaches this value.
    /// `None` keeps the classic fixed-shot behaviour.
    pub target_rse: Option<f64>,
    /// Sweep checkpoint file (`--checkpoint PATH`): partial tallies are
    /// persisted there so a killed sweep can be resumed.
    pub checkpoint: Option<String>,
    /// Resume from the checkpoint file if it exists (`--resume`).
    pub resume: bool,
    /// Write the machine-readable sweep report (`--report PATH`), the
    /// `bench_report.json` artifact CI tracks.
    pub report: Option<String>,
}

impl ExperimentArgs {
    /// Parses `--samples N`, `--seed N`, `--json`, `--matcher NAME`,
    /// `--target-rse X`, `--checkpoint PATH`, `--resume` and
    /// `--report PATH` from `std::env::args`, with the given default sample
    /// count.  Unknown flags are ignored so binaries can layer their own.
    pub fn parse(default_samples: usize) -> Self {
        let mut samples = default_samples;
        let mut seed = 2022;
        let mut json = false;
        let mut matcher = MatcherKind::default();
        let mut target_rse = None;
        let mut checkpoint = None;
        let mut resume = false;
        let mut report = None;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--samples" if i + 1 < args.len() => {
                    samples = args[i + 1].parse().unwrap_or(default_samples);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    seed = args[i + 1].parse().unwrap_or(2022);
                    i += 1;
                }
                "--matcher" if i + 1 < args.len() => {
                    matcher = MatcherKind::parse(&args[i + 1]).unwrap_or_else(|| {
                        eprintln!(
                            "unknown matcher '{}', expected exact|greedy|union-find|blossom; using exact",
                            args[i + 1]
                        );
                        MatcherKind::Exact
                    });
                    i += 1;
                }
                "--target-rse" if i + 1 < args.len() => {
                    match args[i + 1].parse::<f64>() {
                        Ok(rse) if rse > 0.0 => target_rse = Some(rse),
                        _ => eprintln!(
                            "invalid --target-rse '{}', expected a positive number; \
                             staying in fixed-shot mode",
                            args[i + 1]
                        ),
                    }
                    i += 1;
                }
                "--checkpoint" if i + 1 < args.len() => {
                    checkpoint = Some(args[i + 1].clone());
                    i += 1;
                }
                "--report" if i + 1 < args.len() => {
                    report = Some(args[i + 1].clone());
                    i += 1;
                }
                "--resume" => resume = true,
                "--json" => json = true,
                _ => {}
            }
            i += 1;
        }
        Self {
            samples,
            seed,
            json,
            matcher,
            target_rse,
            checkpoint,
            resume,
            report,
        }
    }

    /// A reproducible RNG derived from the seed and a per-series salt.
    pub fn rng(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.stream_seed(salt))
    }

    /// The raw `u64` stream seed behind [`ExperimentArgs::rng`], for APIs
    /// (like [`q3de::sim::MemoryExperiment::estimate_parallel`] and the
    /// sweep engine's shot kernels) that derive per-shot RNGs themselves.
    pub fn stream_seed(&self, salt: u64) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt)
    }

    /// The sweep-engine configuration these flags describe: fixed
    /// `samples`-shot mode without `--target-rse`, adaptive mode (shot
    /// floor [`adaptive_floor`]`(samples)`, ceiling `samples`) with it,
    /// plus the checkpoint/resume settings.
    pub fn sweep_config(&self) -> SweepConfig {
        let mut config = match self.target_rse {
            None => SweepConfig::fixed(self.samples),
            Some(rse) => SweepConfig::adaptive(adaptive_floor(self.samples), self.samples, rse),
        };
        if let Some(path) = &self.checkpoint {
            config = config.with_checkpoint(path).with_resume(self.resume);
        }
        config
    }

    /// Runs `points` on the sweep engine under [`ExperimentArgs::sweep_config`],
    /// stamps the seed/sample metadata into the report, and writes the
    /// `--report` artifact if requested.  Engine errors (unreadable or
    /// mismatched checkpoints, unwritable reports) terminate the binary
    /// with exit code 2.
    pub fn run_sweep(&self, points: Vec<SweepPoint>) -> SweepReport {
        let runner = SweepRunner::new(self.sweep_config());
        let mut report = match runner.run(points) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("sweep failed: {error}");
                std::process::exit(2);
            }
        };
        report.meta = vec![
            ("seed".into(), self.seed.to_string()),
            ("samples".into(), self.samples.to_string()),
            ("matcher".into(), self.matcher.name().to_string()),
        ];
        if let Some(path) = &self.report {
            if let Err(error) = report.write_json(std::path::Path::new(path)) {
                eprintln!("cannot write report: {error}");
                std::process::exit(2);
            }
        }
        report
    }

    /// Prints a human-readable line: to stdout normally, to stderr in
    /// `--json` mode so machine-readable stdout stays parseable.
    pub fn human(&self, line: impl AsRef<str>) {
        if self.json {
            eprintln!("{}", line.as_ref());
        } else {
            println!("{}", line.as_ref());
        }
    }

    /// Prints an aligned human-readable table row (see [`print_row`]),
    /// routed like [`ExperimentArgs::human`].
    pub fn human_row(&self, label: &str, values: &[String]) {
        self.human(format_row(label, values));
    }
}

/// The adaptive-mode shot floor derived from a `--samples` ceiling: an
/// eighth of the budget, at least 32 shots, never above the ceiling.
pub fn adaptive_floor(samples: usize) -> usize {
    (samples / 8).max(32).min(samples.max(1))
}

/// Formats a table row of `(label, values)` with aligned columns.
pub fn format_row(label: &str, values: &[String]) -> String {
    format!("{label:<28} {}", values.join("  "))
}

/// Prints a table row of `(label, values)` with aligned columns to stdout.
pub fn print_row(label: &str, values: &[String]) {
    println!("{}", format_row(label, values));
}

/// Formats a probability in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:10.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args() -> ExperimentArgs {
        ExperimentArgs {
            samples: 100,
            seed: 1,
            json: false,
            matcher: MatcherKind::Exact,
            target_rse: None,
            checkpoint: None,
            resume: false,
            report: None,
        }
    }

    #[test]
    fn default_args_are_used_without_cli_flags() {
        let args = args();
        let mut a = args.rng(0);
        let mut b = args.rng(0);
        use rand::Rng;
        assert_eq!(
            a.gen::<u64>(),
            b.gen::<u64>(),
            "same salt gives the same stream"
        );
        let mut c = args.rng(1);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn sci_formats_scientifically() {
        assert!(sci(1.234e-5).contains("e-5"));
    }

    #[test]
    fn sweep_config_reflects_the_mode() {
        let fixed = args().sweep_config();
        assert_eq!(fixed.shot_floor, 64);
        assert_eq!(fixed.shot_ceiling, 100);
        assert_eq!(fixed.target_rse, None);

        let mut adaptive_args = args();
        adaptive_args.samples = 4000;
        adaptive_args.target_rse = Some(0.1);
        adaptive_args.checkpoint = Some("cp.json".into());
        adaptive_args.resume = true;
        let adaptive = adaptive_args.sweep_config();
        assert_eq!(adaptive.shot_floor, 500);
        assert_eq!(adaptive.shot_ceiling, 4000);
        assert_eq!(adaptive.target_rse, Some(0.1));
        assert!(adaptive.resume);
        assert_eq!(
            adaptive.checkpoint.as_deref(),
            Some(std::path::Path::new("cp.json"))
        );
    }

    #[test]
    fn adaptive_floor_respects_bounds() {
        assert_eq!(adaptive_floor(4000), 500);
        assert_eq!(adaptive_floor(100), 32);
        assert_eq!(adaptive_floor(10), 10);
        assert_eq!(adaptive_floor(0), 1);
    }
}
