//! Shared helpers for the Q3DE benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (which prints the rows/series the paper reports) and
//! a Criterion bench in `benches/` (which measures the runtime of the
//! underlying kernel at a reduced scale).  See `EXPERIMENTS.md` at the
//! workspace root for the mapping and recorded results.
//!
//! All experiment binaries share one command-line front end (the [`cli`]
//! module): the engine flag set — `--samples`, `--seed`, `--matcher`,
//! `--threads`, `--json`, `--target-rse`, `--checkpoint`, `--resume`,
//! `--report` — parses into one [`EngineArgs`] struct, and `--help` output
//! is generated, so it is identical everywhere.

#![deny(missing_docs)]

pub mod cli;
pub mod fabric;
pub mod sweeps;

pub use cli::{Cli, EngineArgs, ExtraValues};

/// The adaptive-mode shot floor derived from a `--samples` ceiling: an
/// eighth of the budget, at least 32 shots, never above the ceiling.
pub fn adaptive_floor(samples: usize) -> usize {
    (samples / 8).max(32).min(samples.max(1))
}

/// Formats a table row of `(label, values)` with aligned columns.
pub fn format_row(label: &str, values: &[String]) -> String {
    format!("{label:<28} {}", values.join("  "))
}

/// Prints a table row of `(label, values)` with aligned columns to stdout.
pub fn print_row(label: &str, values: &[String]) {
    println!("{}", format_row(label, values));
}

/// Formats a probability in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:10.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_scientifically() {
        assert!(sci(1.234e-5).contains("e-5"));
    }

    #[test]
    fn adaptive_floor_respects_bounds() {
        assert_eq!(adaptive_floor(4000), 500);
        assert_eq!(adaptive_floor(100), 32);
        assert_eq!(adaptive_floor(10), 10);
        assert_eq!(adaptive_floor(0), 1);
    }
}
