//! Criterion bench for the Fig. 3 kernel: one memory-experiment shot with and
//! without an injected MBBE.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_memory_shot");
    group.sample_size(10);
    for (name, anomaly, strategy) in [
        ("d7_mbbe_free", None, DecodingStrategy::MbbeFree),
        (
            "d7_with_mbbe",
            Some(AnomalyInjection::centered(4, 0.5)),
            DecodingStrategy::Blind,
        ),
    ] {
        let mut config = MemoryExperimentConfig::new(7, 1e-2);
        if let Some(a) = anomaly {
            config = config.with_anomaly(a);
        }
        let experiment = MemoryExperiment::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        group.bench_function(name, |b| {
            b.iter(|| experiment.run_shot(strategy, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
