//! Criterion bench for the Table III kernel: evaluating the memory-overhead
//! model over a range of distances and windows.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::scaling::MemoryOverheadModel;

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_memory_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for d in (11..=41).step_by(2) {
                for window in (50..=500).step_by(50) {
                    total += MemoryOverheadModel::new(d, window).total_bits();
                }
            }
            total
        })
    });
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
