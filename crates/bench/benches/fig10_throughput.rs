//! Criterion bench for the Fig. 10 kernel: a reduced throughput simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::control::{ArchitectureMode, ThroughputConfig, ThroughputSimulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_throughput_sim");
    group.sample_size(10);
    for (name, mode) in [
        ("mbbe_free", ArchitectureMode::MbbeFree),
        ("baseline", ArchitectureMode::Baseline),
        ("q3de", ArchitectureMode::Q3de),
    ] {
        let config = ThroughputConfig {
            plane_size: 7,
            code_distance: 5,
            num_instructions: 100,
            mbbe_probability_per_block_per_d_cycles: 1e-4,
            mbbe_duration_d_cycles: 100,
            mode,
            max_cycles: 100_000,
        };
        let simulator = ThroughputSimulator::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        group.bench_function(name, |b| {
            b.iter(|| simulator.run(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
