//! Criterion bench for the Fig. 7 kernel: one anomaly-detection trial.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::sim::{DetectionExperiment, DetectionExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_detection_trial");
    group.sample_size(10);
    let mut config = DetectionExperimentConfig::fig7(100.0);
    config.distance = 11;
    config.onset_cycle = 200;
    config.post_onset_cycles = 600;
    let experiment = DetectionExperiment::new(config).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    group.bench_function("window_100", |b| {
        b.iter(|| experiment.run_trial(100, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
