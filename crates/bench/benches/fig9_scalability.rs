//! Criterion bench for the Fig. 9 kernel: one full area/density sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::scaling::{qubit_density::log_grid, ScalabilityConfig, ScalabilityModel};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_density_sweep");
    group.sample_size(20);
    let model = ScalabilityModel::new(ScalabilityConfig::default());
    let areas = log_grid(1.0, 100.0, 9);
    let densities = log_grid(1.0, 5000.0, 300);
    for use_q3de in [true, false] {
        let name = if use_q3de { "q3de" } else { "baseline" };
        group.bench_function(name, |b| {
            b.iter(|| model.sweep(&areas, &densities, use_q3de));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
