//! Criterion bench comparing the five decoding backends (exact MWPM,
//! greedy, union-find, sparse blossom, alternating-tree) on identical
//! syndrome rounds across code distances 3–15.
//!
//! The benched kernel is the post-anomaly *re-execution* decode — a full
//! syndrome window with a centred MBBE and anomaly-aware re-weighted edge
//! costs — which is the hottest path of the Q3DE pipeline and the regime in
//! which the decoder-hardware scaling analysis (Sec. VII) assumes
//! near-linear decoding.  In normal mode the bench also prints the measured
//! union-find speedup over exact MWPM at d = 11 (the acceptance artifact);
//! `-- --test` runs a one-iteration smoke pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use q3de::decoder::{DecoderConfig, MatcherKind, SurfaceDecoder, SyndromeHistory, WeightModel};
use q3de::lattice::{ErrorKind, MatchingGraph};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const PHYSICAL_ERROR_RATE: f64 = 1e-2;

/// One benchmark fixture: the layer graph, a sampled syndrome window with an
/// injected burst, and the anomaly-aware weight model of the rollback pass.
struct Fixture {
    graph: MatchingGraph,
    history: SyndromeHistory,
    model: WeightModel,
}

/// Samples a `d`-round memory window under uniform noise plus a centred
/// burst, through the same `MemoryExperiment::sample_history` kernel the
/// Monte-Carlo shots decode.
fn fixture(d: usize, seed: u64) -> Fixture {
    let config = MemoryExperimentConfig::new(d, PHYSICAL_ERROR_RATE)
        .with_anomaly(AnomalyInjection::centered(2, 0.5));
    let experiment = MemoryExperiment::new(config).expect("valid distance");
    let graph = experiment.code().matching_graph(ErrorKind::X);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (history, _) = experiment.sample_history(DecodingStrategy::AnomalyAware, &mut rng);
    let model = experiment.weight_model(DecodingStrategy::AnomalyAware);
    Fixture {
        graph,
        history,
        model,
    }
}

fn bench_matcher_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_throughput");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9, 11, 13, 15] {
        let fix = fixture(d, 0x03DE);
        for kind in MatcherKind::ALL {
            group.bench_function(format!("d{d}/{}", kind.name()), |b| {
                // One decoder per bench: iterations decode on a warm context,
                // which is exactly how the Monte-Carlo kernels run it.
                let mut decoder = SurfaceDecoder::with_config(
                    &fix.graph,
                    DecoderConfig::default().with_matcher(kind),
                );
                b.iter(|| black_box(decoder.decode(&fix.history, &fix.model)));
            });
        }
    }
    group.finish();

    // Measured speedup artifact (skipped in `-- --test` smoke mode).
    if !std::env::args().any(|a| a == "--test") {
        report_speedup(11);
    }
}

/// Times exact MWPM vs the sparse blossom, union-find and alternating-tree
/// backends on the same d-distance window and prints the measured speedups
/// of decoding one syndrome round, including the tree/blossom and tree/uf
/// cross-backend ratios.
fn report_speedup(d: usize) {
    let fix = fixture(d, 7);
    let time = |kind: MatcherKind, iters: u32| {
        let mut decoder =
            SurfaceDecoder::with_config(&fix.graph, DecoderConfig::default().with_matcher(kind));
        // warm-up
        black_box(decoder.decode(&fix.history, &fix.model));
        let start = Instant::now();
        for _ in 0..iters {
            black_box(decoder.decode(&fix.history, &fix.model));
        }
        start.elapsed().as_secs_f64() / iters as f64
    };
    let exact = time(MatcherKind::Exact, 10);
    let blossom = time(MatcherKind::Blossom, 50);
    let union_find = time(MatcherKind::UnionFind, 50);
    let tree = time(MatcherKind::Tree, 50);
    let per_round = |t: f64| t / d as f64 * 1e6;
    println!(
        "speedup: d={d} exact {:.1} us/round, blossom {:.1} us/round ({:.1}x), \
         union-find {:.1} us/round ({:.1}x), tree {:.1} us/round ({:.1}x)",
        per_round(exact),
        per_round(blossom),
        exact / blossom,
        per_round(union_find),
        exact / union_find,
        per_round(tree),
        exact / tree
    );
    println!(
        "ratios:  d={d} tree/blossom {:.2}x, tree/uf {:.2}x",
        blossom / tree,
        union_find / tree
    );
}

criterion_group!(benches, bench_matcher_throughput);
criterion_main!(benches);
