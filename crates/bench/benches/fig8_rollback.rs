//! Criterion bench for the Fig. 8 kernel: blind vs anomaly-aware decoding of
//! the same burst-afflicted memory shot.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::sim::{AnomalyInjection, DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_rollback_shot");
    group.sample_size(10);
    let config =
        MemoryExperimentConfig::new(7, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
    let experiment = MemoryExperiment::new(config).unwrap();
    for (name, strategy) in [
        ("without_rollback", DecodingStrategy::Blind),
        ("with_rollback", DecodingStrategy::AnomalyAware),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        group.bench_function(name, |b| {
            b.iter(|| experiment.run_shot(strategy, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
