//! Criterion bench for the Table IV kernel: the software matching throughput
//! of the BASE (uniform) vs Q3DE (anomaly-aware) greedy matcher, plus the
//! resource-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use q3de::matching::{GreedyMatcher, Matcher, MatchingProblem};
use q3de::scaling::{DecoderHardwareModel, DecoderVariant};

fn matching_problem(entries: usize, weighted: bool) -> MatchingProblem {
    MatchingProblem::from_fn(
        entries,
        |i, j| {
            let base = (i.abs_diff(j)) as f64;
            if weighted && (i + j) % 5 == 0 {
                base * 0.1
            } else {
                base
            }
        },
        |i| 1.0 + (i % 7) as f64,
    )
}

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_greedy_matching");
    group.sample_size(20);
    for entries in [40usize, 80] {
        let base = matching_problem(entries, false);
        let q3de = matching_problem(entries, true);
        group.bench_function(format!("{entries}_base"), |b| {
            b.iter(|| GreedyMatcher::new().solve(&base))
        });
        group.bench_function(format!("{entries}_q3de_weighted"), |b| {
            b.iter(|| GreedyMatcher::new().solve(&q3de))
        });
    }
    group.finish();

    c.bench_function("table4_resource_model", |b| {
        let model = DecoderHardwareModel::new();
        b.iter(|| {
            (30..=100)
                .map(|n| model.estimate(n, DecoderVariant::Q3de).luts)
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
