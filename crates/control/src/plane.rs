//! The qubit plane: a grid of surface-code blocks.

use crate::isa::LogicalQubitId;
use std::collections::{HashMap, VecDeque};

/// Position of a block (a surface-code patch slot) on the qubit plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockCoord {
    /// Block row.
    pub row: usize,
    /// Block column.
    pub col: usize,
}

impl BlockCoord {
    /// Creates a block coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

/// The state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Unused; available for routing or code expansion.
    Vacant,
    /// Hosts a logical qubit.
    Logical(LogicalQubitId),
    /// Temporarily reserved as routing space or expansion space until the
    /// given cycle.
    Reserved {
        /// Cycle (exclusive) until which the reservation holds.
        until_cycle: u64,
    },
    /// Marked anomalous (struck by a cosmic ray) until the given cycle.
    Anomalous {
        /// Cycle (exclusive) until which the block stays anomalous.
        until_cycle: u64,
    },
}

/// A rectangular grid of surface-code blocks with the checkerboard qubit
/// allocation of the paper (Sec. II-B): blocks whose row *and* column index
/// are odd host logical qubits, everything else is vacant routing space.
#[derive(Debug, Clone)]
pub struct QubitPlane {
    rows: usize,
    cols: usize,
    states: Vec<BlockState>,
    logical_positions: HashMap<LogicalQubitId, BlockCoord>,
}

impl QubitPlane {
    /// Creates a plane of `rows × cols` blocks with logical qubits allocated
    /// on the odd/odd checkerboard.
    ///
    /// # Panics
    ///
    /// Panics if the plane is smaller than 3×3 blocks.
    pub fn checkerboard(rows: usize, cols: usize) -> Self {
        assert!(
            rows >= 3 && cols >= 3,
            "the qubit plane needs at least 3×3 blocks"
        );
        let mut states = vec![BlockState::Vacant; rows * cols];
        let mut logical_positions = HashMap::new();
        let mut next_id = 0usize;
        for row in (1..rows).step_by(2) {
            for col in (1..cols).step_by(2) {
                let id = LogicalQubitId(next_id);
                next_id += 1;
                states[row * cols + col] = BlockState::Logical(id);
                logical_positions.insert(id, BlockCoord::new(row, col));
            }
        }
        Self {
            rows,
            cols,
            states,
            logical_positions,
        }
    }

    /// Number of block rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of block columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of logical qubits hosted on the plane.
    pub fn num_logical_qubits(&self) -> usize {
        self.logical_positions.len()
    }

    /// The logical qubit identifiers in allocation order.
    pub fn logical_qubits(&self) -> Vec<LogicalQubitId> {
        let mut ids: Vec<_> = self.logical_positions.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The block hosting a logical qubit.
    pub fn position_of(&self, qubit: LogicalQubitId) -> Option<BlockCoord> {
        self.logical_positions.get(&qubit).copied()
    }

    fn index(&self, block: BlockCoord) -> usize {
        assert!(
            block.row < self.rows && block.col < self.cols,
            "block {block:?} out of range"
        );
        block.row * self.cols + block.col
    }

    /// The state of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn state(&self, block: BlockCoord) -> BlockState {
        self.states[self.index(block)]
    }

    /// The four neighbouring blocks (fewer at the plane edge).
    pub fn neighbors(&self, block: BlockCoord) -> Vec<BlockCoord> {
        let mut out = Vec::with_capacity(4);
        if block.row > 0 {
            out.push(BlockCoord::new(block.row - 1, block.col));
        }
        if block.row + 1 < self.rows {
            out.push(BlockCoord::new(block.row + 1, block.col));
        }
        if block.col > 0 {
            out.push(BlockCoord::new(block.row, block.col - 1));
        }
        if block.col + 1 < self.cols {
            out.push(BlockCoord::new(block.row, block.col + 1));
        }
        out
    }

    /// Whether the block can be used as routing/expansion space at `cycle`:
    /// it is vacant and neither reserved nor anomalous.
    pub fn is_available(&self, block: BlockCoord, cycle: u64) -> bool {
        match self.state(block) {
            BlockState::Vacant => true,
            BlockState::Logical(_) => false,
            BlockState::Reserved { until_cycle } | BlockState::Anomalous { until_cycle } => {
                cycle >= until_cycle
            }
        }
    }

    /// Releases reservations and anomalies that have expired by `cycle`.
    pub fn expire(&mut self, cycle: u64) {
        for state in &mut self.states {
            match *state {
                BlockState::Reserved { until_cycle } | BlockState::Anomalous { until_cycle }
                    if cycle >= until_cycle =>
                {
                    *state = BlockState::Vacant;
                }
                _ => {}
            }
        }
    }

    /// Reserves a vacant block until `until_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently available.
    pub fn reserve(&mut self, block: BlockCoord, cycle: u64, until_cycle: u64) {
        assert!(
            self.is_available(block, cycle),
            "block {block:?} is not available"
        );
        let idx = self.index(block);
        self.states[idx] = BlockState::Reserved { until_cycle };
    }

    /// Marks a vacant or reserved block anomalous until `until_cycle`
    /// (cosmic-ray strike on routing space).  Strikes on logical blocks are
    /// handled by code expansion instead and leave the state unchanged.
    pub fn mark_anomalous(&mut self, block: BlockCoord, until_cycle: u64) {
        let idx = self.index(block);
        match self.states[idx] {
            BlockState::Logical(_) => {}
            _ => self.states[idx] = BlockState::Anomalous { until_cycle },
        }
    }

    /// Whether a block is currently marked anomalous.
    pub fn is_anomalous(&self, block: BlockCoord, cycle: u64) -> bool {
        matches!(self.state(block), BlockState::Anomalous { until_cycle } if cycle < until_cycle)
    }

    /// Finds a lattice-surgery route between two logical qubits: a path of
    /// available blocks connecting a neighbour of `a` to a neighbour of `b`
    /// (BFS, shortest in block count).  Returns `None` when no route exists
    /// at `cycle`.
    pub fn find_route(
        &self,
        a: LogicalQubitId,
        b: LogicalQubitId,
        cycle: u64,
    ) -> Option<Vec<BlockCoord>> {
        let start_block = self.position_of(a)?;
        let goal_block = self.position_of(b)?;
        // BFS over available blocks, seeded with the available neighbours of a.
        let mut queue = VecDeque::new();
        let mut visited: HashMap<BlockCoord, Option<BlockCoord>> = HashMap::new();
        for n in self.neighbors(start_block) {
            if self.is_available(n, cycle) {
                visited.insert(n, None);
                queue.push_back(n);
            }
        }
        while let Some(current) = queue.pop_front() {
            if self.neighbors(current).contains(&goal_block) {
                // reconstruct path
                let mut path = vec![current];
                let mut cursor = current;
                while let Some(Some(prev)) = visited.get(&cursor) {
                    path.push(*prev);
                    cursor = *prev;
                }
                path.reverse();
                return Some(path);
            }
            for n in self.neighbors(current) {
                if self.is_available(n, cycle) && !visited.contains_key(&n) {
                    visited.insert(n, Some(current));
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// The vacant blocks needed to expand a logical qubit into a 2×2 block
    /// patch (the paper's doubling policy): the right, lower and lower-right
    /// diagonal neighbours when they exist.
    pub fn expansion_blocks(&self, qubit: LogicalQubitId) -> Option<Vec<BlockCoord>> {
        let pos = self.position_of(qubit)?;
        let mut blocks = Vec::new();
        for (dr, dc) in [(0usize, 1usize), (1, 0), (1, 1)] {
            let row = pos.row + dr;
            let col = pos.col + dc;
            if row < self.rows && col < self.cols {
                blocks.push(BlockCoord::new(row, col));
            }
        }
        Some(blocks)
    }

    /// Whether the expansion blocks of `qubit` are all available at `cycle`.
    pub fn can_expand(&self, qubit: LogicalQubitId, cycle: u64) -> bool {
        match self.expansion_blocks(qubit) {
            Some(blocks) => {
                !blocks.is_empty() && blocks.iter().all(|&b| self.is_available(b, cycle))
            }
            None => false,
        }
    }

    /// Reserves the expansion blocks of `qubit` until `until_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the expansion is not currently possible.
    pub fn expand(&mut self, qubit: LogicalQubitId, cycle: u64, until_cycle: u64) {
        assert!(
            self.can_expand(qubit, cycle),
            "qubit {qubit:?} cannot expand at cycle {cycle}"
        );
        let blocks = self
            .expansion_blocks(qubit)
            .expect("expansion blocks exist");
        for b in blocks {
            self.reserve(b, cycle, until_cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_allocation_matches_the_paper() {
        // 11×11 blocks with odd/odd logical positions → 25 logical qubits.
        let plane = QubitPlane::checkerboard(11, 11);
        assert_eq!(plane.num_logical_qubits(), 25);
        assert_eq!(plane.rows(), 11);
        assert_eq!(plane.cols(), 11);
        for id in plane.logical_qubits() {
            let pos = plane.position_of(id).unwrap();
            assert_eq!(pos.row % 2, 1);
            assert_eq!(pos.col % 2, 1);
            assert_eq!(plane.state(pos), BlockState::Logical(id));
        }
    }

    #[test]
    fn routing_between_adjacent_logical_qubits() {
        let plane = QubitPlane::checkerboard(5, 5);
        let qubits = plane.logical_qubits();
        // qubits at (1,1), (1,3), (3,1), (3,3)
        let route = plane
            .find_route(qubits[0], qubits[1], 0)
            .expect("route exists");
        assert!(!route.is_empty());
        for block in &route {
            assert!(plane.is_available(*block, 0));
        }
    }

    #[test]
    fn reserved_blocks_block_routing_until_expiry() {
        let mut plane = QubitPlane::checkerboard(5, 5);
        let qubits = plane.logical_qubits();
        // Reserve the whole middle column and row of vacant blocks.
        for row in 0..5 {
            let b = BlockCoord::new(row, 2);
            if plane.state(b) == BlockState::Vacant {
                plane.reserve(b, 0, 100);
            }
        }
        for col in 0..5 {
            let b = BlockCoord::new(2, col);
            if plane.state(b) == BlockState::Vacant {
                plane.reserve(b, 0, 100);
            }
        }
        // q0 at (1,1), q3 at (3,3): every route must cross row 2 or column 2.
        assert!(plane.find_route(qubits[0], qubits[3], 0).is_none());
        // after expiry the route exists again
        assert!(plane.find_route(qubits[0], qubits[3], 100).is_some());
        plane.expire(100);
        assert_eq!(plane.state(BlockCoord::new(0, 2)), BlockState::Vacant);
    }

    #[test]
    fn anomalous_blocks_are_avoided() {
        let mut plane = QubitPlane::checkerboard(5, 5);
        let b = BlockCoord::new(1, 2);
        plane.mark_anomalous(b, 50);
        assert!(plane.is_anomalous(b, 10));
        assert!(!plane.is_available(b, 10));
        assert!(plane.is_available(b, 50));
        assert!(!plane.is_anomalous(b, 50));
        // logical blocks are not converted to anomalous state
        let qpos = plane.position_of(LogicalQubitId(0)).unwrap();
        plane.mark_anomalous(qpos, 50);
        assert!(matches!(plane.state(qpos), BlockState::Logical(_)));
    }

    #[test]
    fn expansion_reserves_a_two_by_two_patch() {
        let mut plane = QubitPlane::checkerboard(5, 5);
        let q = LogicalQubitId(0); // at (1,1)
        assert!(plane.can_expand(q, 0));
        let blocks = plane.expansion_blocks(q).unwrap();
        assert_eq!(blocks.len(), 3);
        plane.expand(q, 0, 200);
        for b in blocks {
            assert!(!plane.is_available(b, 0));
        }
        assert!(!plane.can_expand(q, 0), "cannot expand twice concurrently");
        assert!(
            plane.can_expand(q, 200),
            "expansion space frees after expiry"
        );
    }

    #[test]
    fn expansion_blocks_conflict_between_neighbouring_qubits() {
        let mut plane = QubitPlane::checkerboard(5, 5);
        let qubits = plane.logical_qubits();
        plane.expand(qubits[0], 0, 100);
        // q1 at (1,3): its expansion blocks (1,4),(2,3),(2,4) are distinct, so
        // it can still expand; but q0's route to q1 through (1,2)/(2,1) is
        // partially blocked.
        assert!(plane.can_expand(qubits[1], 0));
        assert!(!plane.is_available(BlockCoord::new(1, 2), 0));
    }

    #[test]
    #[should_panic(expected = "is not available")]
    fn double_reservation_panics() {
        let mut plane = QubitPlane::checkerboard(5, 5);
        let b = BlockCoord::new(0, 0);
        plane.reserve(b, 0, 10);
        plane.reserve(b, 0, 10);
    }

    #[test]
    #[should_panic(expected = "at least 3×3")]
    fn tiny_plane_is_rejected() {
        let _ = QubitPlane::checkerboard(2, 2);
    }
}
