//! The syndrome, matching and expansion queues of the Q3DE control unit,
//! and the spare-budget arbiter that turns queued `op_expand` requests into
//! grants.

use crate::isa::LogicalQubitId;
use std::collections::{BTreeMap, VecDeque};

/// The FIFO syndrome queue of Fig. 1, enlarged (Sec. VI-C) so that the most
/// recent `c_lat + d` layers are retained even after they have been matched,
/// enabling decoder rollback.
#[derive(Debug, Clone)]
pub struct SyndromeQueue {
    capacity_layers: usize,
    bits_per_layer: usize,
    layers: VecDeque<Vec<bool>>,
    oldest_layer_cycle: u64,
}

impl SyndromeQueue {
    /// Creates a queue that retains up to `capacity_layers` layers of
    /// `bits_per_layer` syndrome bits each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(capacity_layers: usize, bits_per_layer: usize) -> Self {
        assert!(
            capacity_layers > 0,
            "the syndrome queue needs a positive capacity"
        );
        assert!(bits_per_layer > 0, "layers must contain at least one bit");
        Self {
            capacity_layers,
            bits_per_layer,
            layers: VecDeque::with_capacity(capacity_layers),
            oldest_layer_cycle: 0,
        }
    }

    /// Pushes a layer, evicting the oldest one when full.  Returns the
    /// evicted layer, if any.
    ///
    /// # Panics
    ///
    /// Panics if the layer has the wrong width.
    pub fn push(&mut self, layer: Vec<bool>) -> Option<Vec<bool>> {
        assert_eq!(layer.len(), self.bits_per_layer, "unexpected layer width");
        self.layers.push_back(layer);
        if self.layers.len() > self.capacity_layers {
            self.oldest_layer_cycle += 1;
            self.layers.pop_front()
        } else {
            None
        }
    }

    /// Number of layers currently stored.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The absolute code cycle of the oldest retained layer.
    pub fn oldest_layer_cycle(&self) -> u64 {
        self.oldest_layer_cycle
    }

    /// The retained layers from oldest to newest.
    pub fn layers(&self) -> impl Iterator<Item = &[bool]> {
        self.layers.iter().map(|l| l.as_slice())
    }

    /// The retained layers starting at absolute cycle `from_cycle` (used to
    /// rebuild the decoding window after a rollback).
    pub fn layers_since(&self, from_cycle: u64) -> Vec<Vec<bool>> {
        let skip = from_cycle.saturating_sub(self.oldest_layer_cycle) as usize;
        self.layers.iter().skip(skip).cloned().collect()
    }

    /// Storage requirement in bits (the Table III `2·d²·(c_win + √(2c_win))`
    /// entry corresponds to two such queues, one per error sector).
    pub fn size_bits(&self) -> usize {
        self.capacity_layers * self.bits_per_layer
    }
}

/// One committed batch of matching results (Sec. VI-C): instead of storing
/// every individual match, the matching queue stores the per-batch summary
/// needed to revert the Pauli frame, reducing memory by a factor `c_bat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingBatch {
    /// First code cycle covered by the batch.
    pub start_cycle: u64,
    /// Number of cycles summarised in this batch (`c_bat`).
    pub cycles: usize,
    /// Parity of cut-crossing corrections committed during the batch (what
    /// must be undone on the Pauli frame when rolling back).
    pub cut_parity: bool,
    /// Number of matches committed in the batch (for accounting).
    pub num_matches: usize,
}

/// The matching queue: batched summaries of committed decoder output.
#[derive(Debug, Clone)]
pub struct MatchingQueue {
    batch_cycles: usize,
    batches: VecDeque<MatchingBatch>,
    capacity_batches: usize,
}

impl MatchingQueue {
    /// Creates a queue of at most `capacity_batches` batches, each covering
    /// `batch_cycles` code cycles.  The paper sets
    /// `c_bat = √(2·c_win)` to minimise total buffer memory.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(batch_cycles: usize, capacity_batches: usize) -> Self {
        assert!(
            batch_cycles > 0 && capacity_batches > 0,
            "queue dimensions must be positive"
        );
        Self {
            batch_cycles,
            batches: VecDeque::new(),
            capacity_batches,
        }
    }

    /// The batch length `c_bat` that minimises total buffer memory for a
    /// detection window of `c_win` cycles (Sec. VI-C): `√(2·c_win)`.
    pub fn optimal_batch_cycles(window: usize) -> usize {
        ((2.0 * window as f64).sqrt().round() as usize).max(1)
    }

    /// Pushes a batch summary, evicting the oldest when full.
    pub fn push(&mut self, batch: MatchingBatch) -> Option<MatchingBatch> {
        self.batches.push_back(batch);
        if self.batches.len() > self.capacity_batches {
            self.batches.pop_front()
        } else {
            None
        }
    }

    /// Number of stored batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The batches whose window overlaps cycles at or after `cycle`, newest
    /// first — the ones whose Pauli-frame effect must be reverted on
    /// rollback.
    pub fn batches_to_revert(&self, cycle: u64) -> Vec<MatchingBatch> {
        self.batches
            .iter()
            .rev()
            .take_while(|b| b.start_cycle + b.cycles as u64 > cycle)
            .copied()
            .collect()
    }

    /// Removes the batches returned by
    /// [`MatchingQueue::batches_to_revert`] and returns how many were
    /// dropped.
    pub fn revert_from(&mut self, cycle: u64) -> usize {
        let n = self.batches_to_revert(cycle).len();
        for _ in 0..n {
            self.batches.pop_back();
        }
        n
    }

    /// The configured batch length `c_bat`.
    pub fn batch_cycles(&self) -> usize {
        self.batch_cycles
    }
}

/// A pending `op_expand` request in the expansion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionRequest {
    /// The logical qubit to expand.
    pub target: LogicalQubitId,
    /// Cycle at which the request was enqueued (detection time).
    pub requested_cycle: u64,
    /// Number of cycles the expansion should be kept.
    pub keep_cycles: u64,
}

/// The expansion queue: `op_expand` requests produced by the anomaly
/// detection unit, consumed by the instruction scheduler.
#[derive(Debug, Clone, Default)]
pub struct ExpansionQueue {
    pending: VecDeque<ExpansionRequest>,
}

impl ExpansionQueue {
    /// Creates an empty expansion queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request.  If a request for the same qubit is already
    /// pending, its keep time is extended instead (Sec. V-B).
    pub fn request(&mut self, request: ExpansionRequest) {
        if let Some(existing) = self.pending.iter_mut().find(|r| r.target == request.target) {
            existing.keep_cycles = existing.keep_cycles.max(
                request.requested_cycle + request.keep_cycles
                    - existing.requested_cycle.min(request.requested_cycle),
            );
        } else {
            self.pending.push_back(request);
        }
    }

    /// Pops the oldest pending request.
    pub fn pop(&mut self) -> Option<ExpansionRequest> {
        self.pending.pop_front()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no request is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The oldest pending request, without removing it.
    pub fn peek(&self) -> Option<&ExpansionRequest> {
        self.pending.front()
    }

    /// The pending requests, oldest first, without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &ExpansionRequest> {
        self.pending.iter()
    }
}

/// The distances and spare-qubit cost behind one `op_expand` request: the
/// patch grows from `from_distance` to `to_distance ≥ d + 2·d_ano`, which
/// consumes `cost_qubits` qubits from the shared spare pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionBid {
    /// Code distance before the expansion.
    pub from_distance: usize,
    /// Requested code distance, `d_exp ≥ d + 2·d_ano`.
    pub to_distance: usize,
    /// Spare physical qubits the expansion consumes,
    /// `(2·d_exp − 1)² − (2·d − 1)²`.
    pub cost_qubits: usize,
}

/// An expansion currently holding spare qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionGrant {
    /// The expanded logical qubit.
    pub target: LogicalQubitId,
    /// The granted bid (distances and cost).
    pub bid: ExpansionBid,
    /// Cycle at which the grant was issued.
    pub granted_cycle: u64,
    /// Cycle (exclusive) at which the expansion is shrunk back and its
    /// qubits reclaimed.
    pub expires_cycle: u64,
}

/// The arbiter's verdict on one routed expansion request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionDecision {
    /// The spare budget covers the bid: the expansion holds its qubits now.
    Granted(ExpansionGrant),
    /// The bid exceeds the remaining budget: the request waits in the
    /// expansion queue until enough qubits are reclaimed (`deficit` is how
    /// many are missing right now).
    Queued {
        /// Spare qubits missing at decision time.
        deficit: usize,
    },
    /// The target already holds a grant; its lifetime was extended instead
    /// of consuming more qubits (the Sec. V-B merge rule).
    Extended {
        /// The new expiry cycle of the existing grant.
        expires_cycle: u64,
    },
}

impl ExpansionDecision {
    /// Whether the request holds spare qubits after the decision.
    pub fn is_granted(&self) -> bool {
        matches!(
            self,
            ExpansionDecision::Granted(_) | ExpansionDecision::Extended { .. }
        )
    }
}

/// The chip-level expansion arbiter: routes `op_expand` requests through an
/// [`ExpansionQueue`] and grants them against a shared pool of spare
/// physical qubits.
///
/// Policy (Sec. V-B at system scale):
///
/// * a request is granted immediately while the spare budget covers its
///   cost; the grant holds `cost_qubits` until it expires or is reclaimed,
/// * a repeated request for an already-expanded qubit extends the grant's
///   lifetime instead of consuming more qubits,
/// * requests that do not fit wait in the expansion queue and are granted
///   strictly FIFO as qubits are reclaimed — a later, smaller bid never
///   bypasses an older one (no starvation of large expansions),
/// * shrinking (explicitly via [`ExpansionArbiter::reclaim`] or by expiry
///   via [`ExpansionArbiter::expire`]) returns the qubits to the pool and
///   immediately re-runs the queue.
#[derive(Debug, Clone)]
pub struct ExpansionArbiter {
    spare_budget: usize,
    in_use: usize,
    active: Vec<ExpansionGrant>,
    pending: ExpansionQueue,
    bids: BTreeMap<LogicalQubitId, ExpansionBid>,
}

impl ExpansionArbiter {
    /// Creates an arbiter over a pool of `spare_budget` spare physical
    /// qubits.
    pub fn new(spare_budget: usize) -> Self {
        Self {
            spare_budget,
            in_use: 0,
            active: Vec::new(),
            pending: ExpansionQueue::new(),
            bids: BTreeMap::new(),
        }
    }

    /// The total spare budget.
    pub fn spare_budget(&self) -> usize {
        self.spare_budget
    }

    /// Spare qubits currently held by active grants.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Spare qubits currently available.
    pub fn available(&self) -> usize {
        self.spare_budget - self.in_use
    }

    /// The active grants, oldest first.
    pub fn active_grants(&self) -> &[ExpansionGrant] {
        &self.active
    }

    /// The grant held by `target`, if any.
    pub fn grant_for(&self, target: LogicalQubitId) -> Option<&ExpansionGrant> {
        self.active.iter().find(|g| g.target == target)
    }

    /// Number of requests waiting in the expansion queue.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// The queued requests' targets, oldest first.
    pub fn pending_targets(&self) -> Vec<LogicalQubitId> {
        self.pending.iter().map(|r| r.target).collect()
    }

    /// Routes one `op_expand` request through the queue and decides it
    /// against the spare budget at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the bid's distances are inconsistent
    /// (`to_distance <= from_distance` with a non-zero cost expectation).
    pub fn arbitrate(
        &mut self,
        request: ExpansionRequest,
        bid: ExpansionBid,
        cycle: u64,
    ) -> ExpansionDecision {
        assert!(
            bid.to_distance > bid.from_distance,
            "expansion bid must grow the distance ({} -> {})",
            bid.from_distance,
            bid.to_distance
        );
        // Merge rule: an already-granted target only extends its lifetime.
        if let Some(grant) = self.active.iter_mut().find(|g| g.target == request.target) {
            grant.expires_cycle = grant
                .expires_cycle
                .max(request.requested_cycle + request.keep_cycles);
            return ExpansionDecision::Extended {
                expires_cycle: grant.expires_cycle,
            };
        }
        // Strict FIFO: while older requests wait, newer ones queue behind
        // them even if they would fit, so large expansions cannot starve.
        if self.pending.is_empty() && bid.cost_qubits <= self.available() {
            let grant = self.admit(request, bid, cycle);
            ExpansionDecision::Granted(grant)
        } else {
            let deficit = bid.cost_qubits.saturating_sub(self.available());
            self.bids
                .entry(request.target)
                .and_modify(|b| {
                    if bid.to_distance > b.to_distance {
                        *b = bid;
                    }
                })
                .or_insert(bid);
            self.pending.request(request);
            ExpansionDecision::Queued { deficit }
        }
    }

    fn admit(
        &mut self,
        request: ExpansionRequest,
        bid: ExpansionBid,
        cycle: u64,
    ) -> ExpansionGrant {
        debug_assert!(bid.cost_qubits <= self.available());
        self.in_use += bid.cost_qubits;
        let grant = ExpansionGrant {
            target: request.target,
            bid,
            granted_cycle: cycle,
            expires_cycle: request.requested_cycle + request.keep_cycles,
        };
        self.active.push(grant);
        grant
    }

    /// Shrinks `target` back to its base distance, returning its qubits to
    /// the pool, and immediately re-runs the queue.  Returns the reclaimed
    /// grant (or `None` if the target held none) and any grants issued to
    /// queued requests.
    pub fn reclaim(
        &mut self,
        target: LogicalQubitId,
        cycle: u64,
    ) -> (Option<ExpansionGrant>, Vec<ExpansionGrant>) {
        let reclaimed = match self.active.iter().position(|g| g.target == target) {
            Some(i) => {
                let grant = self.active.remove(i);
                self.in_use -= grant.bid.cost_qubits;
                Some(grant)
            }
            None => None,
        };
        let granted = self.pump(cycle);
        (reclaimed, granted)
    }

    /// Reclaims every grant that has expired by `cycle` (the shrink step of
    /// the keep-cycle policy) and re-runs the queue.  Returns the reclaimed
    /// and the newly issued grants.
    pub fn expire(&mut self, cycle: u64) -> (Vec<ExpansionGrant>, Vec<ExpansionGrant>) {
        let mut reclaimed = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].expires_cycle <= cycle {
                let grant = self.active.remove(i);
                self.in_use -= grant.bid.cost_qubits;
                reclaimed.push(grant);
            } else {
                i += 1;
            }
        }
        let granted = self.pump(cycle);
        (reclaimed, granted)
    }

    /// Grants queued requests in FIFO order while the budget allows,
    /// stopping at the first that does not fit.  Requests whose keep window
    /// has already elapsed (`requested_cycle + keep_cycles <= cycle`) are
    /// dropped instead of granted: the MBBE they were meant to ride out has
    /// relaxed, and a grant issued now would be born expired yet hold spare
    /// qubits until the next expiry sweep.
    fn pump(&mut self, cycle: u64) -> Vec<ExpansionGrant> {
        let mut granted = Vec::new();
        while let Some(front) = self.pending.peek().copied() {
            if front.requested_cycle + front.keep_cycles <= cycle {
                let stale = self.pending.pop().expect("peeked request exists");
                self.bids.remove(&stale.target);
                continue;
            }
            let bid = *self
                .bids
                .get(&front.target)
                .expect("every queued request carries a bid");
            if bid.cost_qubits > self.available() {
                break;
            }
            let popped = self.pending.pop().expect("peeked request exists");
            self.bids.remove(&popped.target);
            granted.push(self.admit(popped, bid, cycle));
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syndrome_queue_evicts_oldest_layer() {
        let mut q = SyndromeQueue::new(3, 2);
        assert!(q.is_empty());
        assert!(q.push(vec![true, false]).is_none());
        assert!(q.push(vec![false, false]).is_none());
        assert!(q.push(vec![false, true]).is_none());
        let evicted = q.push(vec![true, true]).expect("queue overflows");
        assert_eq!(evicted, vec![true, false]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.oldest_layer_cycle(), 1);
        assert_eq!(q.size_bits(), 6);
        assert_eq!(q.layers().count(), 3);
    }

    #[test]
    fn syndrome_queue_window_since_cycle() {
        let mut q = SyndromeQueue::new(4, 1);
        for i in 0..6 {
            q.push(vec![i % 2 == 0]);
        }
        // layers for cycles 2..=5 are retained
        assert_eq!(q.oldest_layer_cycle(), 2);
        let since4 = q.layers_since(4);
        assert_eq!(since4.len(), 2);
        assert_eq!(since4[0], vec![true]); // cycle 4
        assert_eq!(since4[1], vec![false]); // cycle 5
    }

    #[test]
    fn matching_queue_batches_and_rollback() {
        let mut q = MatchingQueue::new(10, 8);
        for i in 0..5u64 {
            q.push(MatchingBatch {
                start_cycle: i * 10,
                cycles: 10,
                cut_parity: i % 2 == 0,
                num_matches: 3,
            });
        }
        assert_eq!(q.len(), 5);
        let revert = q.batches_to_revert(25);
        // batches starting at 40, 30, 20 overlap cycles ≥ 25
        assert_eq!(revert.len(), 3);
        assert_eq!(revert[0].start_cycle, 40);
        assert_eq!(q.revert_from(25), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.batch_cycles(), 10);
    }

    #[test]
    fn optimal_batch_size_matches_the_paper_formula() {
        // c_bat = √(2 · c_win); for c_win = 300 this is ≈ 24.5 → 24
        assert_eq!(MatchingQueue::optimal_batch_cycles(300), 24);
        assert_eq!(MatchingQueue::optimal_batch_cycles(50), 10);
        assert!(MatchingQueue::optimal_batch_cycles(0) >= 1);
    }

    #[test]
    fn expansion_queue_merges_repeated_requests() {
        let mut q = ExpansionQueue::new();
        let q0 = LogicalQubitId(0);
        q.request(ExpansionRequest {
            target: q0,
            requested_cycle: 100,
            keep_cycles: 1_000,
        });
        q.request(ExpansionRequest {
            target: q0,
            requested_cycle: 500,
            keep_cycles: 1_000,
        });
        assert_eq!(q.len(), 1, "repeated requests for the same qubit merge");
        let merged = q.pop().unwrap();
        assert!(
            merged.keep_cycles >= 1_400,
            "keep time was extended, got {}",
            merged.keep_cycles
        );
        assert!(q.is_empty());
    }

    #[test]
    fn expansion_queue_is_fifo_for_distinct_qubits() {
        let mut q = ExpansionQueue::new();
        q.request(ExpansionRequest {
            target: LogicalQubitId(3),
            requested_cycle: 10,
            keep_cycles: 100,
        });
        q.request(ExpansionRequest {
            target: LogicalQubitId(1),
            requested_cycle: 20,
            keep_cycles: 100,
        });
        assert_eq!(q.pop().unwrap().target, LogicalQubitId(3));
        assert_eq!(q.pop().unwrap().target, LogicalQubitId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "unexpected layer width")]
    fn syndrome_queue_rejects_wrong_width() {
        let mut q = SyndromeQueue::new(2, 3);
        q.push(vec![true]);
    }

    #[test]
    fn layers_since_clamps_to_the_oldest_retained_layer() {
        let mut q = SyndromeQueue::new(3, 1);
        for i in 0..5 {
            q.push(vec![i % 2 == 0]);
        }
        // layers for cycles 2..=4 are retained
        assert_eq!(q.oldest_layer_cycle(), 2);
        // A rollback to a cycle that predates the oldest retained layer can
        // only rebuild from what is still stored: all retained layers.
        let since0 = q.layers_since(0);
        assert_eq!(since0.len(), 3);
        assert_eq!(since0[0], vec![true]); // cycle 2
        assert_eq!(since0[2], vec![true]); // cycle 4
        assert_eq!(q.layers_since(0), q.layers_since(2));
        // Asking past the newest layer yields nothing.
        assert!(q.layers_since(5).is_empty());
    }

    fn bid(from: usize, to: usize) -> ExpansionBid {
        ExpansionBid {
            from_distance: from,
            to_distance: to,
            cost_qubits: (2 * to - 1) * (2 * to - 1) - (2 * from - 1) * (2 * from - 1),
        }
    }

    fn request(target: usize, cycle: u64) -> ExpansionRequest {
        ExpansionRequest {
            target: LogicalQubitId(target),
            requested_cycle: cycle,
            keep_cycles: 1_000,
        }
    }

    #[test]
    fn arbiter_grants_while_the_budget_allows_then_queues() {
        // d = 5 → d_exp = 9 costs 17² − 9² = 208; budget covers exactly two.
        let cost = bid(5, 9).cost_qubits;
        assert_eq!(cost, 208);
        let mut arb = ExpansionArbiter::new(2 * cost);
        let d0 = arb.arbitrate(request(0, 10), bid(5, 9), 10);
        let d1 = arb.arbitrate(request(1, 11), bid(5, 9), 11);
        assert!(matches!(d0, ExpansionDecision::Granted(g) if g.target == LogicalQubitId(0)));
        assert!(matches!(d1, ExpansionDecision::Granted(_)));
        assert_eq!(arb.in_use(), 2 * cost);
        assert_eq!(arb.available(), 0);
        // Budget exhausted: the third request queues with the full deficit.
        let d2 = arb.arbitrate(request(2, 12), bid(5, 9), 12);
        assert_eq!(d2, ExpansionDecision::Queued { deficit: cost });
        assert_eq!(arb.num_pending(), 1);
        assert_eq!(arb.active_grants().len(), 2);
        assert!(arb.grant_for(LogicalQubitId(0)).is_some());
        assert!(arb.grant_for(LogicalQubitId(2)).is_none());
    }

    #[test]
    fn arbiter_queue_is_fifo_even_when_a_later_bid_would_fit() {
        // Budget fits one d=5→9 expansion (208) with 50 to spare.
        let mut arb = ExpansionArbiter::new(258);
        assert!(arb.arbitrate(request(0, 0), bid(5, 9), 0).is_granted());
        // q1's large bid (208) queues; q2's small bid (2→3: 25−9=16) would
        // fit the remaining 50 qubits but must not bypass q1.
        assert!(matches!(
            arb.arbitrate(request(1, 1), bid(5, 9), 1),
            ExpansionDecision::Queued { deficit: 158 }
        ));
        assert!(matches!(
            arb.arbitrate(request(2, 2), bid(2, 3), 2),
            ExpansionDecision::Queued { deficit: 0 }
        ));
        assert_eq!(
            arb.pending_targets(),
            vec![LogicalQubitId(1), LogicalQubitId(2)]
        );
        // Reclaiming q0 grants q1 first, and q2 right behind it (both fit).
        let (reclaimed, granted) = arb.reclaim(LogicalQubitId(0), 100);
        assert_eq!(reclaimed.unwrap().target, LogicalQubitId(0));
        assert_eq!(granted.len(), 2);
        assert_eq!(granted[0].target, LogicalQubitId(1));
        assert_eq!(granted[1].target, LogicalQubitId(2));
        assert_eq!(arb.num_pending(), 0);
        assert_eq!(arb.in_use(), 208 + 16);
    }

    #[test]
    fn arbiter_extends_an_existing_grant_instead_of_double_charging() {
        let mut arb = ExpansionArbiter::new(300);
        let first = arb.arbitrate(request(0, 10), bid(5, 9), 10);
        assert!(first.is_granted());
        let used = arb.in_use();
        let again = arb.arbitrate(
            ExpansionRequest {
                target: LogicalQubitId(0),
                requested_cycle: 500,
                keep_cycles: 1_000,
            },
            bid(5, 9),
            500,
        );
        assert_eq!(
            again,
            ExpansionDecision::Extended {
                expires_cycle: 1_500
            }
        );
        assert_eq!(arb.in_use(), used, "an extension holds no extra qubits");
        assert_eq!(arb.active_grants().len(), 1);
    }

    #[test]
    fn expiry_reclaims_qubits_and_unblocks_the_queue() {
        let cost = bid(5, 9).cost_qubits;
        let mut arb = ExpansionArbiter::new(cost);
        assert!(arb.arbitrate(request(0, 0), bid(5, 9), 0).is_granted());
        assert!(matches!(
            arb.arbitrate(request(1, 10), bid(5, 9), 10),
            ExpansionDecision::Queued { .. }
        ));
        // q0's grant expires at cycle 1000 (requested 0 + keep 1000).
        let (reclaimed, granted) = arb.expire(999);
        assert!(reclaimed.is_empty() && granted.is_empty());
        let (reclaimed, granted) = arb.expire(1_000);
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].target, LogicalQubitId(0));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].target, LogicalQubitId(1));
        assert_eq!(arb.in_use(), cost);
        assert_eq!(arb.available(), 0);
    }

    #[test]
    fn pump_drops_requests_whose_keep_window_elapsed() {
        let cost = bid(5, 9).cost_qubits;
        let mut arb = ExpansionArbiter::new(cost);
        assert!(arb.arbitrate(request(0, 0), bid(5, 9), 0).is_granted());
        // q1 queues at cycle 10 with keep 1000: useful until cycle 1010.
        assert!(matches!(
            arb.arbitrate(request(1, 10), bid(5, 9), 10),
            ExpansionDecision::Queued { .. }
        ));
        // By cycle 1200 q0's grant has expired *and* q1's keep window has
        // elapsed: the reclaim must drop q1, not issue a born-expired grant
        // that would hold the pool for nothing.
        let (reclaimed, granted) = arb.expire(1_200);
        assert_eq!(reclaimed.len(), 1);
        assert!(
            granted.is_empty(),
            "stale queued requests are dropped, not granted"
        );
        assert_eq!(arb.num_pending(), 0);
        assert_eq!(arb.in_use(), 0);
        // The freed pool serves the next live request immediately.
        assert!(arb
            .arbitrate(request(2, 1_200), bid(5, 9), 1_200)
            .is_granted());
    }

    #[test]
    fn zero_budget_arbiter_queues_everything() {
        let mut arb = ExpansionArbiter::new(0);
        let d = arb.arbitrate(request(0, 0), bid(3, 5), 0);
        assert!(matches!(d, ExpansionDecision::Queued { .. }));
        assert!(!d.is_granted());
        assert_eq!(arb.num_pending(), 1);
        assert_eq!(arb.available(), 0);
        let (reclaimed, granted) = arb.reclaim(LogicalQubitId(0), 5);
        assert!(reclaimed.is_none(), "nothing was granted to reclaim");
        assert!(granted.is_empty(), "the pool is still empty");
    }

    #[test]
    #[should_panic(expected = "must grow the distance")]
    fn arbiter_rejects_non_growing_bids() {
        let mut arb = ExpansionArbiter::new(100);
        arb.arbitrate(request(0, 0), bid(5, 9), 0);
        let bad = ExpansionBid {
            from_distance: 5,
            to_distance: 5,
            cost_qubits: 0,
        };
        arb.arbitrate(request(1, 0), bad, 0);
    }
}
