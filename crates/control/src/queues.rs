//! The syndrome, matching and expansion queues of the Q3DE control unit.

use crate::isa::LogicalQubitId;
use std::collections::VecDeque;

/// The FIFO syndrome queue of Fig. 1, enlarged (Sec. VI-C) so that the most
/// recent `c_lat + d` layers are retained even after they have been matched,
/// enabling decoder rollback.
#[derive(Debug, Clone)]
pub struct SyndromeQueue {
    capacity_layers: usize,
    bits_per_layer: usize,
    layers: VecDeque<Vec<bool>>,
    oldest_layer_cycle: u64,
}

impl SyndromeQueue {
    /// Creates a queue that retains up to `capacity_layers` layers of
    /// `bits_per_layer` syndrome bits each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(capacity_layers: usize, bits_per_layer: usize) -> Self {
        assert!(
            capacity_layers > 0,
            "the syndrome queue needs a positive capacity"
        );
        assert!(bits_per_layer > 0, "layers must contain at least one bit");
        Self {
            capacity_layers,
            bits_per_layer,
            layers: VecDeque::with_capacity(capacity_layers),
            oldest_layer_cycle: 0,
        }
    }

    /// Pushes a layer, evicting the oldest one when full.  Returns the
    /// evicted layer, if any.
    ///
    /// # Panics
    ///
    /// Panics if the layer has the wrong width.
    pub fn push(&mut self, layer: Vec<bool>) -> Option<Vec<bool>> {
        assert_eq!(layer.len(), self.bits_per_layer, "unexpected layer width");
        self.layers.push_back(layer);
        if self.layers.len() > self.capacity_layers {
            self.oldest_layer_cycle += 1;
            self.layers.pop_front()
        } else {
            None
        }
    }

    /// Number of layers currently stored.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The absolute code cycle of the oldest retained layer.
    pub fn oldest_layer_cycle(&self) -> u64 {
        self.oldest_layer_cycle
    }

    /// The retained layers from oldest to newest.
    pub fn layers(&self) -> impl Iterator<Item = &[bool]> {
        self.layers.iter().map(|l| l.as_slice())
    }

    /// The retained layers starting at absolute cycle `from_cycle` (used to
    /// rebuild the decoding window after a rollback).
    pub fn layers_since(&self, from_cycle: u64) -> Vec<Vec<bool>> {
        let skip = from_cycle.saturating_sub(self.oldest_layer_cycle) as usize;
        self.layers.iter().skip(skip).cloned().collect()
    }

    /// Storage requirement in bits (the Table III `2·d²·(c_win + √(2c_win))`
    /// entry corresponds to two such queues, one per error sector).
    pub fn size_bits(&self) -> usize {
        self.capacity_layers * self.bits_per_layer
    }
}

/// One committed batch of matching results (Sec. VI-C): instead of storing
/// every individual match, the matching queue stores the per-batch summary
/// needed to revert the Pauli frame, reducing memory by a factor `c_bat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingBatch {
    /// First code cycle covered by the batch.
    pub start_cycle: u64,
    /// Number of cycles summarised in this batch (`c_bat`).
    pub cycles: usize,
    /// Parity of cut-crossing corrections committed during the batch (what
    /// must be undone on the Pauli frame when rolling back).
    pub cut_parity: bool,
    /// Number of matches committed in the batch (for accounting).
    pub num_matches: usize,
}

/// The matching queue: batched summaries of committed decoder output.
#[derive(Debug, Clone)]
pub struct MatchingQueue {
    batch_cycles: usize,
    batches: VecDeque<MatchingBatch>,
    capacity_batches: usize,
}

impl MatchingQueue {
    /// Creates a queue of at most `capacity_batches` batches, each covering
    /// `batch_cycles` code cycles.  The paper sets
    /// `c_bat = √(2·c_win)` to minimise total buffer memory.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(batch_cycles: usize, capacity_batches: usize) -> Self {
        assert!(
            batch_cycles > 0 && capacity_batches > 0,
            "queue dimensions must be positive"
        );
        Self {
            batch_cycles,
            batches: VecDeque::new(),
            capacity_batches,
        }
    }

    /// The batch length `c_bat` that minimises total buffer memory for a
    /// detection window of `c_win` cycles (Sec. VI-C): `√(2·c_win)`.
    pub fn optimal_batch_cycles(window: usize) -> usize {
        ((2.0 * window as f64).sqrt().round() as usize).max(1)
    }

    /// Pushes a batch summary, evicting the oldest when full.
    pub fn push(&mut self, batch: MatchingBatch) -> Option<MatchingBatch> {
        self.batches.push_back(batch);
        if self.batches.len() > self.capacity_batches {
            self.batches.pop_front()
        } else {
            None
        }
    }

    /// Number of stored batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The batches whose window overlaps cycles at or after `cycle`, newest
    /// first — the ones whose Pauli-frame effect must be reverted on
    /// rollback.
    pub fn batches_to_revert(&self, cycle: u64) -> Vec<MatchingBatch> {
        self.batches
            .iter()
            .rev()
            .take_while(|b| b.start_cycle + b.cycles as u64 > cycle)
            .copied()
            .collect()
    }

    /// Removes the batches returned by
    /// [`MatchingQueue::batches_to_revert`] and returns how many were
    /// dropped.
    pub fn revert_from(&mut self, cycle: u64) -> usize {
        let n = self.batches_to_revert(cycle).len();
        for _ in 0..n {
            self.batches.pop_back();
        }
        n
    }

    /// The configured batch length `c_bat`.
    pub fn batch_cycles(&self) -> usize {
        self.batch_cycles
    }
}

/// A pending `op_expand` request in the expansion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionRequest {
    /// The logical qubit to expand.
    pub target: LogicalQubitId,
    /// Cycle at which the request was enqueued (detection time).
    pub requested_cycle: u64,
    /// Number of cycles the expansion should be kept.
    pub keep_cycles: u64,
}

/// The expansion queue: `op_expand` requests produced by the anomaly
/// detection unit, consumed by the instruction scheduler.
#[derive(Debug, Clone, Default)]
pub struct ExpansionQueue {
    pending: VecDeque<ExpansionRequest>,
}

impl ExpansionQueue {
    /// Creates an empty expansion queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request.  If a request for the same qubit is already
    /// pending, its keep time is extended instead (Sec. V-B).
    pub fn request(&mut self, request: ExpansionRequest) {
        if let Some(existing) = self.pending.iter_mut().find(|r| r.target == request.target) {
            existing.keep_cycles = existing.keep_cycles.max(
                request.requested_cycle + request.keep_cycles
                    - existing.requested_cycle.min(request.requested_cycle),
            );
        } else {
            self.pending.push_back(request);
        }
    }

    /// Pops the oldest pending request.
    pub fn pop(&mut self) -> Option<ExpansionRequest> {
        self.pending.pop_front()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no request is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syndrome_queue_evicts_oldest_layer() {
        let mut q = SyndromeQueue::new(3, 2);
        assert!(q.is_empty());
        assert!(q.push(vec![true, false]).is_none());
        assert!(q.push(vec![false, false]).is_none());
        assert!(q.push(vec![false, true]).is_none());
        let evicted = q.push(vec![true, true]).expect("queue overflows");
        assert_eq!(evicted, vec![true, false]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.oldest_layer_cycle(), 1);
        assert_eq!(q.size_bits(), 6);
        assert_eq!(q.layers().count(), 3);
    }

    #[test]
    fn syndrome_queue_window_since_cycle() {
        let mut q = SyndromeQueue::new(4, 1);
        for i in 0..6 {
            q.push(vec![i % 2 == 0]);
        }
        // layers for cycles 2..=5 are retained
        assert_eq!(q.oldest_layer_cycle(), 2);
        let since4 = q.layers_since(4);
        assert_eq!(since4.len(), 2);
        assert_eq!(since4[0], vec![true]); // cycle 4
        assert_eq!(since4[1], vec![false]); // cycle 5
    }

    #[test]
    fn matching_queue_batches_and_rollback() {
        let mut q = MatchingQueue::new(10, 8);
        for i in 0..5u64 {
            q.push(MatchingBatch {
                start_cycle: i * 10,
                cycles: 10,
                cut_parity: i % 2 == 0,
                num_matches: 3,
            });
        }
        assert_eq!(q.len(), 5);
        let revert = q.batches_to_revert(25);
        // batches starting at 40, 30, 20 overlap cycles ≥ 25
        assert_eq!(revert.len(), 3);
        assert_eq!(revert[0].start_cycle, 40);
        assert_eq!(q.revert_from(25), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.batch_cycles(), 10);
    }

    #[test]
    fn optimal_batch_size_matches_the_paper_formula() {
        // c_bat = √(2 · c_win); for c_win = 300 this is ≈ 24.5 → 24
        assert_eq!(MatchingQueue::optimal_batch_cycles(300), 24);
        assert_eq!(MatchingQueue::optimal_batch_cycles(50), 10);
        assert!(MatchingQueue::optimal_batch_cycles(0) >= 1);
    }

    #[test]
    fn expansion_queue_merges_repeated_requests() {
        let mut q = ExpansionQueue::new();
        let q0 = LogicalQubitId(0);
        q.request(ExpansionRequest {
            target: q0,
            requested_cycle: 100,
            keep_cycles: 1_000,
        });
        q.request(ExpansionRequest {
            target: q0,
            requested_cycle: 500,
            keep_cycles: 1_000,
        });
        assert_eq!(q.len(), 1, "repeated requests for the same qubit merge");
        let merged = q.pop().unwrap();
        assert!(
            merged.keep_cycles >= 1_400,
            "keep time was extended, got {}",
            merged.keep_cycles
        );
        assert!(q.is_empty());
    }

    #[test]
    fn expansion_queue_is_fifo_for_distinct_qubits() {
        let mut q = ExpansionQueue::new();
        q.request(ExpansionRequest {
            target: LogicalQubitId(3),
            requested_cycle: 10,
            keep_cycles: 100,
        });
        q.request(ExpansionRequest {
            target: LogicalQubitId(1),
            requested_cycle: 20,
            keep_cycles: 100,
        });
        assert_eq!(q.pop().unwrap().target, LogicalQubitId(3));
        assert_eq!(q.pop().unwrap().target, LogicalQubitId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "unexpected layer width")]
    fn syndrome_queue_rejects_wrong_width() {
        let mut q = SyndromeQueue::new(2, 3);
        q.push(vec![true]);
    }
}
