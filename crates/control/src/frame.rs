//! The Pauli frame and its rollback history.

use crate::isa::LogicalQubitId;
use std::collections::HashMap;

/// A single update applied to the Pauli frame, recorded so it can be
/// reverted during decoder re-execution (the *instruction history buffer* of
/// Fig. 1 stores these together with the matching-queue batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameUpdate {
    /// The logical qubit whose frame is toggled.
    pub qubit: LogicalQubitId,
    /// Toggle of the logical `X` correction bit.
    pub flip_x: bool,
    /// Toggle of the logical `Z` correction bit.
    pub flip_z: bool,
    /// Code cycle at which the update was applied.
    pub cycle: u64,
}

/// The Pauli frame: software-tracked logical Pauli corrections per logical
/// qubit (Sec. II-A).  All updates are recorded, so the frame can be rolled
/// back to any earlier cycle — the operation the paper relies on being
/// reversible (Sec. VI-C).
#[derive(Debug, Clone, Default)]
pub struct PauliFrame {
    corrections: HashMap<LogicalQubitId, (bool, bool)>,
    history: Vec<FrameUpdate>,
}

impl PauliFrame {
    /// Creates an empty frame (identity correction on every qubit).
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(x, z)` correction bits of a logical qubit.
    pub fn correction(&self, qubit: LogicalQubitId) -> (bool, bool) {
        self.corrections
            .get(&qubit)
            .copied()
            .unwrap_or((false, false))
    }

    /// Applies (and records) an update.
    pub fn apply(&mut self, update: FrameUpdate) {
        let entry = self
            .corrections
            .entry(update.qubit)
            .or_insert((false, false));
        entry.0 ^= update.flip_x;
        entry.1 ^= update.flip_z;
        self.history.push(update);
    }

    /// Convenience: toggle the logical `X` correction of `qubit` at `cycle`
    /// (the typical consequence of a decoded `Z`-sector matching crossing the
    /// cut).
    pub fn flip_x(&mut self, qubit: LogicalQubitId, cycle: u64) {
        self.apply(FrameUpdate {
            qubit,
            flip_x: true,
            flip_z: false,
            cycle,
        });
    }

    /// Convenience: toggle the logical `Z` correction of `qubit` at `cycle`.
    pub fn flip_z(&mut self, qubit: LogicalQubitId, cycle: u64) {
        self.apply(FrameUpdate {
            qubit,
            flip_x: false,
            flip_z: true,
            cycle,
        });
    }

    /// Tracks a logical Hadamard on `qubit`: the `X` and `Z` correction bits
    /// swap.  Recorded as a pair of updates so rollback works uniformly.
    pub fn apply_hadamard(&mut self, qubit: LogicalQubitId, cycle: u64) {
        let (x, z) = self.correction(qubit);
        if x != z {
            // swapping differing bits toggles both
            self.apply(FrameUpdate {
                qubit,
                flip_x: true,
                flip_z: true,
                cycle,
            });
        } else {
            // record a no-op marker so the history reflects the instruction
            self.apply(FrameUpdate {
                qubit,
                flip_x: false,
                flip_z: false,
                cycle,
            });
        }
    }

    /// The number of recorded updates.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The full update history in application order.
    pub fn history(&self) -> &[FrameUpdate] {
        &self.history
    }

    /// Rolls the frame back to the state it had *before* any update with
    /// `cycle >= rollback_cycle` was applied, returning the reverted updates
    /// (most recent first).
    pub fn rollback_to(&mut self, rollback_cycle: u64) -> Vec<FrameUpdate> {
        let mut reverted = Vec::new();
        while let Some(last) = self.history.last().copied() {
            if last.cycle < rollback_cycle {
                break;
            }
            // updates are involutions, so re-applying undoes them
            let entry = self.corrections.entry(last.qubit).or_insert((false, false));
            entry.0 ^= last.flip_x;
            entry.1 ^= last.flip_z;
            self.history.pop();
            reverted.push(last);
        }
        reverted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q0: LogicalQubitId = LogicalQubitId(0);
    const Q1: LogicalQubitId = LogicalQubitId(1);

    #[test]
    fn corrections_accumulate_by_xor() {
        let mut frame = PauliFrame::new();
        assert_eq!(frame.correction(Q0), (false, false));
        frame.flip_x(Q0, 1);
        frame.flip_z(Q0, 2);
        assert_eq!(frame.correction(Q0), (true, true));
        frame.flip_x(Q0, 3);
        assert_eq!(frame.correction(Q0), (false, true));
        assert_eq!(frame.correction(Q1), (false, false));
        assert_eq!(frame.history_len(), 3);
    }

    #[test]
    fn hadamard_swaps_the_correction_bits() {
        let mut frame = PauliFrame::new();
        frame.flip_x(Q0, 1);
        frame.apply_hadamard(Q0, 2);
        assert_eq!(frame.correction(Q0), (false, true));
        frame.apply_hadamard(Q0, 3);
        assert_eq!(frame.correction(Q0), (true, false));
        // Hadamard on a symmetric frame is a no-op but still recorded.
        let before = frame.history_len();
        frame.flip_z(Q0, 4); // now (true, true)
        frame.apply_hadamard(Q0, 5);
        assert_eq!(frame.correction(Q0), (true, true));
        assert_eq!(frame.history_len(), before + 2);
    }

    #[test]
    fn rollback_restores_earlier_state() {
        let mut frame = PauliFrame::new();
        frame.flip_x(Q0, 10);
        frame.flip_z(Q1, 20);
        frame.flip_x(Q0, 30);
        frame.flip_x(Q1, 40);
        let snapshot_q0 = frame.correction(Q0);
        let _ = snapshot_q0;
        let reverted = frame.rollback_to(30);
        assert_eq!(reverted.len(), 2);
        assert_eq!(frame.correction(Q0), (true, false));
        assert_eq!(frame.correction(Q1), (false, true));
        assert_eq!(frame.history_len(), 2);
        // rolling back to cycle 0 empties the history entirely
        frame.rollback_to(0);
        assert_eq!(frame.correction(Q0), (false, false));
        assert_eq!(frame.correction(Q1), (false, false));
        assert_eq!(frame.history_len(), 0);
    }

    #[test]
    fn rollback_then_reapply_is_identity() {
        let mut frame = PauliFrame::new();
        frame.flip_x(Q0, 5);
        frame.flip_z(Q0, 7);
        let reverted = frame.rollback_to(6);
        assert_eq!(frame.correction(Q0), (true, false));
        for update in reverted.into_iter().rev() {
            frame.apply(update);
        }
        assert_eq!(frame.correction(Q0), (true, true));
    }
}
