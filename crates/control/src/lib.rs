//! The FTQC control unit of the Q3DE architecture (Fig. 1 of the paper).
//!
//! The classical side of the architecture consists of
//!
//! * an instruction set and decoder/scheduler ([`isa`], [`scheduler`]),
//! * the qubit plane abstraction with block allocation, lattice-surgery
//!   routing, anomalous blocks and code expansion ([`plane`]),
//! * the Pauli frame and classical register file with rollback support
//!   ([`frame`], [`registers`]),
//! * the syndrome / matching / expansion queues whose sizing Table III
//!   accounts for, and the spare-budget expansion arbiter that grants
//!   `op_expand` requests against the chip's shared spare pool ([`queues`]),
//! * the instruction-throughput simulation behind Fig. 10
//!   ([`scheduler::ThroughputSimulator`]).
//!
//! The quantum-mechanical behaviour (noise, decoding, logical error rates)
//! lives in the `q3de-sim` crate; this crate models the control-plane
//! resources, timing and bookkeeping.

#![deny(missing_docs)]

pub mod frame;
pub mod isa;
pub mod plane;
pub mod queues;
pub mod registers;
pub mod scheduler;

pub use frame::{FrameUpdate, PauliFrame};
pub use isa::{Instruction, LogicalQubitId, RegisterId};
pub use plane::{BlockCoord, BlockState, QubitPlane};
pub use queues::{
    ExpansionArbiter, ExpansionBid, ExpansionDecision, ExpansionGrant, ExpansionQueue,
    MatchingQueue, SyndromeQueue,
};
pub use registers::{ClassicalRegisterFile, RegisterEntry};
pub use scheduler::{
    ArchitectureMode, Scheduler, ThroughputConfig, ThroughputReport, ThroughputSimulator,
};
