//! The succinct FTQC instruction set of Table II.

use std::fmt;

/// Identifier of a logical qubit slot on the qubit plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalQubitId(pub usize);

/// Identifier of a classical register entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegisterId(pub usize);

/// The succinct FTQC instruction set of Table II, extended with the
/// Q3DE-specific `op_expand`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Initialise a logical qubit in `|0⟩`.
    InitZero {
        /// Target logical qubit.
        target: LogicalQubitId,
    },
    /// Initialise a logical qubit in a noisy `|A⟩` magic state.
    InitA {
        /// Target logical qubit.
        target: LogicalQubitId,
    },
    /// Initialise a logical qubit in a noisy `|Y⟩` state.
    InitY {
        /// Target logical qubit.
        target: LogicalQubitId,
    },
    /// Logical Hadamard.
    OpH {
        /// Target logical qubit.
        target: LogicalQubitId,
    },
    /// Measure a logical qubit in the `Z` basis.
    MeasZ {
        /// Target logical qubit.
        target: LogicalQubitId,
        /// Register receiving the raw outcome.
        register: RegisterId,
    },
    /// Measure two logical qubits in the `ZZ` basis (lattice surgery).
    MeasZz {
        /// First logical qubit.
        a: LogicalQubitId,
        /// Second logical qubit.
        b: LogicalQubitId,
        /// Register receiving the raw outcome.
        register: RegisterId,
    },
    /// Send an error-corrected measurement value to the host CPU.
    Read {
        /// Register whose corrected value is requested.
        register: RegisterId,
    },
    /// Expand the code distance of a logical qubit to mitigate an MBBE.
    OpExpand {
        /// Target logical qubit.
        target: LogicalQubitId,
        /// Number of code cycles the expansion is kept.
        keep_cycles: u64,
    },
}

impl Instruction {
    /// The logical qubits the instruction acts on (empty for `read`).
    pub fn targets(&self) -> Vec<LogicalQubitId> {
        match *self {
            Instruction::InitZero { target }
            | Instruction::InitA { target }
            | Instruction::InitY { target }
            | Instruction::OpH { target }
            | Instruction::MeasZ { target, .. }
            | Instruction::OpExpand { target, .. } => vec![target],
            Instruction::MeasZz { a, b, .. } => vec![a, b],
            Instruction::Read { .. } => Vec::new(),
        }
    }

    /// The register the instruction writes or reads, if any.
    pub fn register(&self) -> Option<RegisterId> {
        match *self {
            Instruction::MeasZ { register, .. }
            | Instruction::MeasZz { register, .. }
            | Instruction::Read { register } => Some(register),
            _ => None,
        }
    }

    /// Whether the instruction produces a measurement outcome.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Instruction::MeasZ { .. } | Instruction::MeasZz { .. })
    }

    /// Whether the instruction requires vacant routing/expansion space on the
    /// qubit plane in addition to its target blocks.
    pub fn needs_ancilla_space(&self) -> bool {
        matches!(
            self,
            Instruction::MeasZz { .. } | Instruction::OpExpand { .. }
        )
    }

    /// Latency of the instruction in code cycles when executed on logical
    /// qubits of distance `d` (most fault-tolerant operations take of order
    /// `d` rounds; `read` is a classical operation).
    pub fn latency_cycles(&self, code_distance: usize) -> u64 {
        match self {
            Instruction::Read { .. } => 0,
            Instruction::InitZero { .. }
            | Instruction::InitA { .. }
            | Instruction::InitY { .. } => 1,
            Instruction::OpH { .. } => code_distance as u64,
            Instruction::MeasZ { .. } => 1,
            Instruction::MeasZz { .. } => code_distance as u64,
            Instruction::OpExpand { .. } => code_distance as u64,
        }
    }

    /// Whether two instructions commute for scheduling purposes: they act on
    /// disjoint logical qubits and do not touch the same register.
    pub fn commutes_with(&self, other: &Instruction) -> bool {
        let my_targets = self.targets();
        let other_targets = other.targets();
        let qubits_disjoint = my_targets.iter().all(|t| !other_targets.contains(t));
        let registers_disjoint = match (self.register(), other.register()) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        };
        qubits_disjoint && registers_disjoint
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::InitZero { target } => write!(f, "init_zero q{}", target.0),
            Instruction::InitA { target } => write!(f, "init_A q{}", target.0),
            Instruction::InitY { target } => write!(f, "init_Y q{}", target.0),
            Instruction::OpH { target } => write!(f, "op_H q{}", target.0),
            Instruction::MeasZ { target, register } => {
                write!(f, "meas_Z q{} -> r{}", target.0, register.0)
            }
            Instruction::MeasZz { a, b, register } => {
                write!(f, "meas_ZZ q{} q{} -> r{}", a.0, b.0, register.0)
            }
            Instruction::Read { register } => write!(f, "read r{}", register.0),
            Instruction::OpExpand {
                target,
                keep_cycles,
            } => {
                write!(f, "op_expand q{} for {keep_cycles} cycles", target.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q0: LogicalQubitId = LogicalQubitId(0);
    const Q1: LogicalQubitId = LogicalQubitId(1);
    const Q2: LogicalQubitId = LogicalQubitId(2);
    const R0: RegisterId = RegisterId(0);
    const R1: RegisterId = RegisterId(1);

    #[test]
    fn targets_and_registers() {
        let m = Instruction::MeasZz {
            a: Q0,
            b: Q1,
            register: R0,
        };
        assert_eq!(m.targets(), vec![Q0, Q1]);
        assert_eq!(m.register(), Some(R0));
        assert!(m.is_measurement());
        assert!(m.needs_ancilla_space());
        let r = Instruction::Read { register: R0 };
        assert!(r.targets().is_empty());
        assert!(!r.is_measurement());
    }

    #[test]
    fn latencies_scale_with_distance() {
        let m = Instruction::MeasZz {
            a: Q0,
            b: Q1,
            register: R0,
        };
        assert_eq!(m.latency_cycles(11), 11);
        assert_eq!(m.latency_cycles(22), 22);
        assert_eq!(Instruction::Read { register: R0 }.latency_cycles(11), 0);
        assert_eq!(Instruction::InitZero { target: Q0 }.latency_cycles(11), 1);
        assert_eq!(Instruction::OpH { target: Q0 }.latency_cycles(7), 7);
        assert_eq!(
            Instruction::OpExpand {
                target: Q0,
                keep_cycles: 100
            }
            .latency_cycles(9),
            9
        );
    }

    #[test]
    fn commutation_is_based_on_disjoint_resources() {
        let a = Instruction::MeasZz {
            a: Q0,
            b: Q1,
            register: R0,
        };
        let b = Instruction::OpH { target: Q2 };
        let c = Instruction::OpH { target: Q1 };
        let d = Instruction::MeasZ {
            target: Q2,
            register: R0,
        };
        assert!(a.commutes_with(&b));
        assert!(!a.commutes_with(&c));
        assert!(!a.commutes_with(&d), "same register conflicts");
        assert!(
            !b.commutes_with(&d),
            "same target qubit conflicts even without a register"
        );
        assert!(
            d.commutes_with(&Instruction::OpH { target: Q1 }),
            "register vs no register is fine for disjoint qubits"
        );
        let read = Instruction::Read { register: R1 };
        assert!(a.commutes_with(&read));
    }

    #[test]
    fn display_is_assembly_like() {
        let m = Instruction::MeasZz {
            a: Q0,
            b: Q1,
            register: R0,
        };
        assert_eq!(format!("{m}"), "meas_ZZ q0 q1 -> r0");
        let e = Instruction::OpExpand {
            target: Q2,
            keep_cycles: 50,
        };
        assert_eq!(format!("{e}"), "op_expand q2 for 50 cycles");
    }
}
