//! The classical register file holding logical measurement outcomes.

use crate::isa::RegisterId;
use std::collections::HashMap;

/// One logical measurement outcome held by the control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterEntry {
    /// The raw (possibly not yet corrected) outcome bit.
    pub value: bool,
    /// The code cycle at which the measurement completed.
    pub measured_cycle: u64,
    /// Whether the Pauli frame has caught up and the value is final.
    pub error_corrected: bool,
}

/// The classical register file of Fig. 1.
///
/// Measurement instructions write raw outcomes marked "not error corrected";
/// once the decoding pipeline catches up with the measurement cycle the entry
/// is corrected (possibly flipping the bit) and `read` instructions may
/// forward it to the host CPU.  Decoder re-execution rolls entries measured
/// after the MBBE onset back to the uncorrected state (Sec. VI-C); entries
/// already consumed by a `read` abort the rollback instead.
#[derive(Debug, Clone, Default)]
pub struct ClassicalRegisterFile {
    entries: HashMap<RegisterId, RegisterEntry>,
    read_by_host: Vec<RegisterId>,
}

impl ClassicalRegisterFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a raw measurement outcome.
    pub fn write_raw(&mut self, register: RegisterId, value: bool, measured_cycle: u64) {
        self.entries.insert(
            register,
            RegisterEntry {
                value,
                measured_cycle,
                error_corrected: false,
            },
        );
    }

    /// The current entry of a register, if any.
    pub fn entry(&self, register: RegisterId) -> Option<RegisterEntry> {
        self.entries.get(&register).copied()
    }

    /// Marks a register as error-corrected, optionally flipping its value
    /// according to the Pauli frame.
    ///
    /// # Panics
    ///
    /// Panics if the register has never been written.
    pub fn correct(&mut self, register: RegisterId, flip: bool) {
        let entry = self
            .entries
            .get_mut(&register)
            .unwrap_or_else(|| panic!("register {register:?} was never written"));
        entry.value ^= flip;
        entry.error_corrected = true;
    }

    /// Executes a `read`: returns the corrected value, or `None` when the
    /// entry is missing or not yet corrected (the host must retry later).
    pub fn read(&mut self, register: RegisterId) -> Option<bool> {
        let entry = self.entries.get(&register)?;
        if !entry.error_corrected {
            return None;
        }
        self.read_by_host.push(register);
        Some(entry.value)
    }

    /// Registers whose corrected values have already been sent to the host.
    pub fn read_registers(&self) -> &[RegisterId] {
        &self.read_by_host
    }

    /// Whether a rollback to `rollback_cycle` is possible: no register
    /// measured at or after that cycle has already been read by the host.
    pub fn can_rollback_to(&self, rollback_cycle: u64) -> bool {
        !self.read_by_host.iter().any(|r| {
            self.entries
                .get(r)
                .map(|e| e.measured_cycle >= rollback_cycle)
                .unwrap_or(false)
        })
    }

    /// Rolls back: every entry measured at or after `rollback_cycle` is
    /// marked "not error corrected" again.  Returns the number of entries
    /// affected, or `None` (and changes nothing) when the rollback must be
    /// aborted because the host already consumed one of them.
    pub fn rollback_to(&mut self, rollback_cycle: u64) -> Option<usize> {
        if !self.can_rollback_to(rollback_cycle) {
            return None;
        }
        let mut affected = 0;
        for entry in self.entries.values_mut() {
            if entry.measured_cycle >= rollback_cycle && entry.error_corrected {
                entry.error_corrected = false;
                affected += 1;
            }
        }
        Some(affected)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: RegisterId = RegisterId(0);
    const R1: RegisterId = RegisterId(1);

    #[test]
    fn raw_values_cannot_be_read_until_corrected() {
        let mut file = ClassicalRegisterFile::new();
        file.write_raw(R0, true, 100);
        assert_eq!(file.read(R0), None);
        file.correct(R0, false);
        assert_eq!(file.read(R0), Some(true));
        assert_eq!(file.read_registers(), &[R0]);
        assert_eq!(file.len(), 1);
        assert!(!file.is_empty());
    }

    #[test]
    fn correction_can_flip_the_outcome() {
        let mut file = ClassicalRegisterFile::new();
        file.write_raw(R0, true, 10);
        file.correct(R0, true);
        assert_eq!(file.read(R0), Some(false));
    }

    #[test]
    fn rollback_reverts_corrections_after_the_cut() {
        let mut file = ClassicalRegisterFile::new();
        file.write_raw(R0, true, 50);
        file.write_raw(R1, false, 150);
        file.correct(R0, false);
        file.correct(R1, false);
        let affected = file.rollback_to(100).expect("rollback allowed");
        assert_eq!(affected, 1);
        assert!(file.entry(R0).unwrap().error_corrected);
        assert!(!file.entry(R1).unwrap().error_corrected);
        assert_eq!(file.read(R1), None);
    }

    #[test]
    fn rollback_aborts_when_host_already_consumed_an_entry() {
        let mut file = ClassicalRegisterFile::new();
        file.write_raw(R0, true, 200);
        file.correct(R0, false);
        assert_eq!(file.read(R0), Some(true));
        assert!(!file.can_rollback_to(150));
        assert_eq!(file.rollback_to(150), None);
        // the entry stays corrected
        assert!(file.entry(R0).unwrap().error_corrected);
        // a rollback cut after the read is still fine
        assert!(file.can_rollback_to(300));
        assert_eq!(file.rollback_to(300), Some(0));
    }

    #[test]
    fn missing_register_reads_as_none() {
        let mut file = ClassicalRegisterFile::new();
        assert_eq!(file.read(R0), None);
        assert!(file.entry(R0).is_none());
        assert!(file.is_empty());
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn correcting_missing_register_panics() {
        let mut file = ClassicalRegisterFile::new();
        file.correct(R0, false);
    }
}
