//! Instruction scheduling and the Fig. 10 throughput simulation.

use crate::isa::{Instruction, LogicalQubitId, RegisterId};
use crate::plane::{BlockCoord, QubitPlane};
use rand::Rng;
use std::collections::VecDeque;

/// Which architecture variant the throughput simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchitectureMode {
    /// No MBBEs occur at all (the "MBBE free" reference line).
    MbbeFree,
    /// The baseline mitigation: the default code distance is doubled, so
    /// every instruction takes `2d` cycles, and MBBEs need no avoidance.
    Baseline,
    /// Q3DE: the default distance stays `d`; MBBE-struck routing blocks are
    /// avoided for the burst duration and struck logical qubits are expanded
    /// (blocking their expansion space) for the burst duration.
    Q3de,
}

/// An instruction currently executing on the plane.
#[derive(Debug, Clone)]
struct InFlight {
    instruction: Instruction,
    completes_at: u64,
}

/// A greedy in-order-issue instruction scheduler over a [`QubitPlane`].
///
/// Each cycle the scheduler retires finished instructions and then walks the
/// head of the instruction queue (up to `issue_window` entries), issuing
/// every instruction that commutes with all earlier still-queued
/// instructions, whose target qubits are idle and whose routing/expansion
/// space is available.
#[derive(Debug, Clone)]
pub struct Scheduler {
    plane: QubitPlane,
    code_distance: usize,
    latency_factor: u64,
    issue_window: usize,
    queue: VecDeque<Instruction>,
    in_flight: Vec<InFlight>,
    completed: usize,
    cycle: u64,
}

impl Scheduler {
    /// Creates a scheduler over `plane` for logical qubits of distance
    /// `code_distance`.  `latency_factor` scales every instruction latency
    /// (2 for the doubled-distance baseline).
    pub fn new(plane: QubitPlane, code_distance: usize, latency_factor: u64) -> Self {
        Self {
            plane,
            code_distance,
            latency_factor: latency_factor.max(1),
            issue_window: 32,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            completed: 0,
            cycle: 0,
        }
    }

    /// Sets how many queued instructions are examined per cycle.
    pub fn with_issue_window(mut self, issue_window: usize) -> Self {
        self.issue_window = issue_window.max(1);
        self
    }

    /// Pushes an instruction to the back of the instruction queue.
    pub fn enqueue(&mut self, instruction: Instruction) {
        self.queue.push_back(instruction);
    }

    /// The qubit plane (for inspection and for injecting anomalies).
    pub fn plane_mut(&mut self) -> &mut QubitPlane {
        &mut self.plane
    }

    /// The qubit plane, immutable.
    pub fn plane(&self) -> &QubitPlane {
        &self.plane
    }

    /// Number of completed instructions.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of queued (not yet issued) instructions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of instructions currently executing.
    pub fn executing(&self) -> usize {
        self.in_flight.len()
    }

    /// The current code cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether all enqueued instructions have completed.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    fn busy_qubits(&self) -> Vec<LogicalQubitId> {
        self.in_flight
            .iter()
            .flat_map(|f| f.instruction.targets())
            .collect()
    }

    /// Advances the scheduler by one code cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        // retire finished instructions and expire block reservations
        let before = self.in_flight.len();
        self.in_flight.retain(|f| f.completes_at > cycle);
        self.completed += before - self.in_flight.len();
        self.plane.expire(cycle);

        // issue ready instructions
        let mut busy = self.busy_qubits();
        let mut issued_indices = Vec::new();
        let mut blocked_targets: Vec<LogicalQubitId> = Vec::new();
        let window = self.issue_window.min(self.queue.len());
        for idx in 0..window {
            let candidate = self.queue[idx];
            // in-order constraint: must commute with every earlier queued
            // instruction that has not been issued this cycle
            let commutes = (0..idx)
                .filter(|i| !issued_indices.contains(i))
                .all(|i| candidate.commutes_with(&self.queue[i]));
            if !commutes {
                blocked_targets.extend(candidate.targets());
                continue;
            }
            let targets = candidate.targets();
            if targets
                .iter()
                .any(|t| busy.contains(t) || blocked_targets.contains(t))
            {
                blocked_targets.extend(targets);
                continue;
            }
            if !self.try_reserve_resources(&candidate, cycle) {
                blocked_targets.extend(candidate.targets());
                continue;
            }
            let latency = candidate.latency_cycles(self.code_distance) * self.latency_factor;
            self.in_flight.push(InFlight {
                instruction: candidate,
                completes_at: cycle + latency.max(1),
            });
            busy.extend(candidate.targets());
            issued_indices.push(idx);
        }
        // remove issued instructions from the queue (highest index first)
        issued_indices.sort_unstable_by(|a, b| b.cmp(a));
        for idx in issued_indices {
            self.queue.remove(idx);
        }
        self.cycle += 1;
    }

    fn try_reserve_resources(&mut self, instruction: &Instruction, cycle: u64) -> bool {
        let latency = instruction.latency_cycles(self.code_distance) * self.latency_factor;
        let until = cycle + latency.max(1);
        match instruction {
            Instruction::MeasZz { a, b, .. } => match self.plane.find_route(*a, *b, cycle) {
                Some(route) => {
                    for block in route {
                        self.plane.reserve(block, cycle, until);
                    }
                    true
                }
                None => false,
            },
            Instruction::OpExpand {
                target,
                keep_cycles,
            } => {
                if self.plane.can_expand(*target, cycle) {
                    self.plane
                        .expand(*target, cycle, cycle + keep_cycles.max(&1));
                    true
                } else {
                    false
                }
            }
            _ => true,
        }
    }
}

/// Configuration of the Fig. 10 throughput experiment.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Blocks per side of the qubit plane (11 in the paper → 25 logical
    /// qubits).
    pub plane_size: usize,
    /// Default code distance `d`.
    pub code_distance: usize,
    /// Number of `meas_ZZ` instructions to execute.
    pub num_instructions: usize,
    /// Probability that an MBBE starts on a given block during `d` code
    /// cycles (`d · τ_cyc · f_ano`).
    pub mbbe_probability_per_block_per_d_cycles: f64,
    /// MBBE duration in units of `d` code cycles (100 or 1000 in Fig. 10).
    pub mbbe_duration_d_cycles: u64,
    /// The architecture variant being simulated.
    pub mode: ArchitectureMode,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
}

impl ThroughputConfig {
    /// The paper's Fig. 10 setting for a given mode and MBBE frequency.
    pub fn fig10(mode: ArchitectureMode, mbbe_probability: f64, duration_d_cycles: u64) -> Self {
        Self {
            plane_size: 11,
            code_distance: 11,
            num_instructions: 10_000,
            mbbe_probability_per_block_per_d_cycles: mbbe_probability,
            mbbe_duration_d_cycles: duration_d_cycles,
            mode,
            max_cycles: 40_000_000,
        }
    }
}

/// Result of a throughput simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Instructions completed.
    pub completed: usize,
    /// Code cycles elapsed.
    pub cycles: u64,
    /// Average completed instructions per `d` code cycles — the y-axis of
    /// Fig. 10.
    pub instructions_per_d_cycles: f64,
}

/// The Fig. 10 experiment: schedule a stream of random two-qubit lattice
/// surgery measurements on a 25-logical-qubit plane while cosmic rays strike
/// blocks at random, and measure the achieved instruction throughput.
#[derive(Debug, Clone)]
pub struct ThroughputSimulator {
    config: ThroughputConfig,
}

impl ThroughputSimulator {
    /// Creates the simulator.
    pub fn new(config: ThroughputConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThroughputConfig {
        &self.config
    }

    /// Runs the simulation with the given randomness source.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ThroughputReport {
        let cfg = &self.config;
        let d = cfg.code_distance;
        let latency_factor = match cfg.mode {
            ArchitectureMode::Baseline => 2,
            _ => 1,
        };
        let plane = QubitPlane::checkerboard(cfg.plane_size, cfg.plane_size);
        let qubits = plane.logical_qubits();
        let mut scheduler = Scheduler::new(plane, d, latency_factor);

        for i in 0..cfg.num_instructions {
            let a = qubits[rng.gen_range(0..qubits.len())];
            let b = loop {
                let candidate = qubits[rng.gen_range(0..qubits.len())];
                if candidate != a {
                    break candidate;
                }
            };
            scheduler.enqueue(Instruction::MeasZz {
                a,
                b,
                register: RegisterId(i),
            });
        }

        let per_cycle_probability = cfg.mbbe_probability_per_block_per_d_cycles / d as f64;
        let duration = cfg.mbbe_duration_d_cycles * d as u64;
        let apply_mbbes = cfg.mode == ArchitectureMode::Q3de;

        while !scheduler.is_idle() && scheduler.cycle() < cfg.max_cycles {
            let cycle = scheduler.cycle();
            if apply_mbbes && per_cycle_probability > 0.0 {
                let rows = scheduler.plane().rows();
                let cols = scheduler.plane().cols();
                for row in 0..rows {
                    for col in 0..cols {
                        if rng.gen::<f64>() < per_cycle_probability {
                            let block = BlockCoord::new(row, col);
                            match scheduler.plane().state(block) {
                                crate::plane::BlockState::Logical(id) => {
                                    scheduler.enqueue(Instruction::OpExpand {
                                        target: id,
                                        keep_cycles: duration,
                                    });
                                }
                                _ => scheduler
                                    .plane_mut()
                                    .mark_anomalous(block, cycle + duration),
                            }
                        }
                    }
                }
            }
            scheduler.step();
        }

        let cycles = scheduler.cycle().max(1);
        let completed = scheduler.completed();
        ThroughputReport {
            completed,
            cycles,
            instructions_per_d_cycles: completed as f64 * d as f64 / cycles as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn meas(a: usize, b: usize, r: usize) -> Instruction {
        Instruction::MeasZz {
            a: LogicalQubitId(a),
            b: LogicalQubitId(b),
            register: RegisterId(r),
        }
    }

    #[test]
    fn independent_instructions_run_in_parallel() {
        let plane = QubitPlane::checkerboard(7, 7); // 9 logical qubits
        let mut s = Scheduler::new(plane, 5, 1);
        s.enqueue(meas(0, 1, 0));
        s.enqueue(meas(2, 3, 1));
        s.step();
        assert_eq!(s.executing(), 2, "disjoint meas_ZZ issue in the same cycle");
        for _ in 0..10 {
            s.step();
        }
        assert_eq!(s.completed(), 2);
        assert!(s.is_idle());
    }

    #[test]
    fn conflicting_instructions_serialise() {
        let plane = QubitPlane::checkerboard(5, 5);
        let mut s = Scheduler::new(plane, 5, 1);
        s.enqueue(meas(0, 1, 0));
        s.enqueue(meas(1, 2, 1)); // shares qubit 1
        s.step();
        assert_eq!(s.executing(), 1);
        // first completes after 5 cycles, then the second issues
        for _ in 0..20 {
            s.step();
        }
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn doubled_latency_factor_halves_throughput() {
        let run = |factor: u64| {
            let plane = QubitPlane::checkerboard(5, 5);
            let mut s = Scheduler::new(plane, 4, factor);
            for i in 0..8 {
                s.enqueue(meas(i % 4, (i + 1) % 4, i));
            }
            let mut cycles = 0u64;
            while !s.is_idle() && cycles < 10_000 {
                s.step();
                cycles += 1;
            }
            cycles
        };
        let single = run(1);
        let double = run(2);
        assert!(
            double > single,
            "doubled latency ({double}) must be slower than ({single})"
        );
        assert!((double as f64 / single as f64) > 1.5);
    }

    #[test]
    fn throughput_simulation_modes_are_ordered() {
        // With frequent MBBEs of long duration, MBBE-free ≥ Q3DE; and Q3DE at
        // realistic (rare) MBBE rates beats the always-doubled baseline.
        let shots = |mode, prob| {
            let config = ThroughputConfig {
                plane_size: 7,
                code_distance: 5,
                num_instructions: 80,
                mbbe_probability_per_block_per_d_cycles: prob,
                mbbe_duration_d_cycles: 100,
                mode,
                max_cycles: 50_000,
            };
            ThroughputSimulator::new(config)
                .run(&mut rng(9))
                .instructions_per_d_cycles
        };
        let free = shots(ArchitectureMode::MbbeFree, 0.0);
        let q3de_rare = shots(ArchitectureMode::Q3de, 1e-5);
        let baseline = shots(ArchitectureMode::Baseline, 1e-5);
        assert!(free > 0.0);
        assert!(
            q3de_rare <= free * 1.05,
            "Q3DE ({q3de_rare}) cannot beat the MBBE-free bound ({free})"
        );
        assert!(
            q3de_rare > baseline,
            "at rare MBBE rates Q3DE ({q3de_rare}) must beat the doubled-distance baseline ({baseline})"
        );
    }

    #[test]
    fn frequent_mbbes_degrade_q3de_throughput() {
        // Averaged over several seeds: a single short run is too noisy to
        // order the two regimes reliably.
        let run = |prob, seed| {
            let config = ThroughputConfig {
                plane_size: 7,
                code_distance: 5,
                num_instructions: 50,
                mbbe_probability_per_block_per_d_cycles: prob,
                mbbe_duration_d_cycles: 100,
                mode: ArchitectureMode::Q3de,
                max_cycles: 60_000,
            };
            ThroughputSimulator::new(config).run(&mut rng(seed))
        };
        let seeds = [11u64, 12, 13, 14, 15, 16, 17, 18];
        let mean = |prob| {
            seeds
                .iter()
                .map(|&s| run(prob, s).instructions_per_d_cycles)
                .sum::<f64>()
                / seeds.len() as f64
        };
        let rare = mean(1e-6);
        let frequent = mean(2e-2);
        assert!(
            frequent <= rare,
            "frequent strikes ({frequent}) should not beat rare strikes ({rare})"
        );
        assert_eq!(run(1e-6, 11).completed, 50);
    }

    #[test]
    fn fig10_config_matches_paper_parameters() {
        let cfg = ThroughputConfig::fig10(ArchitectureMode::Q3de, 1e-5, 1000);
        assert_eq!(cfg.plane_size, 11);
        assert_eq!(cfg.num_instructions, 10_000);
        assert_eq!(cfg.mbbe_duration_d_cycles, 1000);
        assert_eq!(cfg.mode, ArchitectureMode::Q3de);
    }
}
