//! The cosmic-ray arrival process that generates anomalous regions.

use crate::{AnomalousRegion, PhysicalParams};
use q3de_lattice::Coord;
use rand::Rng;

/// A single cosmic-ray strike produced by the [`CosmicRayProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosmicRayEvent {
    /// The code cycle of the strike.
    pub cycle: u64,
    /// The anomalous region created by the strike.
    pub region: AnomalousRegion,
}

/// A Poisson arrival process of cosmic-ray strikes on a rectangular qubit
/// plane.
///
/// Each code cycle a strike occurs with probability
/// `f_ano · τ_cyc` (see [`PhysicalParams::anomaly_probability_per_cycle`]);
/// the strike position is uniform over the plane and creates an
/// [`AnomalousRegion`] of the configured size, duration and error rate.
#[derive(Debug, Clone)]
pub struct CosmicRayProcess {
    params: PhysicalParams,
    plane_rows: i32,
    plane_cols: i32,
    current_cycle: u64,
    events: Vec<CosmicRayEvent>,
}

impl CosmicRayProcess {
    /// Creates a process over a plane of `plane_rows × plane_cols` grid
    /// sites.
    ///
    /// # Panics
    ///
    /// Panics if the plane is smaller than a single anomalous region.
    pub fn new(params: PhysicalParams, plane_rows: i32, plane_cols: i32) -> Self {
        let extent = 2 * params.anomaly_size as i32;
        assert!(
            plane_rows >= extent && plane_cols >= extent,
            "plane {plane_rows}×{plane_cols} is smaller than one anomalous region ({extent} sites)"
        );
        Self {
            params,
            plane_rows,
            plane_cols,
            current_cycle: 0,
            events: Vec::new(),
        }
    }

    /// The physical parameters driving the process.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The current code cycle (number of [`CosmicRayProcess::advance`] calls).
    pub fn current_cycle(&self) -> u64 {
        self.current_cycle
    }

    /// All strikes generated so far.
    pub fn events(&self) -> &[CosmicRayEvent] {
        &self.events
    }

    /// The regions still active at the current cycle.
    pub fn active_regions(&self) -> impl Iterator<Item = &AnomalousRegion> {
        let cycle = self.current_cycle;
        self.events
            .iter()
            .map(|e| &e.region)
            .filter(move |r| r.active_at(cycle))
    }

    /// Advances the process by one code cycle, possibly generating a strike.
    /// Returns the new strike, if any.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<CosmicRayEvent> {
        let cycle = self.current_cycle;
        self.current_cycle += 1;
        let p_strike = self.params.anomaly_probability_per_cycle();
        if rng.gen::<f64>() >= p_strike {
            return None;
        }
        let event = CosmicRayEvent {
            cycle,
            region: self.sample_region(cycle, rng),
        };
        self.events.push(event);
        Some(event)
    }

    /// Advances the process by `cycles` code cycles and returns the strikes
    /// generated.
    pub fn advance_by<R: Rng + ?Sized>(&mut self, cycles: u64, rng: &mut R) -> Vec<CosmicRayEvent> {
        (0..cycles).filter_map(|_| self.advance(rng)).collect()
    }

    /// Samples a region for a strike at `cycle` with a uniformly random
    /// origin such that the region fits on the plane.
    pub fn sample_region<R: Rng + ?Sized>(&self, cycle: u64, rng: &mut R) -> AnomalousRegion {
        let extent = 2 * self.params.anomaly_size as i32;
        let max_row = self.plane_rows - extent;
        let max_col = self.plane_cols - extent;
        let row = if max_row > 0 {
            rng.gen_range(0..=max_row)
        } else {
            0
        };
        let col = if max_col > 0 {
            rng.gen_range(0..=max_col)
        } else {
            0
        };
        AnomalousRegion::new(
            Coord::new(row, col),
            self.params.anomaly_size,
            cycle,
            self.params.anomaly_duration_cycles(),
            self.params.anomalous_error_rate,
        )
    }

    /// Expected number of strikes over `cycles` code cycles.
    pub fn expected_strikes(&self, cycles: u64) -> f64 {
        self.params.anomaly_probability_per_cycle() * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fast_params() -> PhysicalParams {
        PhysicalParams {
            physical_error_rate: 1e-3,
            anomalous_error_rate: 0.5,
            anomaly_size: 2,
            anomaly_frequency_hz: 100.0,
            anomaly_duration_s: 50e-6,
            code_cycle_s: 1e-6,
        }
    }

    #[test]
    fn strike_count_matches_poisson_expectation() {
        let params = fast_params();
        let mut process = CosmicRayProcess::new(params, 41, 41);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cycles = 200_000;
        let events = process.advance_by(cycles, &mut rng);
        let expected = process.expected_strikes(cycles);
        assert!((expected - 20.0).abs() < 1e-9);
        // Poisson(20): 3σ ≈ 13.4
        assert!(
            (events.len() as f64 - expected).abs() < 15.0,
            "observed {} strikes, expected ≈ {expected}",
            events.len()
        );
        assert_eq!(process.current_cycle(), cycles);
        assert_eq!(process.events().len(), events.len());
    }

    #[test]
    fn regions_fit_on_the_plane() {
        let params = fast_params();
        let process = CosmicRayProcess::new(params, 21, 31);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..500 {
            let r = process.sample_region(0, &mut rng);
            let extent = 2 * params.anomaly_size as i32;
            assert!(r.origin().row >= 0 && r.origin().row + extent <= 21);
            assert!(r.origin().col >= 0 && r.origin().col + extent <= 31);
            assert_eq!(r.duration_cycles(), 50);
            assert_eq!(r.anomalous_rate(), 0.5);
        }
    }

    #[test]
    fn active_regions_expire() {
        let params = fast_params();
        let mut process = CosmicRayProcess::new(params, 41, 41);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // run until we get at least one strike
        while process.events().is_empty() {
            process.advance(&mut rng);
        }
        assert!(process.active_regions().count() >= 1);
        // advance well past the duration
        process.advance_by(10 * params.anomaly_duration_cycles(), &mut rng);
        let last_event_cycle = process.events().last().unwrap().cycle;
        if process.current_cycle() > last_event_cycle + params.anomaly_duration_cycles() {
            assert_eq!(process.active_regions().count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than one anomalous region")]
    fn tiny_plane_is_rejected() {
        let _ = CosmicRayProcess::new(fast_params(), 2, 2);
    }

    #[test]
    fn zero_frequency_never_strikes() {
        let mut params = fast_params();
        params.anomaly_frequency_hz = 0.0;
        let mut process = CosmicRayProcess::new(params, 41, 41);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let events = process.advance_by(10_000, &mut rng);
        assert!(events.is_empty());
    }
}
