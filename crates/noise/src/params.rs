//! Physical parameters: code-cycle timing and the cosmic-ray observations of
//! McEwen et al. that the paper adopts as its "realistic assumption".

/// Device- and experiment-level physical parameters.
///
/// All rates are *per code cycle* unless the field name says otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParams {
    /// Physical Pauli error rate `p` of a normal qubit per code cycle.
    pub physical_error_rate: f64,
    /// Physical Pauli error rate `p_ano` of an anomalous qubit per code cycle.
    pub anomalous_error_rate: f64,
    /// Linear size `d_ano` of an anomalous region, in data-qubit units.
    pub anomaly_size: usize,
    /// Cosmic-ray strike frequency `f_ano` in Hz for the monitored region.
    pub anomaly_frequency_hz: f64,
    /// Duration `τ_ano` of an anomalous region in seconds.
    pub anomaly_duration_s: f64,
    /// Duration of one code cycle in seconds (`τ_cyc`, typically 1 µs).
    pub code_cycle_s: f64,
}

impl PhysicalParams {
    /// Probability that a cosmic ray arrives during a single code cycle.
    ///
    /// ```
    /// use q3de_noise::PhysicalParams;
    /// let p = PhysicalParams::mcewen();
    /// assert!((p.anomaly_probability_per_cycle() - 1e-6).abs() < 1e-9);
    /// ```
    pub fn anomaly_probability_per_cycle(&self) -> f64 {
        self.anomaly_frequency_hz * self.code_cycle_s
    }

    /// Duration of an anomalous region expressed in code cycles.
    pub fn anomaly_duration_cycles(&self) -> u64 {
        (self.anomaly_duration_s / self.code_cycle_s).round() as u64
    }

    /// Fraction of time the plane spends with at least one active anomalous
    /// region, `f_ano · τ_ano`, assuming strikes never overlap (Eq. (1)).
    pub fn anomaly_duty_cycle(&self) -> f64 {
        (self.anomaly_frequency_hz * self.anomaly_duration_s).min(1.0)
    }

    /// The effective logical error rate of Eq. (1):
    /// `(1 − f·τ)·p_L + f·τ·p_L,ano`.
    pub fn effective_logical_error_rate(&self, p_l: f64, p_l_ano: f64) -> f64 {
        let duty = self.anomaly_duty_cycle();
        (1.0 - duty) * p_l + duty * p_l_ano
    }

    /// The multiplicative increase of the logical error rate caused by MBBEs,
    /// `f·τ·p_L,ano / p_L` (the "about 100×" factor quoted in Sec. I).
    pub fn mbbe_increase_ratio(&self, p_l: f64, p_l_ano: f64) -> f64 {
        self.anomaly_duty_cycle() * p_l_ano / p_l
    }

    /// The parameters observed on Google's Sycamore chip by McEwen et al.,
    /// scaled as the paper does for a logical-qubit-sized patch
    /// (`f_ano = 1 Hz`, `τ_ano = 25 ms`, `d_ano = 4`, `p_ano = 0.5`,
    /// 1 µs code cycle).
    pub fn mcewen() -> Self {
        McEwenParams::default().into()
    }
}

impl Default for PhysicalParams {
    fn default() -> Self {
        Self::mcewen()
    }
}

/// The raw cosmic-ray observations reported by McEwen et al. (Sycamore),
/// before the paper's ×10 frequency scaling for many-qubit logical patches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEwenParams {
    /// Strike frequency observed in a 26-qubit region: once per ten seconds.
    pub raw_frequency_hz: f64,
    /// The paper multiplies the frequency by ten because a long-term logical
    /// qubit uses several hundred physical qubits.
    pub frequency_scale: f64,
    /// Decay constant of the anomalous state, ≈ 25 ms.
    pub duration_s: f64,
    /// Anomaly size in data-qubit units, ≈ 4.
    pub anomaly_size: usize,
    /// Error rate of anomalous qubits used in the paper's simulations.
    pub anomalous_error_rate: f64,
    /// Baseline physical error rate per cycle used in most experiments.
    pub physical_error_rate: f64,
    /// Code-cycle duration, 1 µs for superconducting qubits.
    pub code_cycle_s: f64,
}

impl Default for McEwenParams {
    fn default() -> Self {
        Self {
            raw_frequency_hz: 0.1,
            frequency_scale: 10.0,
            duration_s: 25e-3,
            anomaly_size: 4,
            anomalous_error_rate: 0.5,
            physical_error_rate: 1e-3,
            code_cycle_s: 1e-6,
        }
    }
}

impl From<McEwenParams> for PhysicalParams {
    fn from(m: McEwenParams) -> Self {
        PhysicalParams {
            physical_error_rate: m.physical_error_rate,
            anomalous_error_rate: m.anomalous_error_rate,
            anomaly_size: m.anomaly_size,
            anomaly_frequency_hz: m.raw_frequency_hz * m.frequency_scale,
            anomaly_duration_s: m.duration_s,
            code_cycle_s: m.code_cycle_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcewen_defaults_match_the_paper() {
        let p = PhysicalParams::mcewen();
        assert_eq!(p.anomaly_size, 4);
        assert_eq!(p.anomalous_error_rate, 0.5);
        assert!((p.anomaly_frequency_hz - 1.0).abs() < 1e-12);
        assert!((p.anomaly_duration_s - 25e-3).abs() < 1e-12);
        assert_eq!(p.anomaly_duration_cycles(), 25_000);
    }

    #[test]
    fn duty_cycle_and_effective_rate() {
        let p = PhysicalParams::mcewen();
        // f·τ = 1 Hz × 25 ms = 2.5 %
        assert!((p.anomaly_duty_cycle() - 0.025).abs() < 1e-12);
        // If the anomalous logical error rate is 1000× larger, the effective
        // rate increases by roughly 25×: 0.975·p_L + 0.025·1000·p_L ≈ 26·p_L.
        let p_l = 1e-9;
        let eff = p.effective_logical_error_rate(p_l, 1000.0 * p_l);
        assert!(eff > 20.0 * p_l && eff < 30.0 * p_l, "effective rate {eff}");
        assert!((p.mbbe_increase_ratio(p_l, 1000.0 * p_l) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_saturates_at_one() {
        let mut p = PhysicalParams::mcewen();
        p.anomaly_frequency_hz = 1000.0;
        assert_eq!(p.anomaly_duty_cycle(), 1.0);
    }

    #[test]
    fn per_cycle_probability_is_tiny() {
        let p = PhysicalParams::mcewen();
        let per_cycle = p.anomaly_probability_per_cycle();
        assert!(per_cycle > 0.0 && per_cycle < 1e-5);
    }
}
