//! Noise models for the Q3DE reproduction.
//!
//! The paper evaluates the architecture under a *phenomenological* stochastic
//! Pauli noise model (Sec. VII-A):
//!
//! * at the beginning of every code cycle each data **and** ancilla qubit
//!   suffers a Pauli `X`, `Y` or `Z` error, each with probability `p/2`
//!   (normal qubits) or `p_ano/2` (anomalous qubits);
//! * cosmic-ray strikes create *anomalous regions* — square patches of
//!   qubits whose error rate is temporarily raised to `p_ano` for
//!   `τ_ano ≈ 25 ms`;
//! * strikes arrive as a Poisson process with frequency `f_ano`
//!   (≈ 0.1–1 Hz for a logical-qubit-sized patch, McEwen et al.).
//!
//! This crate provides:
//!
//! * [`PhysicalParams`] / [`McEwenParams`] — the experimentally observed
//!   constants the paper adopts,
//! * [`AnomalousRegion`] — a spatially and temporally bounded high-error
//!   region,
//! * [`NoiseModel`] — per-qubit, per-cycle error-rate lookup and Pauli
//!   sampling,
//! * [`CosmicRayProcess`] — the stochastic arrival process generating
//!   anomalous regions on a qubit plane,
//! * [`ChipStrike`] / [`ChipCosmicRayProcess`] — strikes placed in *chip*
//!   coordinates that fan out into per-patch [`AnomalousRegion`]s (including
//!   bursts straddling patch boundaries).
//!
//! # Example
//!
//! ```
//! use q3de_noise::{AnomalousRegion, NoiseModel};
//! use q3de_lattice::Coord;
//!
//! let mut model = NoiseModel::uniform(1e-3);
//! model.add_anomaly(AnomalousRegion::new(Coord::new(4, 4), 2, 10, 100, 0.5));
//! // Inside the anomalous window and region the rate is p_ano.
//! assert_eq!(model.rate_at(Coord::new(5, 5), 50), 0.5);
//! // Outside the window the rate falls back to the base rate.
//! assert_eq!(model.rate_at(Coord::new(5, 5), 200), 1e-3);
//! ```

#![deny(missing_docs)]

mod chip;
mod cosmic_ray;
mod model;
mod params;
mod region;

pub use chip::{ChipCosmicRayProcess, ChipStrike, ChipStrikeEvent};
pub use cosmic_ray::{CosmicRayEvent, CosmicRayProcess};
pub use model::NoiseModel;
pub use params::{McEwenParams, PhysicalParams};
pub use region::AnomalousRegion;
