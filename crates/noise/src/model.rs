//! The per-cycle stochastic Pauli noise model.

use crate::AnomalousRegion;
use q3de_lattice::{Coord, Pauli, PauliString};
use rand::Rng;

/// A phenomenological Pauli noise model with a uniform base rate and zero or
/// more [`AnomalousRegion`]s layered on top.
///
/// Following Sec. VII-A of the paper, at the start of each code cycle every
/// qubit at rate `r` suffers a Pauli `X`, `Y` or `Z` error each with
/// probability `r/2` (mutually exclusive draws), so the marginal probability
/// of an `X`-component flip — what the `Z`-syndrome decoding problem sees —
/// is `P(X) + P(Y) = r`, and likewise for the `Z` component.
#[derive(Debug, Clone, Default)]
pub struct NoiseModel {
    base_rate: f64,
    anomalies: Vec<AnomalousRegion>,
}

impl NoiseModel {
    /// A model with uniform per-cycle rate `base_rate` and no anomalies.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate` is not in `[0, 2/3]` (the mutually exclusive
    /// `X/Y/Z` draws each of probability `r/2` must sum to at most one).
    pub fn uniform(base_rate: f64) -> Self {
        assert!(
            (0.0..=2.0 / 3.0).contains(&base_rate),
            "base rate {base_rate} outside [0, 2/3]"
        );
        Self {
            base_rate,
            anomalies: Vec::new(),
        }
    }

    /// The base (normal-qubit) error rate `p`.
    pub fn base_rate(&self) -> f64 {
        self.base_rate
    }

    /// Adds an anomalous region to the model.
    pub fn add_anomaly(&mut self, region: AnomalousRegion) {
        self.anomalies.push(region);
    }

    /// Adds an anomalous region, builder-style.
    pub fn with_anomaly(mut self, region: AnomalousRegion) -> Self {
        self.add_anomaly(region);
        self
    }

    /// Removes all anomalous regions.
    pub fn clear_anomalies(&mut self) {
        self.anomalies.clear();
    }

    /// The anomalous regions currently registered.
    pub fn anomalies(&self) -> &[AnomalousRegion] {
        &self.anomalies
    }

    /// The anomalous regions active at `cycle`.
    pub fn active_anomalies(&self, cycle: u64) -> impl Iterator<Item = &AnomalousRegion> {
        self.anomalies.iter().filter(move |r| r.active_at(cycle))
    }

    /// The Pauli error rate of the qubit at `coord` during `cycle`: the
    /// maximum of the base rate and the rates of all covering active regions.
    pub fn rate_at(&self, coord: Coord, cycle: u64) -> f64 {
        let mut rate = self.base_rate;
        for region in &self.anomalies {
            if region.affects(coord, cycle) {
                rate = rate.max(region.anomalous_rate());
            }
        }
        rate
    }

    /// Whether `coord` lies inside an active anomalous region at `cycle`.
    pub fn is_anomalous(&self, coord: Coord, cycle: u64) -> bool {
        self.anomalies.iter().any(|r| r.affects(coord, cycle))
    }

    /// Marginal probability that a qubit with Pauli rate `rate` suffers a
    /// flip visible to one decoding sector (an `X`- or `Z`-component error):
    /// `P(X) + P(Y) = rate`.
    pub fn flip_probability(rate: f64) -> f64 {
        rate
    }

    /// Samples the Pauli error suffered by the qubit at `coord` during
    /// `cycle`: `X`, `Y`, `Z` each with probability `rate/2` and identity
    /// otherwise.
    pub fn sample_pauli<R: Rng + ?Sized>(&self, coord: Coord, cycle: u64, rng: &mut R) -> Pauli {
        let rate = self.rate_at(coord, cycle);
        Self::sample_pauli_with_rate(rate, rng)
    }

    /// Samples a Pauli for an explicit rate (used by callers that cache the
    /// per-qubit rate).
    ///
    /// Exactly one uniform draw is consumed *regardless of the rate* — a
    /// zero-rate qubit burns its draw and returns identity — so the RNG call
    /// order of a shot is a pure function of the qubit schedule, never of
    /// the noise model.  Replays with different rates (e.g. `p = 0` outside
    /// an active anomaly) therefore stay stream-aligned.
    pub fn sample_pauli_with_rate<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> Pauli {
        let u: f64 = rng.gen();
        if rate <= 0.0 {
            return Pauli::I;
        }
        let half = rate / 2.0;
        if u < half {
            Pauli::X
        } else if u < rate {
            Pauli::Y
        } else if u < rate + half {
            Pauli::Z
        } else {
            Pauli::I
        }
    }

    /// Samples one cycle of errors over the given qubits and returns them as
    /// a sparse [`PauliString`].
    pub fn sample_cycle_errors<R, I>(&self, qubits: I, cycle: u64, rng: &mut R) -> PauliString
    where
        R: Rng + ?Sized,
        I: IntoIterator<Item = Coord>,
    {
        let mut errors = PauliString::new();
        for q in qubits {
            let p = self.sample_pauli(q, cycle, rng);
            if !p.is_identity() {
                errors.apply(q, p);
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_rate_everywhere() {
        let m = NoiseModel::uniform(0.01);
        assert_eq!(m.rate_at(Coord::new(0, 0), 0), 0.01);
        assert_eq!(m.rate_at(Coord::new(100, -3), 12345), 0.01);
        assert!(!m.is_anomalous(Coord::new(0, 0), 0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 2/3]")]
    fn overlarge_base_rate_is_rejected() {
        let _ = NoiseModel::uniform(0.8);
    }

    #[test]
    fn anomaly_overrides_rate_only_when_active_and_inside() {
        let region = AnomalousRegion::new(Coord::new(4, 4), 2, 10, 20, 0.5);
        let m = NoiseModel::uniform(1e-3).with_anomaly(region);
        assert_eq!(m.rate_at(Coord::new(5, 5), 15), 0.5);
        assert_eq!(m.rate_at(Coord::new(5, 5), 5), 1e-3);
        assert_eq!(m.rate_at(Coord::new(50, 50), 15), 1e-3);
        assert!(m.is_anomalous(Coord::new(5, 5), 15));
        assert_eq!(m.active_anomalies(15).count(), 1);
        assert_eq!(m.active_anomalies(40).count(), 0);
    }

    #[test]
    fn overlapping_anomalies_take_the_maximum_rate() {
        let a = AnomalousRegion::new(Coord::new(0, 0), 4, 0, 100, 0.2);
        let b = AnomalousRegion::new(Coord::new(0, 0), 2, 0, 100, 0.5);
        let m = NoiseModel::uniform(1e-3).with_anomaly(a).with_anomaly(b);
        assert_eq!(m.rate_at(Coord::new(1, 1), 10), 0.5);
        assert_eq!(m.rate_at(Coord::new(6, 6), 10), 0.2);
    }

    #[test]
    fn sampled_pauli_frequencies_match_rates() {
        let m = NoiseModel::uniform(0.2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let p = m.sample_pauli(Coord::new(0, 0), 0, &mut rng);
            let idx = match p {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            };
            counts[idx] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (frac(counts[1]) - 0.1).abs() < 0.01,
            "X fraction {}",
            frac(counts[1])
        );
        assert!(
            (frac(counts[2]) - 0.1).abs() < 0.01,
            "Y fraction {}",
            frac(counts[2])
        );
        assert!(
            (frac(counts[3]) - 0.1).abs() < 0.01,
            "Z fraction {}",
            frac(counts[3])
        );
        assert!(
            (frac(counts[0]) - 0.7).abs() < 0.01,
            "I fraction {}",
            frac(counts[0])
        );
    }

    #[test]
    fn zero_rate_never_errors() {
        let m = NoiseModel::uniform(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(m.sample_pauli(Coord::new(0, 0), 0, &mut rng), Pauli::I);
        }
    }

    #[test]
    fn zero_rate_consumes_the_same_draws_as_positive_rate() {
        // The draw schedule must be rate-independent: sampling the same
        // qubit sequence under p = 0 and under p > 0 leaves the RNG in the
        // same state, so zero-rate qubits cannot shift the stream of later
        // (e.g. anomalous) qubits.
        let zero = NoiseModel::uniform(0.0);
        let noisy = NoiseModel::uniform(0.2);
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for i in 0..100 {
            let _ = zero.sample_pauli(Coord::new(i, 0), 0, &mut a);
            let _ = noisy.sample_pauli(Coord::new(i, 0), 0, &mut b);
        }
        assert_eq!(
            a.next_u64(),
            b.next_u64(),
            "zero- and positive-rate sampling must consume identical draws"
        );
    }

    #[test]
    fn pauli_marginals_at_the_paper_anomalous_rate_and_at_the_boundary() {
        // At rate r each of X, Y, Z occurs with probability r/2; the
        // largest admissible rate is 2/3, where the three sectors exhaust
        // the unit interval.  Rates above 2/3 would silently skew the Z
        // marginal (the cumulative cutoffs exceed 1), which is why both
        // NoiseModel::uniform and AnomalousRegion::new reject them.
        for &rate in &[0.5, 2.0 / 3.0] {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let n = 200_000;
            let mut counts = [0usize; 4];
            for _ in 0..n {
                let idx = match NoiseModel::sample_pauli_with_rate(rate, &mut rng) {
                    Pauli::I => 0,
                    Pauli::X => 1,
                    Pauli::Y => 2,
                    Pauli::Z => 3,
                };
                counts[idx] += 1;
            }
            let frac = |c: usize| c as f64 / n as f64;
            let half = rate / 2.0;
            for (sector, &count) in ["X", "Y", "Z"].iter().zip(&counts[1..]) {
                assert!(
                    (frac(count) - half).abs() < 0.01,
                    "rate {rate}: {sector} marginal {} should be {half}",
                    frac(count)
                );
            }
            assert!(
                (frac(counts[0]) - (1.0 - 1.5 * rate)).abs() < 0.01,
                "rate {rate}: I marginal {}",
                frac(counts[0])
            );
        }
    }

    #[test]
    fn sample_cycle_errors_is_sparse() {
        let m = NoiseModel::uniform(0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let qubits: Vec<Coord> = (0..20)
            .flat_map(|r| (0..20).map(move |c| Coord::new(r, c)))
            .collect();
        let errors = m.sample_cycle_errors(qubits.iter().copied(), 0, &mut rng);
        // ~400 qubits at 7.5 % total error rate → ≈ 30 errors; far fewer than 400.
        assert!(
            errors.weight() > 5 && errors.weight() < 100,
            "weight {}",
            errors.weight()
        );
    }

    #[test]
    fn clear_anomalies_restores_uniform_model() {
        let mut m = NoiseModel::uniform(1e-3).with_anomaly(AnomalousRegion::new(
            Coord::new(0, 0),
            4,
            0,
            1000,
            0.5,
        ));
        assert!(m.is_anomalous(Coord::new(0, 0), 10));
        m.clear_anomalies();
        assert!(!m.is_anomalous(Coord::new(0, 0), 10));
        assert!(m.anomalies().is_empty());
    }

    #[test]
    fn flip_probability_equals_rate() {
        assert_eq!(NoiseModel::flip_probability(0.01), 0.01);
    }
}
