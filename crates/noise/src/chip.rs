//! Chip-coordinate cosmic-ray strikes and their fan-out into per-patch
//! anomalous regions.
//!
//! The single-patch [`CosmicRayProcess`](crate::CosmicRayProcess) places
//! strikes directly in a patch's local frame.  At the system level the
//! strike position is a *chip* coordinate: one burst can straddle the gap
//! between patches and raise the error rate of several logical qubits at
//! once (the regime of the paper's Secs. V–VII system evaluation).
//! [`ChipStrike::fan_out`] converts one chip-frame burst into the
//! patch-local [`AnomalousRegion`]s each per-patch noise model and decoder
//! consumes; [`ChipCosmicRayProcess`] is the Poisson arrival process over
//! the whole chip plane.

use crate::{AnomalousRegion, PhysicalParams};
use q3de_lattice::{ChipLayout, Coord, PatchIndex};
use rand::Rng;

/// A single cosmic-ray strike in chip coordinates.
///
/// The strike covers the `2·size × 2·size` square of chip sites whose
/// top-left corner is `origin` — the same footprint convention as
/// [`AnomalousRegion`], but anchored on the chip's global site grid instead
/// of a patch's local one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipStrike {
    origin: Coord,
    size: usize,
    onset_cycle: u64,
    duration_cycles: u64,
    anomalous_rate: f64,
}

impl ChipStrike {
    /// Creates a strike of anomaly size `size` (data-qubit units) whose
    /// top-left chip site is `origin`, active during
    /// `[onset_cycle, onset_cycle + duration_cycles)` with per-cycle error
    /// rate `anomalous_rate` inside.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `anomalous_rate` is not a probability (the
    /// checks of [`AnomalousRegion::new`]).
    pub fn new(
        origin: Coord,
        size: usize,
        onset_cycle: u64,
        duration_cycles: u64,
        anomalous_rate: f64,
    ) -> Self {
        // Validate through the single-patch constructor so the two footprint
        // types can never drift apart.
        let _ = AnomalousRegion::new(origin, size, onset_cycle, duration_cycles, anomalous_rate);
        Self {
            origin,
            size,
            onset_cycle,
            duration_cycles,
            anomalous_rate,
        }
    }

    /// The top-left chip site of the strike.
    pub fn origin(&self) -> Coord {
        self.origin
    }

    /// The anomaly size `d_ano` in data-qubit units.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The strike footprint extent in sites, `2·size`.
    pub fn extent(&self) -> i32 {
        2 * self.size as i32
    }

    /// The code cycle at which the ray struck.
    pub fn onset_cycle(&self) -> u64 {
        self.onset_cycle
    }

    /// The number of code cycles the burst stays anomalous.
    pub fn duration_cycles(&self) -> u64 {
        self.duration_cycles
    }

    /// The per-cycle Pauli error rate inside the burst.
    pub fn anomalous_rate(&self) -> f64 {
        self.anomalous_rate
    }

    /// Samples a strike with a uniformly random origin such that the strike
    /// square fits on the chip plane (clamped to the origin when the plane
    /// is smaller than one footprint) — the placement kernel shared by
    /// [`ChipCosmicRayProcess`] and the chip-level memory experiments.
    pub fn sample_uniform<R: Rng + ?Sized>(
        chip: &ChipLayout,
        size: usize,
        onset_cycle: u64,
        duration_cycles: u64,
        anomalous_rate: f64,
        rng: &mut R,
    ) -> Self {
        let extent = 2 * size as i32;
        let max_row = chip.chip_rows() - extent;
        let max_col = chip.chip_cols() - extent;
        let row = if max_row > 0 {
            rng.gen_range(0..=max_row)
        } else {
            0
        };
        let col = if max_col > 0 {
            rng.gen_range(0..=max_col)
        } else {
            0
        };
        Self::new(
            Coord::new(row, col),
            size,
            onset_cycle,
            duration_cycles,
            anomalous_rate,
        )
    }

    /// The strike as an [`AnomalousRegion`] in the chip frame.
    pub fn chip_region(&self) -> AnomalousRegion {
        AnomalousRegion::new(
            self.origin,
            self.size,
            self.onset_cycle,
            self.duration_cycles,
            self.anomalous_rate,
        )
    }

    /// Fans the strike out into per-patch anomalous regions: for every patch
    /// whose footprint intersects the strike square, the region is expressed
    /// in that patch's local frame (the frame `SurfaceCode`, the noise
    /// models and the decoders operate in).
    ///
    /// A region handed to a patch keeps the full strike footprint — it may
    /// hang off the patch edge (negative or beyond-grid local coordinates),
    /// which is harmless because region membership is pure geometry and only
    /// on-patch sites are ever sampled.  A strike entirely inside the
    /// inter-patch gap fans out to nothing.
    ///
    /// ```
    /// use q3de_lattice::{ChipLayout, Coord};
    /// use q3de_noise::ChipStrike;
    ///
    /// // Two distance-7 patches side by side (13-site footprints, pitch 14).
    /// let chip = ChipLayout::new(1, 2, 7, 0)?;
    /// // A size-4 burst spanning chip columns 9..17 straddles both patches.
    /// let strike = ChipStrike::new(Coord::new(2, 9), 4, 100, 1_000, 0.5);
    /// let fan_out = strike.fan_out(&chip);
    /// assert_eq!(fan_out.len(), 2);
    /// // Patch (0,0) sees the burst at its own column 9 …
    /// assert_eq!(fan_out[0].1.origin(), Coord::new(2, 9));
    /// // … patch (0,1) sees the same square hanging in from its left edge.
    /// assert_eq!(fan_out[1].1.origin(), Coord::new(2, -5));
    /// # Ok::<(), q3de_lattice::LatticeError>(())
    /// ```
    pub fn fan_out(&self, chip: &ChipLayout) -> Vec<(PatchIndex, AnomalousRegion)> {
        chip.patches_overlapping(self.origin, self.extent())
            .into_iter()
            .map(|patch| {
                let local = chip.to_local(patch, self.origin);
                let region = AnomalousRegion::new(
                    local,
                    self.size,
                    self.onset_cycle,
                    self.duration_cycles,
                    self.anomalous_rate,
                );
                (patch, region)
            })
            .collect()
    }
}

/// A chip-level cosmic-ray strike event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipStrikeEvent {
    /// The code cycle of the strike.
    pub cycle: u64,
    /// The strike, in chip coordinates.
    pub strike: ChipStrike,
}

/// A Poisson arrival process of cosmic-ray strikes over a whole chip.
///
/// The per-cycle strike probability is `N · f_ano · τ_cyc` where `N` is the
/// number of patches: the paper's `f_ano` is quoted per logical-qubit-sized
/// region, so a chip presenting `N` patches of silicon to the cosmic-ray
/// flux is hit `N` times as often.  Strike positions are uniform over the
/// chip plane (the strike square is kept fully on-chip).
#[derive(Debug, Clone)]
pub struct ChipCosmicRayProcess {
    params: PhysicalParams,
    chip: ChipLayout,
    current_cycle: u64,
    events: Vec<ChipStrikeEvent>,
}

impl ChipCosmicRayProcess {
    /// Creates a process over the plane of `chip`.
    ///
    /// # Panics
    ///
    /// Panics if the chip plane is smaller than a single strike footprint.
    pub fn new(params: PhysicalParams, chip: ChipLayout) -> Self {
        let extent = 2 * params.anomaly_size as i32;
        assert!(
            chip.chip_rows() >= extent && chip.chip_cols() >= extent,
            "chip plane {}×{} is smaller than one strike footprint ({extent} sites)",
            chip.chip_rows(),
            chip.chip_cols()
        );
        Self {
            params,
            chip,
            current_cycle: 0,
            events: Vec::new(),
        }
    }

    /// The physical parameters driving the process.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The chip layout the process runs over.
    pub fn chip(&self) -> &ChipLayout {
        &self.chip
    }

    /// The current code cycle.
    pub fn current_cycle(&self) -> u64 {
        self.current_cycle
    }

    /// All strikes generated so far.
    pub fn events(&self) -> &[ChipStrikeEvent] {
        &self.events
    }

    /// Per-cycle strike probability over the whole chip,
    /// `N · f_ano · τ_cyc`.
    pub fn strike_probability_per_cycle(&self) -> f64 {
        (self.chip.num_patches() as f64 * self.params.anomaly_probability_per_cycle()).min(1.0)
    }

    /// Expected number of strikes over `cycles` code cycles.
    pub fn expected_strikes(&self, cycles: u64) -> f64 {
        self.strike_probability_per_cycle() * cycles as f64
    }

    /// Advances the process by one code cycle, possibly generating a strike.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<ChipStrikeEvent> {
        let cycle = self.current_cycle;
        self.current_cycle += 1;
        if rng.gen::<f64>() >= self.strike_probability_per_cycle() {
            return None;
        }
        let event = ChipStrikeEvent {
            cycle,
            strike: self.sample_strike(cycle, rng),
        };
        self.events.push(event);
        Some(event)
    }

    /// Advances the process by `cycles` code cycles and returns the strikes
    /// generated.
    pub fn advance_by<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        rng: &mut R,
    ) -> Vec<ChipStrikeEvent> {
        (0..cycles).filter_map(|_| self.advance(rng)).collect()
    }

    /// Samples a strike at `cycle` with a uniformly random origin such that
    /// the strike square fits on the chip plane.
    pub fn sample_strike<R: Rng + ?Sized>(&self, cycle: u64, rng: &mut R) -> ChipStrike {
        ChipStrike::sample_uniform(
            &self.chip,
            self.params.anomaly_size,
            cycle,
            self.params.anomaly_duration_cycles(),
            self.params.anomalous_error_rate,
            rng,
        )
    }

    /// The strikes still active at the current cycle, fanned out per patch.
    pub fn active_fan_out(&self) -> Vec<(PatchIndex, AnomalousRegion)> {
        let cycle = self.current_cycle;
        self.events
            .iter()
            .filter(|e| e.strike.chip_region().active_at(cycle))
            .flat_map(|e| e.strike.fan_out(&self.chip))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> PhysicalParams {
        PhysicalParams {
            physical_error_rate: 1e-3,
            anomalous_error_rate: 0.5,
            anomaly_size: 2,
            anomaly_frequency_hz: 100.0,
            anomaly_duration_s: 50e-6,
            code_cycle_s: 1e-6,
        }
    }

    fn two_patch_chip() -> ChipLayout {
        ChipLayout::new(1, 2, 7, 0).unwrap()
    }

    #[test]
    fn straddling_strike_fans_out_to_both_patches() {
        let chip = two_patch_chip();
        // pitch 14; columns 11..15 cover patch 0 (cols 11, 12) and patch 1
        // (chip col 14 → local col 0).
        let strike = ChipStrike::new(Coord::new(4, 11), 2, 10, 100, 0.5);
        let fan_out = strike.fan_out(&chip);
        assert_eq!(fan_out.len(), 2);
        let (p0, r0) = fan_out[0];
        let (p1, r1) = fan_out[1];
        assert_eq!(p0, PatchIndex::new(0, 0));
        assert_eq!(r0.origin(), Coord::new(4, 11));
        assert_eq!(p1, PatchIndex::new(0, 1));
        assert_eq!(r1.origin(), Coord::new(4, -3));
        // The same chip site maps to the same physical burst in both frames.
        assert!(r0.contains(Coord::new(5, 12)));
        assert!(r1.contains(chip.to_local(p1, Coord::new(5, 14))));
        // Temporal footprint is preserved.
        assert!(r1.affects(Coord::new(5, 0), 50));
        assert!(!r1.affects(Coord::new(5, 0), 150));
    }

    #[test]
    fn interior_strike_fans_out_to_one_patch() {
        let chip = two_patch_chip();
        let strike = ChipStrike::new(Coord::new(4, 4), 2, 0, 100, 0.5);
        let fan_out = strike.fan_out(&chip);
        assert_eq!(fan_out.len(), 1);
        assert_eq!(fan_out[0].0, PatchIndex::new(0, 0));
        assert_eq!(fan_out[0].1.origin(), Coord::new(4, 4));
    }

    #[test]
    fn gap_strike_fans_out_to_nothing() {
        let chip = ChipLayout::new(1, 2, 7, 0).unwrap().with_gap(6).unwrap();
        // patch 0 covers cols 0..13, the gap cols 13..19: a size-1 strike at
        // col 13 (extent 2) sits fully inside the gap.
        let strike = ChipStrike::new(Coord::new(0, 13), 1, 0, 100, 0.5);
        assert!(strike.fan_out(&chip).is_empty());
    }

    #[test]
    fn chip_process_scales_rate_with_patch_count() {
        let chip = ChipLayout::new(2, 2, 5, 0).unwrap();
        let process = ChipCosmicRayProcess::new(params(), chip);
        let single = params().anomaly_probability_per_cycle();
        assert!((process.strike_probability_per_cycle() - 4.0 * single).abs() < 1e-15);
        // 4 patches × 1e-4/cycle × 1e6 cycles = 400 expected strikes.
        assert!((process.expected_strikes(1_000_000) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn chip_process_generates_on_chip_strikes() {
        let chip = ChipLayout::new(2, 2, 5, 0).unwrap();
        let rows = chip.chip_rows();
        let cols = chip.chip_cols();
        let mut fast = params();
        fast.anomaly_frequency_hz = 5_000.0; // 4 patches → p = 0.02/cycle
        let mut process = ChipCosmicRayProcess::new(fast, chip);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let events = process.advance_by(5_000, &mut rng);
        assert!(!events.is_empty());
        for e in &events {
            let o = e.strike.origin();
            assert!(o.row >= 0 && o.row + e.strike.extent() <= rows);
            assert!(o.col >= 0 && o.col + e.strike.extent() <= cols);
            // With gap 1 and extent 4 a strike can never sit fully inside a
            // gap, so every strike must hit at least one patch.
            assert!(!e.strike.fan_out(process.chip()).is_empty());
        }
        assert_eq!(process.current_cycle(), 5_000);
        assert_eq!(process.events().len(), events.len());
    }

    #[test]
    fn active_fan_out_expires() {
        let chip = ChipLayout::new(1, 2, 7, 0).unwrap();
        let mut fast = params();
        fast.anomaly_frequency_hz = 50_000.0; // 2 patches → p = 0.1/cycle
        let mut process = ChipCosmicRayProcess::new(fast, chip);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        while process.events().is_empty() {
            process.advance(&mut rng);
        }
        assert!(!process.active_fan_out().is_empty());
        // advance far past every strike's 50-cycle duration
        for _ in 0..10_000 {
            process.advance(&mut rng);
        }
        let last = process.events().last().unwrap();
        if process.current_cycle() > last.cycle + fast.anomaly_duration_cycles() {
            assert!(process.active_fan_out().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "smaller than one strike footprint")]
    fn tiny_chip_is_rejected() {
        let mut p = params();
        p.anomaly_size = 8;
        let _ = ChipCosmicRayProcess::new(p, ChipLayout::new(1, 1, 3, 0).unwrap());
    }

    #[test]
    #[should_panic(expected = "anomaly size must be positive")]
    fn zero_size_strike_is_rejected() {
        let _ = ChipStrike::new(Coord::new(0, 0), 0, 0, 1, 0.5);
    }
}
