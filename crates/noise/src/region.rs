//! Anomalous regions: the spatial and temporal footprint of a single MBBE.

use q3de_lattice::Coord;

/// A square region of the qubit plane whose physical error rate is raised to
/// `anomalous_rate` for a bounded window of code cycles.
///
/// The region covers the `2·size × 2·size` block of grid *sites* whose
/// top-left corner is `origin`; with `origin` on the data sublattice this is
/// exactly `size` columns and `size` rows of data qubits — the paper's
/// anomaly size `d_ano`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalousRegion {
    origin: Coord,
    size: usize,
    onset_cycle: u64,
    duration_cycles: u64,
    anomalous_rate: f64,
}

impl AnomalousRegion {
    /// Creates a region of anomaly size `size` (data-qubit units) whose
    /// top-left site is `origin`, active during
    /// `[onset_cycle, onset_cycle + duration_cycles)`, with per-cycle Pauli
    /// error rate `anomalous_rate` inside.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `anomalous_rate` is not in `[0, 2/3]`.  The
    /// rate domain matches `NoiseModel::uniform`: the sampler draws `X`,
    /// `Y`, `Z` each with probability `rate/2` from one uniform variate, so
    /// above `2/3` the cumulative cutoffs exceed one and the `Z` marginal
    /// silently saturates instead of reaching `rate/2`.
    pub fn new(
        origin: Coord,
        size: usize,
        onset_cycle: u64,
        duration_cycles: u64,
        anomalous_rate: f64,
    ) -> Self {
        assert!(size > 0, "anomaly size must be positive");
        assert!(
            (0.0..=2.0 / 3.0).contains(&anomalous_rate),
            "anomalous rate {anomalous_rate} outside [0, 2/3] \
             (X/Y/Z draws of rate/2 each must sum to at most one)"
        );
        Self {
            origin,
            size,
            onset_cycle,
            duration_cycles,
            anomalous_rate,
        }
    }

    /// The top-left grid site of the region.
    pub fn origin(&self) -> Coord {
        self.origin
    }

    /// The anomaly size `d_ano` in data-qubit units.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The code cycle at which the cosmic ray struck.
    pub fn onset_cycle(&self) -> u64 {
        self.onset_cycle
    }

    /// The number of code cycles the region stays anomalous.
    pub fn duration_cycles(&self) -> u64 {
        self.duration_cycles
    }

    /// The last cycle (exclusive) at which the region is active.
    pub fn end_cycle(&self) -> u64 {
        self.onset_cycle.saturating_add(self.duration_cycles)
    }

    /// The per-cycle Pauli error rate of qubits inside the region.
    pub fn anomalous_rate(&self) -> f64 {
        self.anomalous_rate
    }

    /// The geometric centre of the region (used to compare against the
    /// anomaly-detection unit's position estimate).
    ///
    /// The region spans `2·size` sites per axis starting at `origin`, so
    /// its true centre sits between sites at `origin + size − 1/2`; this
    /// rounds to the site `origin + size`, equidistant from both edges up
    /// to the half-site parity of an even extent.
    pub fn center(&self) -> Coord {
        let half = self.size as i32;
        self.origin.offset(half, half)
    }

    /// Whether the region covers grid site `coord`.
    ///
    /// ```
    /// use q3de_noise::AnomalousRegion;
    /// use q3de_lattice::Coord;
    /// let r = AnomalousRegion::new(Coord::new(2, 2), 2, 0, 10, 0.5);
    /// assert!(r.contains(Coord::new(2, 2)));
    /// assert!(r.contains(Coord::new(5, 5)));
    /// assert!(!r.contains(Coord::new(6, 2)));
    /// ```
    pub fn contains(&self, coord: Coord) -> bool {
        let extent = 2 * self.size as i32;
        coord.row >= self.origin.row
            && coord.row < self.origin.row + extent
            && coord.col >= self.origin.col
            && coord.col < self.origin.col + extent
    }

    /// Whether the region is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.onset_cycle && cycle < self.end_cycle()
    }

    /// Whether the region both covers `coord` and is active at `cycle`.
    pub fn affects(&self, coord: Coord, cycle: u64) -> bool {
        self.active_at(cycle) && self.contains(coord)
    }

    /// Returns a copy of the region with a new duration, keeping the onset
    /// cycle (used when a second `op_expand` extends the lifetime of an
    /// existing anomaly).
    pub fn with_duration(mut self, duration_cycles: u64) -> Self {
        self.duration_cycles = duration_cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_covers_expected_sites() {
        let r = AnomalousRegion::new(Coord::new(0, 0), 2, 0, 10, 0.5);
        // 4×4 sites → data qubits at (0,0),(0,2),(2,0),(2,2),(1,1),(3,3),(1,3),(3,1)
        let mut data_cols = std::collections::BTreeSet::new();
        for row in 0..8 {
            for col in 0..8 {
                let c = Coord::new(row, col);
                if r.contains(c) && c.is_data_site() && row % 2 == 0 {
                    data_cols.insert(col);
                }
            }
        }
        // exactly d_ano = 2 even (data) columns are covered
        assert_eq!(data_cols.len(), 2);
    }

    #[test]
    fn temporal_window_is_half_open() {
        let r = AnomalousRegion::new(Coord::new(0, 0), 4, 100, 50, 0.5);
        assert!(!r.active_at(99));
        assert!(r.active_at(100));
        assert!(r.active_at(149));
        assert!(!r.active_at(150));
        assert_eq!(r.end_cycle(), 150);
    }

    #[test]
    fn affects_combines_space_and_time() {
        let r = AnomalousRegion::new(Coord::new(4, 4), 2, 10, 10, 0.3);
        assert!(r.affects(Coord::new(5, 5), 15));
        assert!(!r.affects(Coord::new(5, 5), 25));
        assert!(!r.affects(Coord::new(0, 0), 15));
    }

    #[test]
    fn center_is_inside_the_region() {
        for size in 1..=6 {
            let r = AnomalousRegion::new(Coord::new(3, 7), size, 0, 1, 0.5);
            assert!(r.contains(r.center()), "size {size}");
        }
    }

    #[test]
    fn center_is_equidistant_from_both_region_edges() {
        // A 2·size-site region spanning rows [o, o + 2·size) has its true
        // centre at o + size − 1/2; the site-rounded centre must sit within
        // half a site of it on both axes, for every size.
        for size in 1..=6 {
            let r = AnomalousRegion::new(Coord::new(3, 7), size, 0, 1, 0.5);
            let c = r.center();
            let extent = 2 * size as i32;
            let true_row = 3.0 + (extent as f64 - 1.0) / 2.0;
            let true_col = 7.0 + (extent as f64 - 1.0) / 2.0;
            assert!(
                (c.row as f64 - true_row).abs() <= 0.5,
                "size {size}: row {} vs true centre {true_row}",
                c.row
            );
            assert!(
                (c.col as f64 - true_col).abs() <= 0.5,
                "size {size}: col {} vs true centre {true_col}",
                c.col
            );
        }
        // Pin one concrete value: size 2 at (3, 7) covers rows/cols 3..7,
        // so the centre rounds to (5, 9), not the top-left-biased (4, 8).
        let r = AnomalousRegion::new(Coord::new(3, 7), 2, 0, 1, 0.5);
        assert_eq!(r.center(), Coord::new(5, 9));
    }

    #[test]
    fn accessors_round_trip() {
        let r = AnomalousRegion::new(Coord::new(1, 2), 3, 7, 11, 0.25);
        assert_eq!(r.origin(), Coord::new(1, 2));
        assert_eq!(r.size(), 3);
        assert_eq!(r.onset_cycle(), 7);
        assert_eq!(r.duration_cycles(), 11);
        assert_eq!(r.anomalous_rate(), 0.25);
        assert_eq!(r.with_duration(100).duration_cycles(), 100);
    }

    #[test]
    #[should_panic(expected = "anomaly size must be positive")]
    fn zero_size_is_rejected() {
        let _ = AnomalousRegion::new(Coord::new(0, 0), 0, 0, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 2/3]")]
    fn invalid_rate_is_rejected() {
        let _ = AnomalousRegion::new(Coord::new(0, 0), 1, 0, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 2/3]")]
    fn rate_above_two_thirds_is_rejected() {
        // 0.7 is a valid probability but past the point where the three
        // Pauli sectors of rate/2 each still fit in the unit interval.
        let _ = AnomalousRegion::new(Coord::new(0, 0), 1, 0, 1, 0.7);
    }

    #[test]
    fn boundary_rate_is_accepted() {
        let r = AnomalousRegion::new(Coord::new(0, 0), 1, 0, 1, 2.0 / 3.0);
        assert_eq!(r.anomalous_rate(), 2.0 / 3.0);
    }
}
