//! Integration tests of the shard protocol: the merge layer's algebraic
//! properties (associativity, commutativity, duplicate idempotence) and
//! the bit-identity of a 3-shard merged sweep with a single-process run,
//! over every kernel family (per-shot, packed, chip).

use q3de_sim::engine::{
    Coordinator, DeltaSink, EngineError, EpochGate, ShardPlan, ShardWorker, SweepConfig,
    SweepPoint, TallyDelta,
};
use q3de_sim::{ChipMemoryExperimentConfig, DecodingStrategy, MemoryExperimentConfig};
use rand_chacha::ChaCha8Rng;

/// A sink that collects deltas without gating (the file-transport shape).
#[derive(Default)]
struct Collect(Vec<TallyDelta>);

impl DeltaSink for Collect {
    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
        self.0.push(delta);
        Ok(())
    }

    fn gate(&mut self, _point: usize, _epoch: usize) -> Result<EpochGate, EngineError> {
        Ok(EpochGate::Run)
    }
}

/// Runs every shard of `plan` against `points` and returns all deltas.
fn run_all_shards(plan: &ShardPlan, points: &[SweepPoint]) -> Vec<TallyDelta> {
    let mut deltas = Vec::new();
    for shard in 0..plan.num_shards {
        let mut sink = Collect::default();
        ShardWorker::new(plan, shard)
            .run(points, &[], &mut sink, |_| {})
            .unwrap();
        deltas.extend(sink.0);
    }
    deltas
}

/// The merged tallies of a delta set, as `(shots, failures)` per point.
fn merged_tallies(plan: &ShardPlan, deltas: &[&TallyDelta]) -> Vec<(usize, usize)> {
    let mut coordinator = Coordinator::new(plan.clone());
    for delta in deltas {
        coordinator.submit(delta).unwrap();
    }
    assert!(coordinator.all_finished(), "fold left the sweep incomplete");
    coordinator
        .progress()
        .into_iter()
        .map(|(shots, failures, _, _)| (shots, failures))
        .collect()
}

/// A deterministic xorshift shuffle (tests must not depend on OS entropy).
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

fn toy_points() -> Vec<SweepPoint> {
    vec![
        SweepPoint::new("p7", |s: u64| s.is_multiple_of(7)),
        SweepPoint::new("p3", |s: u64| s.is_multiple_of(3)),
        SweepPoint::new("p11", |s: u64| s % 11 == 5),
    ]
}

#[test]
fn merge_is_commutative_and_order_independent() {
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::fixed(300)
    };
    let points = toy_points();
    let plan = ShardPlan::new(&config, &points, None, 4);
    let deltas = run_all_shards(&plan, &points);

    let mut ordered: Vec<&TallyDelta> = deltas.iter().collect();
    let reference = merged_tallies(&plan, &ordered);
    // Any permutation of the fold — reversed, rotated, shuffled — commits
    // the same tallies.
    ordered.reverse();
    assert_eq!(merged_tallies(&plan, &ordered), reference);
    ordered.rotate_left(deltas.len() / 3);
    assert_eq!(merged_tallies(&plan, &ordered), reference);
    for seed in 1..=5u64 {
        shuffle(&mut ordered, seed);
        assert_eq!(merged_tallies(&plan, &ordered), reference, "shuffle {seed}");
    }
}

#[test]
fn merge_is_associative_across_groupings() {
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::fixed(300)
    };
    let points = toy_points();
    let plan = ShardPlan::new(&config, &points, None, 3);
    let deltas = run_all_shards(&plan, &points);
    let reference = merged_tallies(&plan, &deltas.iter().collect::<Vec<_>>());

    // Fold in arbitrary group splits: (A ∪ B) ∪ C == A ∪ (B ∪ C) == all.
    for split in [1, deltas.len() / 2, deltas.len() - 1] {
        let (left, right) = deltas.split_at(split);
        let mut coordinator = Coordinator::new(plan.clone());
        coordinator.submit_all(left).unwrap();
        coordinator.submit_all(right).unwrap();
        let grouped: Vec<(usize, usize)> = coordinator
            .progress()
            .into_iter()
            .map(|(shots, failures, _, _)| (shots, failures))
            .collect();
        assert_eq!(grouped, reference, "split at {split}");
    }
}

#[test]
fn merge_counts_duplicate_deltas_once() {
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::fixed(200)
    };
    let points = toy_points();
    let plan = ShardPlan::new(&config, &points, None, 2);
    let deltas = run_all_shards(&plan, &points);
    let reference = merged_tallies(&plan, &deltas.iter().collect::<Vec<_>>());

    // A restarted worker re-submits its committed deltas: every delta
    // twice still commits every tally once.
    let doubled: Vec<&TallyDelta> = deltas.iter().chain(deltas.iter()).collect();
    assert_eq!(merged_tallies(&plan, &doubled), reference);

    // A *conflicting* duplicate (same block, different tally) is refused.
    let mut conflicting = deltas[0].clone();
    conflicting.failures = conflicting.shots;
    conflicting.shots += 0; // same block coordinates, different count
    let mut coordinator = Coordinator::new(plan.clone());
    coordinator.submit(&deltas[0]).unwrap();
    if conflicting.failures != deltas[0].failures {
        assert!(coordinator.submit(&conflicting).is_err());
    }
}

#[test]
fn stale_plan_deltas_are_refused() {
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::fixed(200)
    };
    let points = toy_points();
    let plan = ShardPlan::new(&config, &points, None, 2);
    let stale_plan = ShardPlan::new(&config, &points, None, 3);
    let stale = run_all_shards(&stale_plan, &points);

    // The coordinator refuses deltas fingerprinted by another plan...
    let mut coordinator = Coordinator::new(plan.clone());
    let refusal = coordinator.submit(&stale[0]).unwrap_err();
    assert!(matches!(refusal, EngineError::CheckpointMismatch { .. }));

    // ...and a worker refuses to resume from another plan's checkpoint.
    let worker = ShardWorker::new(&plan, 0);
    let resumed = worker.run(&points, &stale[..1], &mut Collect::default(), |_| {});
    assert!(matches!(
        resumed,
        Err(EngineError::CheckpointMismatch { .. })
    ));
}

#[test]
fn killed_shard_resumes_from_its_deltas_without_rerunning() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let shots_run = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&shots_run);
    let points = vec![SweepPoint::new("counted", move |s: u64| {
        counter.fetch_add(1, Ordering::Relaxed);
        s.is_multiple_of(5)
    })];
    // A fine batch grid so both shards own non-empty slices of the small
    // early blocks (cuts snap to the batch grid).
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::fixed(256).with_batch_size(8)
    };
    let plan = ShardPlan::new(&config, &points, None, 2);

    /// A sink whose transport "dies" after two committed blocks.
    struct Dying {
        committed: Vec<TallyDelta>,
    }
    impl DeltaSink for Dying {
        fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
            if self.committed.len() >= 2 {
                return Err(EngineError::CheckpointMismatch {
                    reason: "transport died".into(),
                });
            }
            self.committed.push(delta);
            Ok(())
        }
        fn gate(&mut self, _: usize, _: usize) -> Result<EpochGate, EngineError> {
            Ok(EpochGate::Run)
        }
    }

    let mut dying = Dying {
        committed: Vec::new(),
    };
    assert!(ShardWorker::new(&plan, 0)
        .run(&points, &[], &mut dying, |_| {})
        .is_err());
    let after_crash = shots_run.load(Ordering::Relaxed);
    let committed_shots: usize = dying.committed.iter().map(|d| d.shots).sum();
    assert!(
        committed_shots > 0,
        "the worker committed blocks before dying"
    );

    // The restarted worker replays the committed deltas instead of
    // re-running their kernels, so it only runs the remaining blocks.
    let mut sink = Collect::default();
    ShardWorker::new(&plan, 0)
        .run(&points, &dying.committed, &mut sink, |_| {})
        .unwrap();
    let rerun = shots_run.load(Ordering::Relaxed) - after_crash;
    let shard_total: usize = sink.0.iter().map(|d| d.shots).sum();
    assert_eq!(
        rerun,
        shard_total - committed_shots,
        "committed blocks must not run again"
    );

    // Together with shard 1, the resumed run merges to the full sweep.
    let mut coordinator = Coordinator::new(plan.clone());
    coordinator.submit_all(&sink.0).unwrap();
    let mut other = Collect::default();
    ShardWorker::new(&plan, 1)
        .run(&points, &[], &mut other, |_| {})
        .unwrap();
    coordinator.submit_all(&other.0).unwrap();
    assert!(coordinator.all_finished());
    let (shots, failures, _, _) = coordinator.progress()[0];
    assert_eq!(shots, 256);
    assert_eq!(failures, (0..256u64).filter(|s| s % 5 == 0).count());
}

/// The real acceptance property: a 3-shard merge is bit-identical to a
/// single-process run, for every kernel family the engine schedules.
#[test]
fn three_shard_merge_is_bit_identical_to_single_process_per_kernel_family() {
    let memory = MemoryExperimentConfig::new(3, 0.02);
    let chip = ChipMemoryExperimentConfig::new(1, 2, MemoryExperimentConfig::new(3, 0.015));
    let points = || -> Vec<SweepPoint> {
        vec![
            SweepPoint::from_memory::<ChaCha8Rng>(
                "memory/per-shot",
                memory,
                DecodingStrategy::MbbeFree,
                11,
            )
            .unwrap(),
            SweepPoint::from_memory_packed::<ChaCha8Rng>(
                "memory/packed",
                memory,
                DecodingStrategy::MbbeFree,
                12,
            )
            .unwrap(),
            SweepPoint::from_chip::<ChaCha8Rng>("chip", chip, DecodingStrategy::MbbeFree, 13)
                .unwrap(),
        ]
    };
    let config = SweepConfig {
        shot_floor: 64,
        ..SweepConfig::fixed(192)
    };

    // Single-process reference (the engine is itself shard-based, so run
    // it single-threaded for a 1-shard plan).
    let single = q3de_sim::engine::SweepRunner::new(config.clone().with_threads(1))
        .run(points())
        .unwrap();

    // 3 independent shards, merged through a fresh coordinator.
    let plan = ShardPlan::new(&config, &points(), None, 3);
    let mut coordinator = Coordinator::new(plan.clone());
    let deltas = run_all_shards(&plan, &points());
    coordinator.submit_all(&deltas).unwrap();
    let merged = coordinator.report(0.0, 3).unwrap();

    assert_eq!(single.points.len(), merged.points.len());
    for (a, b) in single.points.iter().zip(&merged.points) {
        assert_eq!(a.id, b.id);
        assert_eq!((a.shots, a.failures), (b.shots, b.failures), "{}", a.id);
        assert_eq!(a.converged, b.converged, "{}", a.id);
        assert_eq!(a.resumed_shots, b.resumed_shots, "{}", a.id);
    }
}

/// Same bit-identity under adaptive early stopping: the coordinator stops
/// each point at the same doubling boundary a single-process run does.
#[test]
fn adaptive_three_shard_merge_matches_single_process() {
    let points = || {
        vec![
            SweepPoint::new("often", |s: u64| s.is_multiple_of(2)),
            SweepPoint::new("rare", |s: u64| s.is_multiple_of(97)),
        ]
    };
    let config = SweepConfig {
        shot_floor: 32,
        ..SweepConfig::adaptive(32, 2048, 0.2)
    };
    let single = q3de_sim::engine::SweepRunner::new(config.clone().with_threads(1))
        .run(points())
        .unwrap();

    // Gate-free shards run the whole schedule (the file transport); the
    // merge discards blocks past each point's stop boundary.
    let plan = ShardPlan::new(&config, &points(), None, 3);
    let mut coordinator = Coordinator::new(plan.clone());
    coordinator
        .submit_all(&run_all_shards(&plan, &points()))
        .unwrap();
    let merged = coordinator.report(0.0, 3).unwrap();

    for (a, b) in single.points.iter().zip(&merged.points) {
        assert_eq!((a.shots, a.failures), (b.shots, b.failures), "{}", a.id);
        assert_eq!(a.converged, b.converged, "{}", a.id);
    }
}
