//! The anomaly-detection experiment behind Fig. 7.

use q3de_anomaly::{AnomalyDetector, CalibrationStats, DetectorConfig};
use q3de_lattice::{Coord, ErrorKind, LatticeError, SurfaceCode};
use rand::Rng;

/// Configuration of a detection experiment: a distance-`d` patch running at
/// base rate `p`, struck by an anomaly of size `d_ano` and rate
/// `ratio · p` at a known onset cycle.
#[derive(Debug, Clone, Copy)]
pub struct DetectionExperimentConfig {
    /// Code distance `d` of the monitored patch.
    pub distance: usize,
    /// Base physical error rate `p`.
    pub physical_error_rate: f64,
    /// Ratio `p_ano / p` of anomalous to normal error rates.
    pub rate_ratio: f64,
    /// Anomaly size `d_ano` in data-qubit units.
    pub anomaly_size: usize,
    /// Cycle at which the anomaly switches on.
    pub onset_cycle: u64,
    /// Number of cycles simulated after the onset before a trial is declared
    /// a miss (true negative).
    pub post_onset_cycles: u64,
    /// Confidence level `1 − α` for the per-node threshold.
    pub confidence: f64,
    /// Trigger count `n_th`.
    pub count_threshold: usize,
}

impl DetectionExperimentConfig {
    /// The paper's Fig. 7 setting: `d = 21`, `p = 10⁻³`, `d_ano = 4`,
    /// `1 − α = 0.99`, `n_th = 20`.
    pub fn fig7(rate_ratio: f64) -> Self {
        Self {
            distance: 21,
            physical_error_rate: 1e-3,
            rate_ratio,
            anomaly_size: 4,
            onset_cycle: 600,
            post_onset_cycles: 3_000,
            confidence: 0.99,
            count_threshold: 20,
        }
    }

    /// The anomalous physical error rate `p_ano = ratio · p`, capped at 0.5.
    pub fn anomalous_rate(&self) -> f64 {
        (self.physical_error_rate * self.rate_ratio).min(0.5)
    }
}

/// Outcome of a single detection trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionTrial {
    /// A detection fired before the anomaly onset (false positive).
    pub false_positive: bool,
    /// Detection latency in cycles, when the anomaly was found after onset.
    pub latency: Option<u64>,
    /// Chebyshev distance between the estimated and the true region centre,
    /// when detected.
    pub position_error: Option<u32>,
}

impl DetectionTrial {
    /// The trial failed: either a false positive or a miss.
    pub fn is_error(&self) -> bool {
        self.false_positive || self.latency.is_none()
    }
}

/// The Fig. 7 experiment: measure detection error rate, latency and position
/// error of the anomaly-detection unit as a function of window size.
#[derive(Debug, Clone)]
pub struct DetectionExperiment {
    config: DetectionExperimentConfig,
    positions: Vec<Coord>,
    node_mu: f64,
    hot_mu: f64,
    true_center: Coord,
}

impl DetectionExperiment {
    /// Builds the experiment for the given configuration.
    ///
    /// The per-cycle active-node probability is derived from the
    /// phenomenological calibration formula; cycles are treated as
    /// independent, which is the same approximation the paper's even-cycle
    /// CLT analysis makes.
    ///
    /// # Errors
    ///
    /// Returns an error if the code distance is invalid.
    pub fn new(config: DetectionExperimentConfig) -> Result<Self, LatticeError> {
        let code = SurfaceCode::new(config.distance)?;
        let graph = code.matching_graph(ErrorKind::X);
        let positions = graph.nodes().to_vec();
        let node_mu = CalibrationStats::bulk_surface_code(config.physical_error_rate).mu;
        let hot_mu = CalibrationStats::bulk_surface_code(config.anomalous_rate()).mu;
        let mid = code.grid_size() / 2;
        let half = config.anomaly_size as i32;
        let origin = Coord::new((mid - half).max(0), (mid - half).max(0));
        let true_center = Coord::new(
            origin.row + config.anomaly_size as i32 - 1,
            origin.col + config.anomaly_size as i32 - 1,
        );
        Ok(Self {
            config,
            positions,
            node_mu,
            hot_mu,
            true_center,
        })
    }

    /// The experiment configuration.
    pub fn config(&self) -> &DetectionExperimentConfig {
        &self.config
    }

    /// The true centre of the injected anomalous region.
    pub fn true_center(&self) -> Coord {
        self.true_center
    }

    /// Whether a syndrome position is inside the injected region.
    fn in_region(&self, pos: Coord) -> bool {
        let extent = self.config.anomaly_size as i32;
        (pos.row - self.true_center.row).abs() <= extent
            && (pos.col - self.true_center.col).abs() <= extent
    }

    /// Runs one trial with window size `window`.
    pub fn run_trial<R: Rng + ?Sized>(&self, window: usize, rng: &mut R) -> DetectionTrial {
        let calibration = CalibrationStats::bulk_surface_code(self.config.physical_error_rate);
        let det_config = DetectorConfig {
            window,
            confidence: self.config.confidence,
            count_threshold: self.config.count_threshold,
            anomaly_lifetime_cycles: u64::MAX / 2,
            suppression_radius: 2 * self.config.anomaly_size as u32 + 2,
            calibration,
        };
        let mut detector = AnomalyDetector::new(det_config, self.positions.clone());

        let total = self.config.onset_cycle + self.config.post_onset_cycles;
        let mut layer = vec![false; self.positions.len()];
        for cycle in 0..total {
            for (i, &pos) in self.positions.iter().enumerate() {
                let mu = if cycle >= self.config.onset_cycle && self.in_region(pos) {
                    self.hot_mu
                } else {
                    self.node_mu
                };
                layer[i] = rng.gen::<f64>() < mu;
            }
            if let Some(found) = detector.observe_layer(&layer) {
                if cycle < self.config.onset_cycle {
                    return DetectionTrial {
                        false_positive: true,
                        latency: None,
                        position_error: None,
                    };
                }
                return DetectionTrial {
                    false_positive: false,
                    latency: Some(cycle - self.config.onset_cycle),
                    position_error: Some(found.estimated_center.chebyshev(self.true_center)),
                };
            }
        }
        DetectionTrial {
            false_positive: false,
            latency: None,
            position_error: None,
        }
    }

    /// Runs `trials` trials and returns `(error_rate, mean_latency,
    /// mean_position_error)`, where the error rate counts false positives and
    /// misses together (the "detection error" of Fig. 7).
    pub fn run_trials<R: Rng + ?Sized>(
        &self,
        window: usize,
        trials: usize,
        rng: &mut R,
    ) -> (f64, f64, f64) {
        let mut errors = 0usize;
        let mut latency_sum = 0u64;
        let mut latency_count = 0usize;
        let mut pos_sum = 0u64;
        let mut pos_count = 0usize;
        for _ in 0..trials {
            let trial = self.run_trial(window, rng);
            if trial.is_error() {
                errors += 1;
            }
            if let Some(l) = trial.latency {
                latency_sum += l;
                latency_count += 1;
            }
            if let Some(p) = trial.position_error {
                pos_sum += u64::from(p);
                pos_count += 1;
            }
        }
        let error_rate = errors as f64 / trials.max(1) as f64;
        let mean_latency = if latency_count > 0 {
            latency_sum as f64 / latency_count as f64
        } else {
            f64::NAN
        };
        let mean_pos = if pos_count > 0 {
            pos_sum as f64 / pos_count as f64
        } else {
            f64::NAN
        };
        (error_rate, mean_latency, mean_pos)
    }

    /// Finds the smallest window (by doubling search over the candidate
    /// list) whose detection error rate over `trials` trials is at most
    /// `target_error`, mirroring the left panel of Fig. 7.
    pub fn required_window<R: Rng + ?Sized>(
        &self,
        candidates: &[usize],
        target_error: f64,
        trials: usize,
        rng: &mut R,
    ) -> Option<usize> {
        for &window in candidates {
            let (error_rate, _, _) = self.run_trials(window, trials, rng);
            if error_rate <= target_error {
                return Some(window);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn small_config(ratio: f64) -> DetectionExperimentConfig {
        DetectionExperimentConfig {
            distance: 11,
            physical_error_rate: 1e-3,
            rate_ratio: ratio,
            anomaly_size: 4,
            onset_cycle: 400,
            post_onset_cycles: 2_500,
            confidence: 0.99,
            count_threshold: 15,
        }
    }

    #[test]
    fn strong_burst_is_detected_quickly_and_accurately() {
        let exp = DetectionExperiment::new(small_config(500.0)).unwrap();
        let mut r = rng(1);
        let trial = exp.run_trial(100, &mut r);
        assert!(!trial.false_positive);
        let latency = trial.latency.expect("a 500× burst must be detected");
        assert!(latency < 300, "latency {latency}");
        assert!(trial.position_error.unwrap() <= 8);
        assert!(!trial.is_error());
    }

    #[test]
    fn weak_burst_needs_a_larger_window() {
        let exp = DetectionExperiment::new(small_config(5.0)).unwrap();
        let mut r = rng(2);
        let (err_small_window, _, _) = exp.run_trials(20, 6, &mut r);
        let (err_large_window, _, _) = exp.run_trials(400, 6, &mut r);
        assert!(
            err_large_window <= err_small_window,
            "larger window ({err_large_window}) should not be worse ({err_small_window})"
        );
    }

    #[test]
    fn required_window_is_monotone_in_burst_strength() {
        let strong = DetectionExperiment::new(small_config(200.0)).unwrap();
        let weak = DetectionExperiment::new(small_config(10.0)).unwrap();
        let candidates = [25, 50, 100, 200, 400];
        let mut r = rng(3);
        let w_strong = strong.required_window(&candidates, 0.34, 3, &mut r);
        let mut r = rng(4);
        let w_weak = weak.required_window(&candidates, 0.34, 3, &mut r);
        let ws = w_strong.expect("strong burst detectable");
        if let Some(ww) = w_weak {
            assert!(ws <= ww, "strong burst window {ws} vs weak {ww}");
        }
    }

    #[test]
    fn anomalous_rate_is_capped() {
        let cfg = DetectionExperimentConfig::fig7(10_000.0);
        assert_eq!(cfg.anomalous_rate(), 0.5);
        let cfg = DetectionExperimentConfig::fig7(50.0);
        assert!((cfg.anomalous_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn true_center_lies_inside_the_patch() {
        let exp = DetectionExperiment::new(small_config(100.0)).unwrap();
        let c = exp.true_center();
        let grid = 2 * 11 - 1;
        assert!(c.row >= 0 && c.row < grid && c.col >= 0 && c.col < grid);
        assert_eq!(exp.config().anomaly_size, 4);
    }
}
