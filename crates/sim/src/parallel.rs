//! Multi-threaded Monte-Carlo shot runner.

use std::thread;

/// Runs `shots` independent trials across `num_threads` OS threads and
/// returns the number of trials for which `shot` returned `true`
/// (e.g. logical failures).
///
/// Each thread receives a distinct stream index `(thread_id, shot_index)` so
/// the caller can derive independent, reproducible RNG seeds.
///
/// ```
/// use q3de_sim::run_shots_parallel;
/// // Count "failures" of a deterministic toy predicate.
/// let failures = run_shots_parallel(100, 4, |thread, shot| (thread + shot) % 7 == 0);
/// assert!(failures > 0 && failures < 100);
/// ```
///
/// # Panics
///
/// Panics if `num_threads == 0` or if a worker thread panics.
pub fn run_shots_parallel<F>(shots: usize, num_threads: usize, shot: F) -> usize
where
    F: Fn(usize, usize) -> bool + Sync,
{
    assert!(num_threads > 0, "at least one worker thread is required");
    if shots == 0 {
        return 0;
    }
    let num_threads = num_threads.min(shots);
    let per_thread = shots / num_threads;
    let remainder = shots % num_threads;
    let shot_ref = &shot;

    thread::scope(|scope| {
        let handles: Vec<_> = (0..num_threads)
            .map(|thread_id| {
                let count = per_thread + usize::from(thread_id < remainder);
                scope.spawn(move || {
                    (0..count)
                        .filter(|&shot_index| shot_ref(thread_id, shot_index))
                        .count()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .sum()
    })
}

/// Like [`run_shots_parallel`], but sizes the worker pool from
/// [`std::thread::available_parallelism`] (falling back to a single thread
/// when the parallelism cannot be determined) instead of requiring — and
/// panicking on — a caller-supplied thread count.
///
/// This is the ergonomic entry point the figure binaries use.
///
/// ```
/// use q3de_sim::run_shots_auto;
/// let failures = run_shots_auto(100, |thread, shot| (thread + shot) % 7 == 0);
/// assert!(failures > 0 && failures < 100);
/// ```
pub fn run_shots_auto<F>(shots: usize, shot: F) -> usize
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_shots_parallel(shots, num_threads, shot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_shots_are_executed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let failures = run_shots_parallel(103, 5, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert_eq!(failures, 103);
        assert_eq!(counter.load(Ordering::SeqCst), 103);
    }

    #[test]
    fn zero_shots_is_a_noop() {
        assert_eq!(run_shots_parallel(0, 4, |_, _| true), 0);
    }

    #[test]
    fn thread_count_larger_than_shots_is_clamped() {
        let failures = run_shots_parallel(3, 64, |_, _| true);
        assert_eq!(failures, 3);
    }

    #[test]
    fn results_match_sequential_reference() {
        let predicate = |t: usize, s: usize| (t * 31 + s * 7).is_multiple_of(5);
        let parallel = run_shots_parallel(200, 4, predicate);
        // sequential reference with the same partitioning (4 threads, 50 each)
        let mut sequential = 0;
        for t in 0..4 {
            for s in 0..50 {
                if predicate(t, s) {
                    sequential += 1;
                }
            }
        }
        assert_eq!(parallel, sequential);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_is_rejected() {
        let _ = run_shots_parallel(10, 0, |_, _| false);
    }

    #[test]
    fn auto_variant_runs_every_shot_exactly_once() {
        let counter = AtomicUsize::new(0);
        let failures = run_shots_auto(57, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert_eq!(failures, 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
        assert_eq!(run_shots_auto(0, |_, _| true), 0);
    }
}
